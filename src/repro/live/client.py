"""Async concurrent client for live replica servers.

Mirrors the simulator's :class:`repro.client.Client` facade — issue
epsilon-transactions with an inconsistency budget, get plain values
back — but over a real socket, with request pipelining: many
coroutines can share one :class:`LiveClient`, and responses are
matched to requests by id, so concurrent ETs genuinely overlap on the
wire.

Robustness: requests take a per-request ``timeout``; a broken
connection is redialed automatically with jittered exponential
backoff, optionally failing over across a list of replica addresses.
Idempotent verbs (``query``, ``values``, ``stats``, ``ping``) are
retried transparently after a reconnect; updates are *not* retried by
default — a timed-out update may still have committed, and blind
re-submission would double-apply it (opt in with ``retry_updates``
when the workload is tolerant, e.g. monotonic counters checked
externally).

Primary preference: after failing over, the client does not stick to
the failover replica forever — every ``primary_retry_interval``
seconds an idle moment re-probes the primary address and rehomes the
connection when it answers, so a recovered replica wins its clients
back without manual intervention (set the interval to 0 to disable).

    client = await LiveClient.connect("127.0.0.1", 7000)
    await client.increment("balance", 100)          # async update
    value = await client.read("balance", epsilon=2) # bounded error
    strict = await client.read("balance", epsilon=0)  # serializable
    await client.close()

Failover::

    client = await LiveClient.connect(
        "127.0.0.1", 7000,
        failover=[("127.0.0.1", 7001), ("127.0.0.1", 7002)],
        request_timeout=5.0,
    )
"""

from __future__ import annotations

import asyncio
import itertools
import random
from collections.abc import Mapping
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.operations import (
    AppendOp,
    DecrementOp,
    IncrementOp,
    Operation,
    WriteOp,
)
from ..core.transactions import EpsilonSpec, UNLIMITED
from ..errors import ETError
from .protocol import (
    ProtocolError,
    encode_ops,
    encode_spec,
    read_frame,
    write_frame,
)

__all__ = ["LiveClient", "LiveETFailed", "LiveETResult", "RequestTimeout"]

#: verbs that are safe to re-issue after a reconnect.
_IDEMPOTENT_VERBS = frozenset(
    {
        "query", "values", "stats", "ping", "order", "settle",
        "metrics", "snapshot", "snapshot-fetch", "shard-info",
    }
)


class LiveETFailed(ETError):
    """Raised when the server reports an ET failure.

    Shares :class:`repro.errors.ETError` with the simulator's
    ``ETFailed``; ``code`` carries the server's typed error code —
    ``"UNAVAILABLE"`` means the replica honestly refused an
    ``epsilon = 0`` request while partitioned from its peers (retry
    with a relaxed budget or at another replica).

    ``frame`` is the raw error response, kept because typed refusals
    can carry structured context past the message — a ``WRONG_SHARD``
    refusal ships the newest shard map under ``frame["map"]``, which
    is how the router refreshes its routing table.
    """

    def __init__(
        self,
        message: str,
        code: str = "",
        frame: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message, code)
        self.frame: Dict[str, Any] = frame or {}


class LiveETResult(Mapping):
    """Typed outcome of a live query ET.

    Attribute access mirrors the simulator's ``ETResult`` (``values``,
    ``inconsistency``, ``overlap``, ``waits``) plus the live-only
    ``degraded`` flag; ``Mapping`` access (``result["values"]``) keeps
    existing dict-style callers working unchanged.
    """

    __slots__ = ("values", "inconsistency", "overlap", "waits", "degraded")

    def __init__(self, frame: Dict[str, Any]) -> None:
        self.values: Dict[str, Any] = dict(frame.get("values", {}))
        self.inconsistency: float = frame.get("inconsistency", 0)
        self.overlap: Tuple[str, ...] = tuple(frame.get("overlap", ()))
        self.waits: int = frame.get("waits", 0)
        #: True when the serving replica suspected a peer at answer time.
        self.degraded: bool = bool(frame.get("degraded", False))

    def _as_dict(self) -> Dict[str, Any]:
        return {
            "values": self.values,
            "inconsistency": self.inconsistency,
            "overlap": list(self.overlap),
            "waits": self.waits,
            "degraded": self.degraded,
        }

    def __getitem__(self, key: str) -> Any:
        return self._as_dict()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._as_dict())

    def __len__(self) -> int:
        return 5

    def __repr__(self) -> str:
        return "LiveETResult(%r)" % (self._as_dict(),)


class RequestTimeout(ConnectionError):
    """A request exceeded its client-side deadline.  The request may
    or may not have executed at the server."""


class LiveClient:
    """A pipelined client connection to one replica server."""

    def __init__(
        self,
        addrs: Sequence[Tuple[str, int]],
        request_timeout: Optional[float] = None,
        reconnect: bool = True,
        max_attempts: int = 4,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        retry_updates: bool = False,
        primary_retry_interval: float = 5.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not addrs:
            raise ValueError("LiveClient needs at least one address")
        self._addrs: List[Tuple[str, int]] = [
            (host, int(port)) for host, port in addrs
        ]
        self._request_timeout = request_timeout
        self._reconnect = reconnect
        self._max_attempts = max(1, max_attempts)
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._retry_updates = retry_updates
        #: seconds between probes of the primary address while failed
        #: over to a secondary (0 disables rehoming).
        self._primary_retry_interval = max(0.0, primary_retry_interval)
        self._rng = rng if rng is not None else random.Random()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._waiting: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._dial_lock = asyncio.Lock()
        self._closed = False
        self._reader_task: Optional[asyncio.Task] = None
        #: observability: completed redials since construction.
        self.reconnects = 0
        #: index into the address list of the live connection (0 is
        #: the primary).
        self._active_index = 0
        self._last_primary_probe = 0.0
        #: observability: times the client moved back to the primary.
        self.rehomes = 0
        #: observability: failover-list refreshes from gossiped
        #: membership (stats replies carry the table).
        self.membership_refreshes = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        failover: Sequence[Tuple[str, int]] = (),
        **options: Any,
    ) -> "LiveClient":
        """Dial the primary address (``failover`` addresses are used
        when redialing after a connection failure)."""
        client = cls([(host, port)] + list(failover), **options)
        await client._ensure_connected()
        return client

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    # -- connection management -----------------------------------------------

    async def _ensure_connected(self) -> None:
        if self._closed:
            raise ConnectionError("client is closed")
        if self.connected:
            await self._maybe_rehome()
            return
        async with self._dial_lock:
            if self._closed:
                raise ConnectionError("client is closed")
            if self.connected:
                return
            await self._dial()

    async def _maybe_rehome(self) -> None:
        """While failed over, periodically probe the primary address
        and move the connection back when it answers.

        The swap happens under the write lock and only while no
        responses are outstanding, so no in-flight request can be
        failed by it — at worst the probe is skipped and retried on a
        later idle moment.
        """
        if (
            self._active_index == 0
            or not self._primary_retry_interval
            or len(self._addrs) < 2
        ):
            return
        now = asyncio.get_event_loop().time()
        if now - self._last_primary_probe < self._primary_retry_interval:
            return
        self._last_primary_probe = now
        host, port = self._addrs[0]
        try:
            reader, writer = await asyncio.open_connection(host, port)
            await write_frame(writer, {"type": "client-hello"})
        except (OSError, ConnectionError):
            return  # primary still down: stay failed over
        async with self._write_lock:
            if self._waiting or not self.connected or self._closed:
                writer.close()  # a bad moment to swap; try again later
                return
            self._teardown_connection()
            self._reader = reader
            self._writer = writer
            self._active_index = 0
            self._reader_task = asyncio.ensure_future(
                self._read_loop(reader)
            )
            self.rehomes += 1

    async def _dial(self) -> None:
        """Try each address with jittered exponential backoff."""
        redial = self._reader_task is not None
        self._teardown_connection()
        last_error: Optional[BaseException] = None
        for attempt in range(self._max_attempts):
            for index, (host, port) in enumerate(self._addrs):
                if self._closed:
                    raise ConnectionError("client is closed")
                try:
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                except (OSError, ConnectionError) as exc:
                    last_error = exc
                    continue
                await write_frame(writer, {"type": "client-hello"})
                self._reader = reader
                self._writer = writer
                self._active_index = index
                self._reader_task = asyncio.ensure_future(
                    self._read_loop(reader)
                )
                if redial:
                    self.reconnects += 1
                return
            if attempt < self._max_attempts - 1:
                await asyncio.sleep(self._backoff(attempt))
        raise ConnectionError(
            "could not reach any of %r: %s" % (self._addrs, last_error)
        )

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter (decorrelates a herd
        of clients redialing a recovering replica)."""
        ceiling = min(
            self._backoff_base * (2 ** attempt), self._backoff_max
        )
        return self._rng.uniform(0, ceiling)

    def _teardown_connection(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._reader = None
        self._fail_waiting(ConnectionError("connection lost"))

    def _fail_waiting(self, error: Exception) -> None:
        for fut in self._waiting.values():
            if not fut.done():
                fut.set_exception(error)
        self._waiting.clear()

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                rid = frame.get("id")
                fut = self._waiting.pop(rid, None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except asyncio.CancelledError:
            return  # close()/redial cancelled us; they handle cleanup
        except (ConnectionError, OSError, ProtocolError):
            pass  # the connection died; fail the waiters below
        finally:
            if self._reader is reader:
                # Mark the connection dead so the next request redials
                # instead of writing into a half-closed socket.
                self._reader = None
                if self._writer is not None:
                    self._writer.close()
                    self._writer = None
                self._fail_waiting(
                    ConnectionError("server connection closed")
                )

    # -- requests ------------------------------------------------------------

    async def request(
        self,
        verb: str,
        timeout: Optional[float] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Send one request; await and unwrap its response.

        ``timeout`` (or the client-wide ``request_timeout``) bounds the
        whole round trip.  Connection failures are retried with
        reconnect/failover for idempotent verbs; updates surface the
        error to the caller unless ``retry_updates`` was set.
        """
        if timeout is None:
            timeout = self._request_timeout
        retryable = self._reconnect and (
            verb in _IDEMPOTENT_VERBS or self._retry_updates
        )
        attempts = self._max_attempts if retryable else 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(self._backoff(attempt - 1))
            try:
                return await self._request_once(verb, timeout, fields)
            except RequestTimeout:
                raise  # the deadline is global, never re-spent
            except (ConnectionError, OSError) as exc:
                last_error = exc
                continue
        assert last_error is not None
        raise last_error

    async def _request_once(
        self,
        verb: str,
        timeout: Optional[float],
        fields: Dict[str, Any],
    ) -> Dict[str, Any]:
        if self._closed:
            raise ConnectionError("client is closed")
        if self._reconnect:
            await self._ensure_connected()
        elif not self.connected:
            raise ConnectionError("client is not connected")
        rid = next(self._ids)
        fut: asyncio.Future = asyncio.get_event_loop().create_future()
        self._waiting[rid] = fut
        try:
            async with self._write_lock:
                await write_frame(
                    self._writer,
                    {"type": "request", "id": rid, "verb": verb, **fields},
                )
        except (ConnectionError, OSError):
            # The send never made it out: drop the orphan future so it
            # cannot leak (and cannot be resolved by a later response
            # reusing the id after a reconnect).
            self._waiting.pop(rid, None)
            raise
        try:
            if timeout is not None:
                frame = await asyncio.wait_for(fut, timeout=timeout)
            else:
                frame = await fut
        except asyncio.TimeoutError:
            self._waiting.pop(rid, None)
            raise RequestTimeout(
                "%s request exceeded %.3fs" % (verb, timeout)
            ) from None
        if not frame.get("ok"):
            raise LiveETFailed(
                frame.get("error", "ET failed"),
                frame.get("code", ""),
                frame,
            )
        return frame

    # -- updates -------------------------------------------------------------

    async def update(
        self,
        operations: Sequence[Operation],
        spec: Optional[EpsilonSpec] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a (possibly multi-operation) update ET."""
        fields: Dict[str, Any] = {"ops": encode_ops(list(operations))}
        if spec is not None:
            fields["spec"] = encode_spec(spec)
        return await self.request("update", timeout=timeout, **fields)

    async def write(self, key: str, value: Any) -> Dict[str, Any]:
        return await self.update([WriteOp(key, value)])

    async def increment(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([IncrementOp(key, amount)])

    async def decrement(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([DecrementOp(key, amount)])

    async def append(self, key: str, item: Any) -> Dict[str, Any]:
        return await self.update([AppendOp(key, item)])

    # -- queries -------------------------------------------------------------

    async def query(
        self,
        keys: Sequence[str],
        spec: Optional[EpsilonSpec] = None,
        timeout: Optional[float] = None,
    ) -> LiveETResult:
        """Full-fidelity query: values plus error accounting, as a
        typed :class:`LiveETResult` (dict-style access still works)."""
        fields: Dict[str, Any] = {"keys": list(keys)}
        if spec is not None:
            fields["spec"] = encode_spec(spec)
        frame = await self.request("query", timeout=timeout, **fields)
        return LiveETResult(frame)

    async def read(
        self,
        key: str,
        epsilon: float = UNLIMITED,
        value_epsilon: float = UNLIMITED,
        timeout: Optional[float] = None,
    ) -> Any:
        """Read one key with the given inconsistency budget."""
        result = await self.query(
            [key],
            EpsilonSpec(import_limit=epsilon, value_limit=value_epsilon),
            timeout=timeout,
        )
        return result["values"][key]

    async def read_many(
        self,
        keys: Sequence[str],
        epsilon: float = UNLIMITED,
        value_epsilon: float = UNLIMITED,
    ) -> Dict[str, Any]:
        """One query ET over several keys (a consistent unit of error)."""
        result = await self.query(
            list(keys),
            EpsilonSpec(import_limit=epsilon, value_limit=value_epsilon),
        )
        return dict(result["values"])

    # -- convenience ---------------------------------------------------------

    async def settle(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Block until the connected replica has drained: outbound
        channels empty, engine quiescent, every local update fully
        acknowledged.  Server-side condition wait — no stats polling.
        """
        return await self.request(
            "settle", timeout=timeout + 5.0, wait=timeout
        )

    # -- introspection -------------------------------------------------------

    async def values(self) -> Dict[str, Any]:
        """Full store contents at the connected replica."""
        return (await self.request("values"))["values"]

    async def stats(self) -> Dict[str, Any]:
        stats = (await self.request("stats"))["stats"]
        self._learn_membership(stats.get("membership"))
        return stats

    def _learn_membership(self, records: Any) -> None:
        """Refresh the failover address list from a gossiped
        membership block (carried on ``stats`` replies).

        The primary and currently active addresses are preserved in
        place; every other live member address replaces the static
        constructor tail, so failover targets stay current through
        joins, leaves, and address moves."""
        if not isinstance(records, list):
            return
        learned: List[Tuple[str, int]] = []
        for rec in records:
            if not isinstance(rec, dict):
                continue
            if rec.get("status") in ("dead", "left"):
                continue
            host, port = rec.get("host"), rec.get("port")
            if host and port:
                learned.append((str(host), int(port)))
        if not learned:
            return
        keep = [self._addrs[0]]
        if self._active_index < len(self._addrs):
            active = self._addrs[self._active_index]
            if active not in keep:
                keep.append(active)
        fresh = keep + [addr for addr in learned if addr not in keep]
        if fresh != self._addrs:
            active = self._addrs[self._active_index]
            self._addrs = fresh
            self._active_index = fresh.index(active)
            self.membership_refreshes += 1

    async def refresh_membership(self) -> List[Tuple[str, int]]:
        """Explicitly re-learn replica addresses from the server's
        gossiped membership table; returns the refreshed list."""
        await self.stats()
        return list(self._addrs)

    async def metrics(self) -> Dict[str, Any]:
        """Scrape the replica's metrics registry.

        Returns a dict with ``prometheus`` (exposition text), ``metrics``
        (the same samples as JSON), and the trace buffer's
        ``trace_recorded``/``trace_dropped`` tallies.
        """
        frame = await self.request("metrics")
        return {
            "site": frame.get("site"),
            "prometheus": frame.get("prometheus", ""),
            "metrics": frame.get("metrics", {}),
            "trace_recorded": frame.get("trace_recorded", 0),
            "trace_dropped": frame.get("trace_dropped", 0),
        }

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def snapshot(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Ask the replica to persist a snapshot and compact its logs
        now; returns ``{"bytes", "frontiers", "compacted"}``."""
        frame = await self.request("snapshot", timeout=timeout)
        return frame["snapshot"]

    async def close(self) -> None:
        self._closed = True
        task = self._reader_task
        self._reader_task = None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._fail_waiting(ConnectionError("client closed"))
        writer = self._writer
        self._writer = None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
