"""Client-side shard router: one client surface over N replica groups.

:class:`ShardRouter` exposes the same verb surface as
:class:`~repro.live.client.LiveClient` (the parity tests hold it to
that), but routes each key to its owning replica group through a
:class:`~repro.live.shard.ShardMap` and keeps one pipelined
``LiveClient`` (primary + failover across the group's replicas) per
shard, dialed lazily.

Cross-shard semantics
---------------------

* ``read_many`` / ``query`` spanning shards fan out one query ET per
  owning group **concurrently** and merge: values are unioned,
  ``inconsistency`` is summed (each shard's epsilon gauges bound that
  shard's partition of the object universe, so the merged result's
  observed error is at most the sum of the per-shard bounds — the
  paper's per-object-set accounting, applied per partition),
  ``overlap`` is the sorted union of imported update tids, ``waits``
  is summed, and ``degraded`` is true if any shard answered degraded.
* ``update`` spanning shards is split per group and submitted
  concurrently.  There is no cross-group atomic commit — each
  per-shard MSet keeps the usual per-group guarantees.  Single-shard
  updates (every ``write``/``increment``/... convenience verb) are
  unaffected.
* ``settle`` sweeps all shards **concurrently** with a per-shard
  timeout, so settling the cluster costs max-of-shards, not
  sum-of-shards.

Routing-table refresh is piggybacked on refusals: a replica fenced out
by a migration answers ``WRONG_SHARD`` carrying the epoch-bumped map,
the router adopts any newer map it is shown, re-dials the shard's new
owner group, and retries.  While a cutover is in flight the new owners
answer ``UNAVAILABLE`` until they adopt; the router retries those
*only* inside a bounded post-``WRONG_SHARD`` migration window, so a
genuinely degraded replica still fails fast with its honest refusal.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..consistency import (
    Consistency,
    ReadOptions,
    SessionToken,
    resolve_read_options,
)
from ..core.operations import (
    AppendOp,
    DecrementOp,
    IncrementOp,
    Operation,
    WriteOp,
)
from ..core.transactions import EpsilonSpec
from ..errors import ETError
from .client import LiveClient, LiveETFailed, LiveETResult
from .shard import GroupAddrs, ShardMap, group_keys_by_shard

__all__ = ["RouterSession", "ShardRouter"]

Specish = Union[EpsilonSpec, ReadOptions, Consistency, None]


class ShardRouter:
    """Routes the ``LiveClient`` verb surface across replica groups."""

    def __init__(
        self,
        shard_map: ShardMap,
        migration_wait: float = 15.0,
        client_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._map = shard_map
        #: how long WRONG_SHARD / cutover UNAVAILABLE refusals are
        #: retried before surfacing — the bound on how long a live
        #: migration may stall a request.
        self._migration_wait = max(0.0, migration_wait)
        self._client_options = dict(client_options or {})
        #: shard -> (group addrs the client was dialed for, client).
        self._clients: Dict[int, Tuple[GroupAddrs, LiveClient]] = {}
        self._dial_locks: Dict[int, asyncio.Lock] = {}
        #: shard -> deadline until which UNAVAILABLE means "cutover in
        #: flight, hold on" rather than "degraded, fail fast".
        self._migrating_until: Dict[int, float] = {}
        self._closed = False
        #: observability: maps adopted from WRONG_SHARD refusals.
        self.map_refreshes = 0

    # -- routing table ---------------------------------------------------------

    @property
    def map(self) -> ShardMap:
        """The routing table currently in use."""
        return self._map

    @property
    def n_shards(self) -> int:
        return self._map.n_shards

    def shard_of(self, key: str) -> int:
        return self._map.shard_of(key)

    def _adopt(self, map_dict: Dict[str, Any]) -> bool:
        """Adopt a map hint if it is newer than the current table."""
        try:
            candidate = ShardMap.from_dict(map_dict)
        except (ValueError, TypeError):
            return False
        if candidate.epoch <= self._map.epoch:
            return False
        self._map = candidate
        self.map_refreshes += 1
        return True

    async def refresh_map(self) -> ShardMap:
        """Actively re-learn the routing table from the replicas.

        Normally unnecessary — refusals carry the map — but useful
        after a long disconnect.  Adopts the newest map any currently
        reachable replica reports.
        """
        for shard in range(self._map.n_shards):
            try:
                client = await self._client(shard)
                reply = await client.request("shard-info")
            except (ETError, ConnectionError, OSError):
                continue
            hint = reply.get("map")
            if isinstance(hint, dict):
                self._adopt(hint)
        return self._map

    async def _client(self, shard: int) -> LiveClient:
        """The shard's group client, (re)dialed lazily.

        A client dialed for a superseded group (the map moved under
        it) is closed and replaced — never reused, or a retired
        replica would keep answering WRONG_SHARD forever.
        """
        if self._closed:
            raise ConnectionError("router is closed")
        lock = self._dial_locks.setdefault(shard, asyncio.Lock())
        async with lock:
            group = self._map.groups[shard]
            cached = self._clients.get(shard)
            if cached is not None:
                if cached[0] == group:
                    return cached[1]
                await cached[1].close()
                self._clients.pop(shard, None)
            (host, port), *rest = group
            client = await LiveClient.connect(
                host, port, failover=rest, **self._client_options
            )
            self._clients[shard] = (group, client)
            return client

    async def _call(self, shard: int, verb: str, *args: Any, **kwargs: Any) -> Any:
        """One verb against one shard, with migration-aware retry.

        ``WRONG_SHARD`` always carries proof the table is stale —
        adopt the newer map, re-dial, retry (the refusal happens
        before anything commits, so this is safe for updates too).
        ``UNAVAILABLE`` is retried only inside the migration window a
        recent ``WRONG_SHARD`` opened; outside it, it is the replica's
        honest degraded-mode refusal and surfaces immediately.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._migration_wait
        while True:
            client = await self._client(shard)
            try:
                return await getattr(client, verb)(*args, **kwargs)
            except LiveETFailed as exc:
                now = loop.time()
                if exc.wrong_shard:
                    self._migrating_until[shard] = now + self._migration_wait
                    hint = exc.frame.get("map")
                    if not (
                        isinstance(hint, dict) and self._adopt(hint)
                    ) and now >= deadline:
                        # No newer map to chase and out of patience.
                        raise
                elif exc.unavailable and now < self._migrating_until.get(
                    shard, 0.0
                ):
                    if now >= deadline:
                        raise
                else:
                    raise
            if loop.time() >= deadline:
                raise TimeoutError(
                    "shard %d did not become routable within %.1fs"
                    % (shard, self._migration_wait)
                )
            await asyncio.sleep(0.05)

    # -- updates ---------------------------------------------------------------

    async def update(
        self,
        operations: Sequence[Operation],
        spec: Optional[EpsilonSpec] = None,
        timeout: Optional[float] = None,
        saga: Optional[str] = None,
        abort: bool = False,
    ) -> Dict[str, Any]:
        """Submit an update ET, split per owning group.

        Single-shard updates keep full per-group semantics; an update
        spanning shards is submitted to each group concurrently
        (independent per-shard MSets, no cross-group atomicity).
        COMPE saga steps carry the saga id to every touched group, so
        a later :meth:`decide` can reach each group's members.
        """
        ops = list(operations)
        by_shard: Dict[int, List[Operation]] = {}
        for op in ops:
            by_shard.setdefault(self.shard_of(op.key), []).append(op)
        if not by_shard:
            raise ValueError("update needs at least one operation")

        async def one(shard: int, shard_ops: List[Operation]) -> Any:
            return await self._call(
                shard, "update", shard_ops, spec, timeout,
                saga=saga, abort=abort,
            )

        shards = sorted(by_shard)
        if abort:
            # Every touched group compensates its split independently
            # and raises COMPENSATED; collect them all and re-raise one
            # failure carrying the union of undone tids.
            outcomes = await asyncio.gather(
                *(one(shard, by_shard[shard]) for shard in shards),
                return_exceptions=True,
            )
            compensated: List[str] = []
            for outcome in outcomes:
                if isinstance(outcome, LiveETFailed) and outcome.compensated:
                    compensated.extend(outcome.compensated_tids)
                elif isinstance(outcome, BaseException):
                    raise outcome
            raise LiveETFailed(
                "update applied optimistically and undone by backward "
                "recovery on %d shard(s)" % len(shards),
                "COMPENSATED",
                {"compensated": compensated},
            )
        frames = await asyncio.gather(
            *(one(shard, by_shard[shard]) for shard in shards)
        )
        return {
            "applied": len(ops),
            "shards": dict(zip(shards, frames)),
        }

    async def write(self, key: str, value: Any) -> Dict[str, Any]:
        return await self.update([WriteOp(key, value)])

    async def increment(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([IncrementOp(key, amount)])

    async def decrement(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([DecrementOp(key, amount)])

    async def append(self, key: str, item: Any) -> Dict[str, Any]:
        return await self.update([AppendOp(key, item)])

    async def decide(
        self,
        outcome: str,
        saga: Optional[str] = None,
        tids: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Decide a COMPE saga commit/abort across every shard group.

        A saga's steps may be spread over several groups (each step
        landed at the group owning its keys), so the decide fans out to
        all shards; groups with no recorded steps for the saga answer
        "unknown saga" and are skipped.  The merged reply unions
        ``decided``/``skipped``/``compensated`` across groups.
        """

        async def one(shard: int) -> Any:
            try:
                return await self._call(
                    shard, "decide", outcome,
                    saga=saga, tids=tids, timeout=timeout,
                )
            except LiveETFailed as exc:
                if saga is not None and "unknown saga" in str(exc):
                    return None  # this group held no steps of the saga
                raise

        shards = list(range(self.n_shards))
        replies = await asyncio.gather(*(one(shard) for shard in shards))
        merged: Dict[str, Any] = {
            "outcome": outcome,
            "decided": [],
            "skipped": [],
            "shards": {},
        }
        if outcome == "abort":
            merged["compensated"] = []
        if saga is not None:
            merged["saga"] = saga
        hits = 0
        for shard, reply in zip(shards, replies):
            if reply is None:
                continue
            hits += 1
            merged["shards"][shard] = reply
            merged["decided"].extend(reply.get("decided", ()))
            merged["skipped"].extend(reply.get("skipped", ()))
            if outcome == "abort":
                merged["compensated"].extend(reply.get("compensated", ()))
        if saga is not None and not hits:
            raise LiveETFailed(
                "unknown saga %r (no group recorded any step)" % (saga,),
                "ValueError",
                {},
            )
        return merged

    # -- queries ---------------------------------------------------------------

    async def query(
        self,
        keys: Sequence[str],
        spec: Specish = None,
        timeout: Optional[float] = None,
    ) -> LiveETResult:
        """One logical query ET, fanned out per owning group.

        ``spec`` accepts the typed surface (:class:`ReadOptions` or a
        :class:`Consistency` level) or a raw :class:`EpsilonSpec`.
        Each group runs a real query ET over its keys under the full
        budget; the merged result reports the union of values
        and the *sum* of per-shard observed inconsistency (each
        shard's gauges bound disjoint object sets, so the sum bounds
        the merged read — and a spec satisfied per shard is therefore
        reported honestly, not re-checked against the merged total).
        ``staleness`` merges as the worst (max) per-shard lag;
        ``from_cache`` only when every shard answered from cache.  A
        session token in ``spec`` is attached to every per-shard
        query; each group checks the token sites it replicates, so the
        per-shard checks compose to the same guarantee.
        """
        by_shard = group_keys_by_shard(list(keys), self.n_shards)
        if not by_shard:
            raise ValueError("query needs at least one key")

        async def one(shard: int) -> LiveETResult:
            return await self._call(
                shard, "query", by_shard[shard], spec, timeout
            )

        shards = sorted(by_shard)
        results = await asyncio.gather(*(one(shard) for shard in shards))
        merged: Dict[str, Any] = {
            "values": {},
            "inconsistency": 0,
            "overlap": [],
            "waits": 0,
            "degraded": False,
            "staleness": None,
            "served_by": None,
            "from_cache": bool(results),
            "frontiers": {},
        }
        overlap: List[str] = []
        served: List[str] = []
        for result in results:
            merged["values"].update(result.values)
            merged["inconsistency"] += result.inconsistency
            overlap.extend(result.overlap)
            merged["waits"] += result.waits
            merged["degraded"] = merged["degraded"] or result.degraded
            if result.staleness is not None:
                merged["staleness"] = max(
                    merged["staleness"] or 0, result.staleness
                )
            if result.served_by:
                served.append(result.served_by)
            merged["from_cache"] = merged["from_cache"] and result.from_cache
            for site, seq in result.frontiers.items():
                if seq > merged["frontiers"].get(site, 0):
                    merged["frontiers"][site] = seq
        merged["overlap"] = sorted(set(overlap))
        if served:
            merged["served_by"] = ",".join(sorted(set(served)))
        return LiveETResult(merged)

    async def read(
        self,
        key: str,
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        opts = resolve_read_options(
            options,
            epsilon=epsilon,
            value_epsilon=value_epsilon,
            timeout=timeout,
            caller="read",
        )
        result = await self.query([key], opts, timeout=opts.timeout)
        return result["values"][key]

    async def read_many(
        self,
        keys: Sequence[str],
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        opts = resolve_read_options(
            options,
            epsilon=epsilon,
            value_epsilon=value_epsilon,
            timeout=timeout,
            caller="read_many",
        )
        result = await self.query(list(keys), opts, timeout=opts.timeout)
        return dict(result["values"])

    def session(self, token: Optional[SessionToken] = None) -> "RouterSession":
        """Open a read-your-writes + monotonic-reads session spanning
        shards (``async with router.session() as s:``)."""
        return RouterSession(self, token)

    # -- fan-out convenience ---------------------------------------------------

    async def _fan_out(
        self, verb: str, *args: Any, **kwargs: Any
    ) -> Dict[int, Any]:
        """Run one verb on every shard concurrently; results by shard."""
        shards = list(range(self.n_shards))
        results = await asyncio.gather(
            *(self._call(shard, verb, *args, **kwargs) for shard in shards)
        )
        return dict(zip(shards, results))

    async def settle(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Drain every shard concurrently (max-of-shards latency).

        ``timeout`` applies per shard; a shard that cannot drain in
        time surfaces its own TimeoutError.
        """
        replies = await self._fan_out("settle", timeout=timeout)
        return {
            "drained": all(r.get("drained") for r in replies.values()),
            "waited": any(r.get("waited") for r in replies.values()),
            "shards": replies,
        }

    async def values(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Full store contents, unioned across shards (disjoint keys)."""
        merged: Dict[str, Any] = {}
        for reply in (await self._fan_out("values", timeout=timeout)).values():
            merged.update(reply)
        return merged

    async def stats(
        self, timeout: Optional[float] = None
    ) -> Dict[int, Dict[str, Any]]:
        """Per-shard stats from each group's primary replica."""
        return await self._fan_out("stats", timeout=timeout)

    async def metrics(
        self, timeout: Optional[float] = None
    ) -> Dict[int, Dict[str, Any]]:
        """Per-shard metrics scrape (samples carry the shard label)."""
        return await self._fan_out("metrics", timeout=timeout)

    async def ping(
        self, timeout: Optional[float] = None
    ) -> Dict[int, Dict[str, Any]]:
        return await self._fan_out("ping", timeout=timeout)

    async def refresh_membership(
        self, timeout: Optional[float] = None
    ) -> Dict[int, int]:
        """Ask each group's client to re-learn replica addresses from
        gossiped membership; returns per-shard refresh counters."""
        out: Dict[int, int] = {}
        for shard in range(self.n_shards):
            client = await self._client(shard)
            await client.refresh_membership(timeout=timeout)
            out[shard] = client.membership_refreshes
        return out

    async def snapshot(self, timeout: float = 30.0) -> Dict[int, Dict[str, Any]]:
        return await self._fan_out("snapshot", timeout=timeout)

    async def close(self) -> None:
        self._closed = True
        clients = [client for _, client in self._clients.values()]
        self._clients.clear()
        for client in clients:
            await client.close()


class RouterSession:
    """Read-your-writes + monotonic-reads session across shards.

    One :class:`~repro.consistency.SessionToken` spans every shard:
    per-shard updates each advance the token past their committed tid,
    and reads attach the whole token — every group checks the token
    sites it replicates, so the per-shard checks compose to the same
    session guarantee the single-group :class:`LiveSession` gives.
    """

    def __init__(
        self, router: ShardRouter, token: Optional[SessionToken] = None
    ) -> None:
        self._router = router
        self.token = token if token is not None else SessionToken()

    async def __aenter__(self) -> "RouterSession":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        return None

    def _opts(
        self,
        options: Union[ReadOptions, Consistency, float, None],
        epsilon: Optional[float],
        value_epsilon: Optional[float],
        timeout: Optional[float],
        caller: str,
    ) -> ReadOptions:
        opts = resolve_read_options(
            options,
            epsilon=epsilon,
            value_epsilon=value_epsilon,
            timeout=timeout,
            caller=caller,
        )
        return ReadOptions(
            consistency=opts.consistency,
            session=self.token,
            prefer=opts.prefer,
            timeout=opts.timeout,
        )

    async def read(
        self,
        key: str,
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        opts = self._opts(options, epsilon, value_epsilon, timeout, "read")
        result = await self._router.query([key], opts, timeout=opts.timeout)
        self.token.merge(result.frontiers)
        return result.values[key]

    async def read_many(
        self,
        keys: Sequence[str],
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        opts = self._opts(
            options, epsilon, value_epsilon, timeout, "read_many"
        )
        result = await self._router.query(
            list(keys), opts, timeout=opts.timeout
        )
        self.token.merge(result.frontiers)
        return dict(result.values)

    async def query(
        self,
        keys: Sequence[str],
        spec: Specish = None,
        timeout: Optional[float] = None,
    ) -> LiveETResult:
        if isinstance(spec, EpsilonSpec):
            opts = ReadOptions(
                consistency=Consistency(
                    epsilon=spec.import_limit, value_epsilon=spec.value_limit
                ),
                session=self.token,
                timeout=timeout,
            )
        else:
            opts = self._opts(spec, None, None, timeout, "query")
        result = await self._router.query(list(keys), opts, timeout=timeout)
        self.token.merge(result.frontiers)
        return result

    async def update(
        self,
        operations: Sequence[Operation],
        spec: Optional[EpsilonSpec] = None,
        timeout: Optional[float] = None,
        saga: Optional[str] = None,
        abort: bool = False,
    ) -> Dict[str, Any]:
        frame = await self._router.update(
            operations, spec, timeout, saga=saga, abort=abort
        )
        for shard_frame in frame.get("shards", {}).values():
            tid = shard_frame.get("tid")
            if isinstance(tid, str):
                self.token.observe_write(tid)
        return frame

    async def write(self, key: str, value: Any) -> Dict[str, Any]:
        return await self.update([WriteOp(key, value)])

    async def increment(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([IncrementOp(key, amount)])

    async def decrement(self, key: str, amount: float = 1) -> Dict[str, Any]:
        return await self.update([DecrementOp(key, amount)])

    async def append(self, key: str, item: Any) -> Dict[str, Any]:
        return await self.update([AppendOp(key, item)])
