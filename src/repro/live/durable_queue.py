"""File-backed durable stable queues for the live runtime.

The live analogue of :mod:`repro.sim.stable_queue`: the paper factors
message loss out of replica control by giving every channel an
at-least-once, persistently-retried queue; here the persistence is a
real append-only JSONL log on disk, so queue contents survive process
restarts (Ravishankar-style asynchronous checkpointing of the channel
state).

Two halves, matching the two ends of a channel:

* :class:`DurableOutbox` — the sender's half.  ``append`` assigns the
  next channel sequence number and durably logs the payload *before*
  the caller acknowledges anything to a client; ``ack_through``
  processes a cumulative acknowledgement (everything ``<= seq`` is
  durably held by the receiver) and advances the delivery frontier in
  one batched truncation.  After a restart everything past the
  frontier is pending again and will be re-sent.
* :class:`DurableInbox` — the receiver's half.  ``record`` /
  ``record_many`` durably log received payloads and deduplicate by
  sequence number (the channel is FIFO, so a contiguous frontier
  suffices); ``replay`` yields every recorded payload in receipt
  order for crash recovery.

Group commit: ``append_many`` / ``record_many`` coalesce a whole
batch of records into a *single* write + flush + (at most one) fsync,
so the per-record durability cost of the propagation hot path is paid
once per batch instead of once per MSet.  ``fsync_interval`` further
rate-limits fsyncs on high-throughput channels: ``0`` (the default)
syncs every (group) append; ``> 0`` syncs at most once per interval —
opt-in, and irrelevant unless ``fsync=True``.

The rate limit never weakens a *durability claim*: before anything
recorded inside the fsync window is acknowledged upstream (a channel
ack to the sending peer, a commit ack to a client) the caller must
invoke :meth:`~_DurableLog.sync`, which forces a covering fsync if —
and only if — unsynced records exist (``dirty``).  Without that, a
receiver could ack a batch, the sender would truncate its outbox, and
a crash of the receiver inside the window would lose the batch from
both ends: an acknowledged update gone.  ``sync`` is a no-op when
``fsync=False`` (explicitly non-durable mode) or when nothing is
dirty, so the hot path with ``fsync_interval=0`` pays nothing extra.

Observability: every log tracks ``fsync_count``, ``fsync_seconds``
(cumulative fsync latency) and ``bytes_written``; the server mirrors
them into the metrics registry at scrape time.

The application-visible contract is exactly-once FIFO per channel:
at-least-once retries on the sender plus frontier dedup on the
receiver.

Log format vs wire format: the record format here is **always** JSON
lines — one ``{"seq": N, "payload": {...}}`` object per line — no
matter which codec the peer channel negotiated on the wire
(:mod:`repro.live.protocol` may speak the ``bin1`` binary framing).
That split is deliberate: logs stay greppable, debuggable, and
readable by any build, while the wire is free to evolve.  The two
formats meet at the *canonical payload blob* (the compact JSON bytes
of one payload): when the caller already holds that blob — computed
once when an update enters the system — ``append``/``record`` splice
it into the log line verbatim instead of re-serializing the payload,
producing a line byte-identical to a full ``json.dumps`` of the
record.  The blob also rides binary wire frames unchanged, so one
encode covers every hop and every log.  :meth:`DurableOutbox.wire_blob`
returns (computing and caching on demand, e.g. after a restart
reloaded pending payloads from the log) the blob for a pending
record, which is what lets a sender re-send from its log without
re-encoding either.

Compaction: both halves support ``compact(through_seq)`` — a
tail-verified rewrite that drops every record at or below
``through_seq`` once a persisted site snapshot covers them.  The
rewritten log opens with a ``{"meta": "base", "base": N}`` record so a
reload knows the log starts above ``N``; the rewrite goes to a
temporary file that is fsynced, re-parsed (tail verification), and
atomically renamed over the live log, so a crash at any instant leaves
either the complete old log or the complete new one.  ``base`` is the
compaction floor: an outbox can no longer serve records at or below
it (a receiver that regressed past the floor needs a snapshot, not a
log replay), and an inbox treats it as its replay origin.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["DurableOutbox", "DurableInbox"]


def _splice_line(seq: int, blob: bytes) -> str:
    """One log line built around an already-encoded payload blob.

    ``blob`` must be the canonical compact-JSON encoding of the
    payload (``json.dumps(payload, separators=(",", ":"))``), which
    makes the spliced line byte-identical to a full
    ``json.dumps({"seq": seq, "payload": payload})`` — the log stays
    plain JSONL whatever codec the wire negotiated.
    """
    return '{"seq":%d,"payload":%s}\n' % (seq, blob.decode("utf-8"))


def _read_json_lines(path: pathlib.Path) -> Iterator[Dict[str, Any]]:
    if not path.exists():
        return
    with path.open("rb") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # A torn final line from a crash mid-append: everything
                # before it is intact, the torn record was never
                # acknowledged to anyone, so it is safe to drop.
                return
            if not isinstance(record, dict):
                return
            if isinstance(record.get("meta"), str):
                # Compaction marker (or a future control record).
                yield record
                continue
            if (
                not isinstance(record.get("seq"), int)
                or "payload" not in record
            ):
                # Decodable but structurally corrupt (e.g. a partial
                # buffer flush that happens to be valid JSON): same
                # torn-tail reasoning — it was never acknowledged.
                return
            yield record


class _DurableLog:
    """Shared append-side machinery: one JSONL log handle plus the
    group-commit fsync policy."""

    def __init__(
        self,
        path: pathlib.Path,
        fsync: bool = False,
        fsync_interval: float = 0.0,
    ) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self._last_fsync = 0.0
        #: True while flushed-but-not-fsynced records exist (only
        #: meaningful with ``fsync=True`` and ``fsync_interval > 0``).
        self.dirty = False
        #: compaction floor: every sequence number <= base has been
        #: rewritten out of the log (covered by a persisted snapshot).
        self.base = 0
        #: observability counters, mirrored by the server's registry.
        self.fsync_count = 0
        self.fsync_seconds = 0.0
        self.bytes_written = 0
        self.compaction_count = 0
        self.compacted_records = 0
        self._log = None  # opened by subclasses after recovery scan

    def _open_log(self) -> None:
        self._log = self.path.open("a", encoding="utf-8")

    def _write_data(self, data: str) -> None:
        """Group commit: one write + flush + at most one fsync for the
        whole pre-rendered batch of lines."""
        if not data:
            return
        self._log.write(data)
        self._log.flush()
        self.bytes_written += len(data)
        if self.fsync:
            self.dirty = True
        self._maybe_fsync()

    def _write_records(self, records: Sequence[Dict[str, Any]]) -> None:
        if not records:
            return
        self._write_data(
            "".join(
                json.dumps(record, separators=(",", ":")) + "\n"
                for record in records
            )
        )

    def _maybe_fsync(self) -> None:
        if not self.fsync:
            return
        now = time.monotonic()
        if (
            self.fsync_interval > 0
            and now - self._last_fsync < self.fsync_interval
        ):
            return  # rate-limited: the next append inside the window rides free
        self._do_fsync()

    def _do_fsync(self) -> None:
        started = time.monotonic()
        os.fsync(self._log.fileno())
        now = time.monotonic()
        self.fsync_count += 1
        self.fsync_seconds += now - started
        self._last_fsync = now
        self.dirty = False

    def sync(self) -> bool:
        """Force a covering fsync of any unsynced records.

        Must be called before a durability claim is made about records
        written inside the ``fsync_interval`` window — before a channel
        ack is sent upstream, and before a client commit ack.  Returns
        True when an fsync actually ran (False: nothing was dirty, or
        the log is non-durable by configuration).
        """
        if not self.fsync or not self.dirty:
            return False
        self._do_fsync()
        return True

    def _fsync_dir(self) -> None:
        """Persist a rename in the containing directory's metadata."""
        try:
            fd = os.open(str(self.path.parent), os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; rename still atomic
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _rewrite(
        self, records: Sequence[Dict[str, Any]], base: int
    ) -> None:
        """Tail-verified atomic rewrite of the log.

        Writes a fresh log — a ``{"meta": "base", "base": N}`` marker
        followed by ``records`` — to a temporary file, fsyncs it,
        re-parses it end to end (tail verification: the bytes that hit
        disk decode back to exactly what we meant to keep), then
        atomically renames it over the live log.  A crash before the
        rename leaves the old log intact; after the rename, the new
        one is complete.  Either way a restart recovers a consistent
        log — there is no instant at which records are half-dropped.
        """
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        marker = {"meta": "base", "base": base}
        data = "".join(
            json.dumps(record, separators=(",", ":")) + "\n"
            for record in [marker, *records]
        )
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        check = list(_read_json_lines(tmp))
        ok = (
            len(check) == 1 + len(records)
            and check[0].get("meta") == "base"
            and check[0].get("base") == base
            and (
                not records
                or check[-1].get("seq") == records[-1].get("seq")
            )
        )
        if not ok:
            tmp.unlink(missing_ok=True)
            raise RuntimeError(
                "compaction tail-verify failed for %s" % self.path
            )
        if self._log is not None and not self._log.closed:
            self._log.close()
        os.replace(tmp, self.path)
        self._fsync_dir()
        self.bytes_written += len(data)
        self._open_log()

    def close(self) -> None:
        if self._log is not None and not self._log.closed:
            self._log.flush()
            if self.fsync:
                self._do_fsync()
            self._log.close()


class DurableOutbox(_DurableLog):
    """Sender half of one durable (src, dst) channel."""

    def __init__(
        self,
        path: pathlib.Path,
        fsync: bool = False,
        fsync_interval: float = 0.0,
    ) -> None:
        super().__init__(path, fsync, fsync_interval)
        self._ack_path = self.path.with_suffix(self.path.suffix + ".ack")
        #: highest contiguously acknowledged sequence number.
        self.frontier = 0
        if self._ack_path.exists():
            try:
                self.frontier = int(self._ack_path.read_text().strip() or 0)
            except ValueError:
                self.frontier = 0
        #: unacknowledged payloads by sequence number, insertion-ordered.
        self._pending: Dict[int, Any] = {}
        #: canonical wire bytes of pending payloads (the zero
        #: re-encode relay cache); lazily filled by :meth:`wire_blob`
        #: for records reloaded from the log, dropped as acks retire
        #: their sequence numbers.
        self._blobs: Dict[int, bytes] = {}
        #: acks received for sequence numbers we never assigned — a
        #: receiver durably holds records this (restarted) sender has
        #: no memory of sending, i.e. the sender lost its own log.
        self.regressed_acks = 0
        self._seq = self.frontier
        for record in _read_json_lines(self.path):
            if record.get("meta") == "base":
                base = int(record.get("base", 0))
                self.base = max(self.base, base)
                # Compaction only ever drops acked records, so the
                # floor is also a lower bound on the ack frontier
                # (covers a lost/stale .ack file).
                self.frontier = max(self.frontier, base)
                self._seq = max(self._seq, base)
                continue
            seq = int(record["seq"])
            self._seq = max(self._seq, seq)
            if seq > self.frontier:
                self._pending[seq] = record["payload"]
        self._open_log()

    def append(self, payload: Any, blob: Optional[bytes] = None) -> int:
        """Durably enqueue ``payload``; returns its sequence number.

        ``blob``, when given, is the payload's canonical wire bytes
        (see :func:`repro.live.protocol.payload_blob`): the log line
        is spliced around it instead of re-serializing, and it seeds
        the :meth:`wire_blob` cache for the sender's relay path.
        """
        blobs = None if blob is None else [blob]
        return self.append_many([payload], blobs=blobs)[0]

    def append_many(
        self,
        payloads: Sequence[Any],
        blobs: Optional[Sequence[bytes]] = None,
    ) -> List[int]:
        """Group-commit append: one write + fsync for the whole batch.

        Returns the assigned sequence numbers, contiguous and in
        payload order.  ``blobs`` (parallel to ``payloads``) carries
        pre-encoded payload bytes, spliced into the log lines and
        cached for the wire.
        """
        seqs: List[int] = []
        lines: List[str] = []
        for index, payload in enumerate(payloads):
            self._seq += 1
            self._pending[self._seq] = payload
            if blobs is not None:
                self._blobs[self._seq] = blobs[index]
                lines.append(_splice_line(self._seq, blobs[index]))
            else:
                lines.append(
                    json.dumps(
                        {"seq": self._seq, "payload": payload},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            seqs.append(self._seq)
        self._write_data("".join(lines))
        return seqs

    def wire_blob(self, seqno: int) -> bytes:
        """Canonical wire bytes of one pending payload.

        Cache hit for payloads appended with a blob; computed once and
        cached for payloads reloaded from the log (restart, rewind) —
        either way, every subsequent send and re-send of this record
        forwards the same bytes with no re-encode.
        """
        blob = self._blobs.get(seqno)
        if blob is None:
            blob = json.dumps(
                self._pending[seqno], separators=(",", ":")
            ).encode("utf-8")
            self._blobs[seqno] = blob
        return blob

    def ack(self, seqno: int) -> None:
        """The receiver confirmed durable receipt of exactly ``seqno``."""
        if seqno in self._pending:
            del self._pending[seqno]
            self._blobs.pop(seqno, None)
        if seqno > self.frontier and not any(
            s <= seqno for s in self._pending
        ):
            self.frontier = max(self.frontier, seqno)
            self._ack_path.write_text(str(self.frontier))

    def ack_through(self, seqno: int) -> List[int]:
        """Cumulative acknowledgement: the receiver durably holds every
        sequence number ``<= seqno``.

        Drops the whole covered range in one batched truncation (one
        frontier write instead of one per record) and returns the
        sequence numbers that were newly acknowledged, in order.
        """
        if seqno > self._seq:
            # The receiver durably holds records we never assigned:
            # this sender restarted from an older (or empty) log — it
            # regressed.  Count it (the server triggers catch-up off
            # this) instead of silently pretending we sent that far.
            self.regressed_acks += 1
            seqno = self._seq
        covered = sorted(s for s in self._pending if s <= seqno)
        for s in covered:
            del self._pending[s]
            self._blobs.pop(s, None)
        if seqno > self.frontier:
            self.frontier = seqno
            self._ack_path.write_text(str(self.frontier))
        return covered

    def rewind_to(self, ack_seq: int) -> bool:
        """Reload records above ``ack_seq`` into the pending set.

        Repairs a channel whose receiver regressed below our ack
        frontier (it lost its inbox and now durably holds only
        ``<= ack_seq``): previously-acked records still in the log
        become pending again and will be re-sent in order.  Returns
        False when the needed records were compacted away
        (``ack_seq < base``) — the receiver then needs a snapshot,
        not a log replay.
        """
        if ack_seq >= self.frontier:
            return True  # no regression; nothing to reload
        if ack_seq < self.base:
            return False  # prefix compacted: unservable from this log
        for record in _read_json_lines(self.path):
            if record.get("meta") == "base":
                continue
            seq = int(record["seq"])
            if ack_seq < seq and seq not in self._pending:
                self._pending[seq] = record["payload"]
        self._pending = dict(sorted(self._pending.items()))
        self.frontier = ack_seq
        self._ack_path.write_text(str(self.frontier))
        return True

    def reset_to(self, seqno: int) -> None:
        """Re-seed an (empty or stale) outbox at ``seqno``.

        Used when installing a snapshot on a wiped site: the peer
        channels restart at the snapshot's frontier — sequence numbers
        at or below it are covered by the snapshot and can never be
        served from this log again, so the floor, the ack frontier and
        the next-assignment counter all become ``seqno``.
        """
        self._rewrite([], base=seqno)
        self._pending.clear()
        self._blobs.clear()
        self.base = seqno
        self.frontier = seqno
        self._seq = seqno
        self._ack_path.write_text(str(self.frontier))

    def compact(self, through_seq: int) -> int:
        """Drop acked records ``<= through_seq`` from the log.

        Only acked records are eligible (the frontier caps the cut:
        pending records must survive for re-sends), and the caller is
        responsible for the snapshot-coverage invariant — compact only
        below a *persisted* snapshot frontier, so anything dropped
        here is reconstructable from the snapshot.  Returns the number
        of records removed.  Crash-safe via the tail-verified rewrite.
        """
        through = min(through_seq, self.frontier)
        if through <= self.base:
            return 0
        survivors: List[Dict[str, Any]] = []
        dropped = 0
        for record in _read_json_lines(self.path):
            if record.get("meta") == "base":
                continue
            if int(record["seq"]) > through:
                survivors.append(record)
            else:
                dropped += 1
        self._rewrite(survivors, base=through)
        self.base = through
        self.compaction_count += 1
        self.compacted_records += dropped
        return dropped

    def pending(self) -> List[Tuple[int, Any]]:
        """Unacknowledged (seqno, payload) pairs in FIFO order."""
        return sorted(self._pending.items())

    def pending_after(
        self, seqno: int, limit: int
    ) -> List[Tuple[int, Any]]:
        """Up to ``limit`` pending (seqno, payload) pairs above
        ``seqno``, in order.

        The sender's scan: cumulative acks keep the pending set a
        (nearly) dense seqno range, so a bounded walk from the floor
        replaces sorting the whole backlog — which made every sender
        wakeup O(backlog log backlog) and the drain of a deep backlog
        quadratic.  Seqnos individually acked out of order (the
        non-cumulative :meth:`ack`) leave holes the walk just skips.
        """
        out: List[Tuple[int, Any]] = []
        pending = self._pending
        s = max(seqno, self.frontier)
        hi = self._seq
        while len(out) < limit and s < hi:
            s += 1
            payload = pending.get(s)
            if payload is not None:
                out.append((s, payload))
        return out

    def drained(self) -> bool:
        return not self._pending

    @property
    def backlog(self) -> int:
        return len(self._pending)


class DurableInbox(_DurableLog):
    """Receiver half of one durable (src, dst) channel."""

    def __init__(
        self,
        path: pathlib.Path,
        fsync: bool = False,
        fsync_interval: float = 0.0,
    ) -> None:
        super().__init__(path, fsync, fsync_interval)
        #: highest sequence number durably recorded, contiguous from
        #: ``base + 1`` (``base`` is 0 for a never-compacted log).
        self.frontier = 0
        self._records: List[Tuple[int, Any]] = []
        for record in _read_json_lines(self.path):
            if record.get("meta") == "base":
                base = int(record.get("base", 0))
                self.base = max(self.base, base)
                self.frontier = max(self.frontier, base)
                continue
            seq = int(record["seq"])
            if seq == self.frontier + 1:
                self._records.append((seq, record["payload"]))
                self.frontier = seq
        self._open_log()

    def record(
        self, seqno: int, payload: Any, blob: Optional[bytes] = None
    ) -> bool:
        """Durably record one received payload.

        Returns True when the payload is fresh (first receipt), False
        for a duplicate.  Out-of-order receipts beyond ``frontier + 1``
        are refused (also False): the sender re-sends in order, so a
        gap can only mean a dropped earlier frame.  ``blob`` (the
        payload's canonical wire bytes) splices the log line instead
        of re-serializing the payload.
        """
        if seqno != self.frontier + 1:
            return False
        if blob is not None:
            self._write_data(_splice_line(seqno, blob))
        else:
            self._write_records([{"seq": seqno, "payload": payload}])
        self._records.append((seqno, payload))
        self.frontier = seqno
        return True

    def record_many(
        self,
        items: Sequence[Tuple[int, Any]],
        blobs: Optional[Sequence[bytes]] = None,
    ) -> int:
        """Group-commit record of a contiguous batch of receipts.

        ``items`` must start at ``frontier + 1`` and be gap-free; the
        caller (the batch receive path) filters duplicates and stops at
        the first gap before calling.  The whole batch lands with one
        write + flush + fsync.  ``blobs`` (parallel to ``items``)
        carries the payloads' wire bytes as received — a binary batch
        is logged without one ``json.dumps``.  Returns the number
        recorded.
        """
        lines: List[str] = []
        expected = self.frontier + 1
        for index, (seqno, payload) in enumerate(items):
            if seqno != expected:
                raise ValueError(
                    "non-contiguous batch record: got %d, expected %d"
                    % (seqno, expected)
                )
            if blobs is not None:
                lines.append(_splice_line(seqno, blobs[index]))
            else:
                lines.append(
                    json.dumps(
                        {"seq": seqno, "payload": payload},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            expected += 1
        self._write_data("".join(lines))
        for seqno, payload in items:
            self._records.append((seqno, payload))
            self.frontier = seqno
        return len(lines)

    def duplicate(self, seqno: int) -> bool:
        """True when ``seqno`` was already recorded (needs re-ack only)."""
        return seqno <= self.frontier

    def replay(self) -> List[Tuple[int, Any]]:
        """Recorded (seqno, payload) pairs above the compaction floor,
        in receipt order — the log tail a snapshot does not cover."""
        return list(self._records)

    def compact(self, through_seq: int) -> int:
        """Drop recorded receipts ``<= through_seq`` from the log.

        The caller must hold a persisted snapshot whose applied
        frontier for this channel is at least ``through_seq`` — after
        compaction, recovery replays only the tail above the floor on
        top of that snapshot.  Crash-safe via the tail-verified
        rewrite; returns the number of records removed.
        """
        through = min(through_seq, self.frontier)
        if through <= self.base:
            return 0
        survivors = [(s, p) for s, p in self._records if s > through]
        self._rewrite(
            [{"seq": s, "payload": p} for s, p in survivors],
            base=through,
        )
        dropped = len(self._records) - len(survivors)
        self._records = survivors
        self.base = through
        self.compaction_count += 1
        self.compacted_records += dropped
        return dropped

    def reset_to(self, seqno: int) -> None:
        """Restart this inbox at frontier ``seqno`` with an empty tail.

        Used when installing a snapshot that already covers every
        receipt at or below ``seqno``: the local tail (if any) is
        discarded and the next acceptable receipt becomes
        ``seqno + 1``.  Crash-safe via the tail-verified rewrite.
        """
        self._rewrite([], base=seqno)
        self._records = []
        self.base = seqno
        self.frontier = seqno
