"""File-backed durable stable queues for the live runtime.

The live analogue of :mod:`repro.sim.stable_queue`: the paper factors
message loss out of replica control by giving every channel an
at-least-once, persistently-retried queue; here the persistence is a
real append-only JSONL log on disk, so queue contents survive process
restarts (Ravishankar-style asynchronous checkpointing of the channel
state).

Two halves, matching the two ends of a channel:

* :class:`DurableOutbox` — the sender's half.  ``append`` assigns the
  next channel sequence number and durably logs the payload *before*
  the caller acknowledges anything to a client; ``ack`` advances the
  contiguous delivery frontier.  After a restart everything past the
  frontier is pending again and will be re-sent.
* :class:`DurableInbox` — the receiver's half.  ``record`` durably logs
  a received payload and deduplicates by sequence number (the channel
  is FIFO, so a contiguous frontier suffices); ``replay`` yields every
  recorded payload in receipt order for crash recovery.

The application-visible contract is exactly-once FIFO per channel:
at-least-once retries on the sender plus frontier dedup on the
receiver.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["DurableOutbox", "DurableInbox"]


def _append_json_line(handle, obj: Dict[str, Any], fsync: bool) -> None:
    handle.write(json.dumps(obj, separators=(",", ":")) + "\n")
    handle.flush()
    if fsync:
        os.fsync(handle.fileno())


def _read_json_lines(path: pathlib.Path) -> Iterator[Dict[str, Any]]:
    if not path.exists():
        return
    with path.open("rb") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # A torn final line from a crash mid-append: everything
                # before it is intact, the torn record was never
                # acknowledged to anyone, so it is safe to drop.
                return
            if (
                not isinstance(record, dict)
                or not isinstance(record.get("seq"), int)
                or "payload" not in record
            ):
                # Decodable but structurally corrupt (e.g. a partial
                # buffer flush that happens to be valid JSON): same
                # torn-tail reasoning — it was never acknowledged.
                return
            yield record


class DurableOutbox:
    """Sender half of one durable (src, dst) channel."""

    def __init__(self, path: pathlib.Path, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._ack_path = self.path.with_suffix(self.path.suffix + ".ack")
        #: highest contiguously acknowledged sequence number.
        self.frontier = 0
        if self._ack_path.exists():
            try:
                self.frontier = int(self._ack_path.read_text().strip() or 0)
            except ValueError:
                self.frontier = 0
        #: unacknowledged payloads by sequence number, insertion-ordered.
        self._pending: Dict[int, Any] = {}
        self._seq = self.frontier
        for record in _read_json_lines(self.path):
            seq = int(record["seq"])
            self._seq = max(self._seq, seq)
            if seq > self.frontier:
                self._pending[seq] = record["payload"]
        self._log = self.path.open("a", encoding="utf-8")

    def append(self, payload: Any) -> int:
        """Durably enqueue ``payload``; returns its sequence number."""
        self._seq += 1
        seq = self._seq
        _append_json_line(
            self._log, {"seq": seq, "payload": payload}, self.fsync
        )
        self._pending[seq] = payload
        return seq

    def ack(self, seqno: int) -> None:
        """The receiver confirmed durable receipt of ``seqno``."""
        if seqno in self._pending:
            del self._pending[seqno]
        if seqno > self.frontier and not any(
            s <= seqno for s in self._pending
        ):
            self.frontier = max(self.frontier, seqno)
            self._ack_path.write_text(str(self.frontier))

    def pending(self) -> List[Tuple[int, Any]]:
        """Unacknowledged (seqno, payload) pairs in FIFO order."""
        return sorted(self._pending.items())

    def drained(self) -> bool:
        return not self._pending

    @property
    def backlog(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        if not self._log.closed:
            self._log.close()


class DurableInbox:
    """Receiver half of one durable (src, dst) channel."""

    def __init__(self, path: pathlib.Path, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: highest sequence number durably recorded, contiguous from 1.
        self.frontier = 0
        self._records: List[Tuple[int, Any]] = []
        for record in _read_json_lines(self.path):
            seq = int(record["seq"])
            if seq == self.frontier + 1:
                self._records.append((seq, record["payload"]))
                self.frontier = seq
        self._log = self.path.open("a", encoding="utf-8")

    def record(self, seqno: int, payload: Any) -> bool:
        """Durably record one received payload.

        Returns True when the payload is fresh (first receipt), False
        for a duplicate.  Out-of-order receipts beyond ``frontier + 1``
        are refused (also False): the sender re-sends in order, so a
        gap can only mean a dropped earlier frame.
        """
        if seqno != self.frontier + 1:
            return False
        _append_json_line(
            self._log, {"seq": seqno, "payload": payload}, self.fsync
        )
        self._records.append((seqno, payload))
        self.frontier = seqno
        return True

    def duplicate(self, seqno: int) -> bool:
        """True when ``seqno`` was already recorded (needs re-ack only)."""
        return seqno <= self.frontier

    def replay(self) -> List[Tuple[int, Any]]:
        """All recorded (seqno, payload) pairs in receipt order."""
        return list(self._records)

    def close(self) -> None:
        if not self._log.closed:
            self._log.close()
