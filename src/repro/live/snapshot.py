"""Versioned, checksummed site snapshots for the live runtime.

A snapshot is a self-describing image of one replica's applied state:
the engine checkpoint (store values with their RITU write stamps,
method-specific apply state) plus the per-channel applied frontiers
that position the image against every durable log.  Together with the
log tails above those frontiers it reconstructs the exact pre-crash
state — which is what licenses log compaction below the snapshot
frontier and bounded-time rejoin of a wiped replica (catch-up fetches
a peer's snapshot instead of replaying the peer's entire history).

Format: an *envelope* ``{"version": 1, "checksum": <sha256 hex>,
"body": {...}}`` where the checksum covers the canonical JSON
encoding (sorted keys, no whitespace) of the body.  The body carries
``site``, ``method``, ``frontiers`` (channel name -> applied seq,
including the local ``_local`` channel, whose frontier doubles as the
site's transaction-id counter) and ``engine`` (the
:meth:`~repro.live.engine.LiveEngine.checkpoint` image).

Persistence is atomic: :class:`SnapshotStore` writes to a temporary
file, fsyncs it, atomically renames over the live snapshot, and
fsyncs the directory — a crash at any instant leaves either the
previous complete snapshot or the new complete one, never a torn
file.  :meth:`SnapshotStore.load` verifies version and checksum and
returns ``None`` for anything unreadable, so a corrupt or torn
snapshot degrades to "no snapshot" (full log replay) instead of
installing garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Optional

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "seal_snapshot",
    "open_snapshot",
    "snapshot_bytes",
    "SnapshotStore",
]

SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot envelope failed validation (version/checksum/shape)."""


def _canonical(body: Dict[str, Any]) -> bytes:
    return json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def seal_snapshot(body: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a snapshot body in a versioned, checksummed envelope."""
    return {
        "version": SNAPSHOT_VERSION,
        "checksum": hashlib.sha256(_canonical(body)).hexdigest(),
        "body": body,
    }


def open_snapshot(envelope: Dict[str, Any]) -> Dict[str, Any]:
    """Validate an envelope and return its body.

    Raises :class:`SnapshotError` on unknown version, checksum
    mismatch, or a structurally alien envelope — a snapshot that
    fails here must be treated as absent, never installed.
    """
    if not isinstance(envelope, dict):
        raise SnapshotError("snapshot envelope is not an object")
    version = envelope.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError("unsupported snapshot version %r" % (version,))
    body = envelope.get("body")
    if not isinstance(body, dict):
        raise SnapshotError("snapshot body missing or malformed")
    digest = hashlib.sha256(_canonical(body)).hexdigest()
    if digest != envelope.get("checksum"):
        raise SnapshotError(
            "snapshot checksum mismatch (corrupt or torn image)"
        )
    for field in ("site", "method", "frontiers", "engine"):
        if field not in body:
            raise SnapshotError("snapshot body lacks %r" % field)
    return body


def snapshot_bytes(envelope: Dict[str, Any]) -> bytes:
    """The serialized form persisted to disk / shipped over the wire."""
    return (
        json.dumps(envelope, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class SnapshotStore:
    """Atomic persistence for one site's snapshot file."""

    def __init__(self, path: pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def save(self, envelope: Dict[str, Any]) -> int:
        """Persist atomically (temp + fsync + rename); returns bytes."""
        data = snapshot_bytes(envelope)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._fsync_dir()
        return len(data)

    def load(self) -> Optional[Dict[str, Any]]:
        """The persisted, *verified* snapshot body, or None.

        Any failure mode — missing file, torn write that survived the
        atomic-rename discipline being bypassed, checksum mismatch,
        alien version — reads as "no snapshot": recovery then falls
        back to full log replay, which is always correct.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return None
        try:
            envelope = json.loads(raw.decode("utf-8"))
            return open_snapshot(envelope)
        except (UnicodeDecodeError, json.JSONDecodeError, SnapshotError):
            return None

    def load_envelope(self) -> Optional[Dict[str, Any]]:
        """The persisted envelope (verified), or None — for shipping
        to a catching-up peer without re-sealing."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return None
        try:
            envelope = json.loads(raw.decode("utf-8"))
            open_snapshot(envelope)  # validate before serving it
            return envelope
        except (UnicodeDecodeError, json.JSONDecodeError, SnapshotError):
            return None

    def exists(self) -> bool:
        return self.path.exists()

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(str(self.path.parent), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)
