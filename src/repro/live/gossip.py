"""Gossip-based membership and adaptive failure detection.

Two pieces, both transport-agnostic (the server piggybacks them on its
existing heartbeat frames):

``MembershipTable``
    A SWIM-style versioned membership table.  Each node record carries
    an *incarnation* number owned by the node it describes plus a
    liveness status (``alive``/``suspect``/``dead``/``left``), its
    address, shard, and the node's locally applied frontier (a digest
    used to trigger anti-entropy catch-up).  Merge rules:

    * a record with a **higher incarnation** always wins;
    * at **equal incarnation** the more severe status wins
      (alive < suspect < dead < left) and frontiers take the max;
    * lower incarnations are ignored.

    A node that sees itself suspected or declared dead at an
    incarnation >= its own *refutes* by bumping its incarnation and
    re-asserting ``alive`` — the refutation then out-versions the stale
    rumor everywhere it gossips.  The table persists to
    ``membership.json`` and bumps its own incarnation on every boot so
    a restarted node's fresh records dominate its former life's.

``FailureDetector``
    A phi-accrual-flavoured adaptive detector.  Instead of one fixed
    staleness threshold (which flaps on high-jitter WAN links), it
    tracks observed heartbeat inter-arrival times per peer and suspects
    a peer only when current staleness exceeds
    ``max(floor, mean + 4*stddev)`` of its recent history; a peer is
    declared *dead* at three times that bound.  With fewer than
    ``min_samples`` observations it falls back to the configured floor,
    which matches the fixed-threshold behaviour of earlier revisions.
"""

from __future__ import annotations

import json
import math
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "LEFT",
    "STATUS_SEVERITY",
    "NodeRecord",
    "MembershipTable",
    "FailureDetector",
]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
LEFT = "left"

#: Equal-incarnation conflicts resolve toward the more severe status.
STATUS_SEVERITY = {ALIVE: 0, SUSPECT: 1, DEAD: 2, LEFT: 3}


class NodeRecord:
    """One gossiped membership record, owned by the node it names."""

    __slots__ = (
        "name", "host", "port", "incarnation", "status", "frontier",
        "shard", "applied",
    )

    def __init__(
        self,
        name: str,
        host: str = "",
        port: int = 0,
        incarnation: int = 1,
        status: str = ALIVE,
        frontier: int = 0,
        shard: Optional[int] = None,
        applied: int = 0,
    ) -> None:
        self.name = name
        self.host = host
        self.port = int(port)
        self.incarnation = int(incarnation)
        self.status = status
        self.frontier = int(frontier)
        self.shard = shard
        #: total MSets the node has applied (its own plus every
        #: peer's) — the staleness signal read fan-out balances on: a
        #: replica whose ``applied`` trails the group's max is lagging
        #: by that many updates.
        self.applied = int(applied)

    def wire(self) -> Dict[str, Any]:
        rec: Dict[str, Any] = {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "incarnation": self.incarnation,
            "status": self.status,
            "frontier": self.frontier,
            "applied": self.applied,
        }
        if self.shard is not None:
            rec["shard"] = self.shard
        return rec

    @classmethod
    def from_wire(cls, rec: Dict[str, Any]) -> "NodeRecord":
        return cls(
            name=str(rec["name"]),
            host=str(rec.get("host", "")),
            port=int(rec.get("port", 0)),
            incarnation=int(rec.get("incarnation", 1)),
            status=str(rec.get("status", ALIVE)),
            frontier=int(rec.get("frontier", 0)),
            shard=rec.get("shard"),
            applied=int(rec.get("applied", 0)),
        )

    def clone(self) -> "NodeRecord":
        return NodeRecord(
            self.name, self.host, self.port, self.incarnation,
            self.status, self.frontier, self.shard, self.applied,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NodeRecord(%s@%s:%d inc=%d %s f=%d)" % (
            self.name, self.host, self.port, self.incarnation, self.status, self.frontier,
        )


class MembershipTable:
    """Versioned membership table with SWIM-style merge semantics.

    ``version`` increments on every local mutation; callers can compare
    it cheaply to decide whether anything changed since they last
    looked.  ``merge`` returns the list of record names whose entries
    changed, so the server can react to joins / address changes /
    frontier advances without diffing the whole table.
    """

    def __init__(self, self_name: str, path: Optional[Path] = None) -> None:
        self.self_name = self_name
        self.path = path
        self._records: Dict[str, NodeRecord] = {}
        self.version = 0

    # ------------------------------------------------------------------
    # persistence

    def load(self) -> None:
        """Load persisted records and bump our own incarnation for this boot."""
        if self.path is not None and self.path.exists():
            try:
                raw = json.loads(self.path.read_text())
                for rec in raw.get("nodes", []):
                    node = NodeRecord.from_wire(rec)
                    self._records[node.name] = node
            except (ValueError, KeyError, OSError):
                self._records = {}
        mine = self._records.get(self.self_name)
        if mine is None:
            mine = NodeRecord(self.self_name)
            self._records[self.self_name] = mine
        else:
            mine.incarnation += 1
        mine.status = ALIVE
        self.version += 1
        self._persist()

    def _persist(self) -> None:
        if self.path is None:
            return
        payload = {"nodes": [rec.wire() for rec in self._records.values()]}
        try:
            self.path.write_text(json.dumps(payload))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # local mutation

    def self_record(self) -> NodeRecord:
        rec = self._records.get(self.self_name)
        if rec is None:
            rec = NodeRecord(self.self_name)
            self._records[self.self_name] = rec
        return rec

    def update_self(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        frontier: Optional[int] = None,
        shard: Optional[int] = None,
        applied: Optional[int] = None,
    ) -> None:
        rec = self.self_record()
        changed = False
        if host is not None and rec.host != host:
            rec.host = host
            changed = True
        if port is not None and rec.port != int(port):
            rec.port = int(port)
            changed = True
        if frontier is not None and rec.frontier != int(frontier):
            rec.frontier = int(frontier)
            changed = True
        if shard is not None and rec.shard != shard:
            rec.shard = shard
            changed = True
        if applied is not None and rec.applied != int(applied):
            rec.applied = int(applied)
            changed = True
        if rec.status != ALIVE:
            rec.status = ALIVE
            rec.incarnation += 1
            changed = True
        if changed:
            self.version += 1
            self._persist()

    def observe(self, name: str, host: str = "", port: int = 0,
                shard: Optional[int] = None) -> None:
        """Seed a record for a statically configured peer (incarnation 0).

        Incarnation 0 never beats a gossiped record from the node
        itself (those start at 1), so static wiring only fills gaps.
        """
        if name in self._records:
            rec = self._records[name]
            if not rec.host and host:
                rec.host, rec.port = host, int(port)
                self.version += 1
            return
        self._records[name] = NodeRecord(
            name, host=host, port=port, incarnation=0, shard=shard,
        )
        self.version += 1
        self._persist()

    def set_status(self, name: str, status: str) -> bool:
        """Locally assert a status for a peer (e.g. from failure detection).

        Keeps the peer's incarnation — the assertion rides the current
        incarnation and loses to the peer's own refutation at a higher
        one.  Returns True if the record changed.
        """
        rec = self._records.get(name)
        if rec is None or rec.status == status:
            return False
        if STATUS_SEVERITY.get(status, 0) <= STATUS_SEVERITY.get(rec.status, 0):
            # only escalate at same incarnation; de-escalation needs a
            # higher incarnation from the node itself
            if status != ALIVE:
                return False
            return False
        rec.status = status
        self.version += 1
        self._persist()
        return True

    # ------------------------------------------------------------------
    # merge

    def merge(self, records: Iterable[Dict[str, Any]]) -> List[str]:
        """Merge gossiped records; returns names whose entries changed.

        Self-refutation: if the incoming gossip claims *we* are suspect
        or dead at an incarnation >= ours, bump our incarnation and
        re-assert alive — the refutation dominates the rumor.
        """
        changed: List[str] = []
        for raw in records:
            try:
                incoming = NodeRecord.from_wire(raw)
            except (KeyError, ValueError, TypeError):
                continue
            if incoming.name == self.self_name:
                mine = self.self_record()
                if (
                    incoming.status in (SUSPECT, DEAD)
                    and incoming.incarnation >= mine.incarnation
                ):
                    mine.incarnation = incoming.incarnation + 1
                    mine.status = ALIVE
                    changed.append(mine.name)
                continue
            current = self._records.get(incoming.name)
            if current is None:
                self._records[incoming.name] = incoming
                changed.append(incoming.name)
                continue
            if incoming.incarnation > current.incarnation:
                self._records[incoming.name] = incoming
                if incoming.frontier < current.frontier:
                    incoming.frontier = current.frontier
                if incoming.applied < current.applied:
                    incoming.applied = current.applied
                changed.append(incoming.name)
            elif incoming.incarnation == current.incarnation:
                rec_changed = False
                if (
                    STATUS_SEVERITY.get(incoming.status, 0)
                    > STATUS_SEVERITY.get(current.status, 0)
                ):
                    current.status = incoming.status
                    rec_changed = True
                if incoming.frontier > current.frontier:
                    current.frontier = incoming.frontier
                    rec_changed = True
                if incoming.applied > current.applied:
                    current.applied = incoming.applied
                    rec_changed = True
                if incoming.host and (current.host, current.port) != (
                    incoming.host, incoming.port,
                ):
                    current.host, current.port = incoming.host, incoming.port
                    rec_changed = True
                if rec_changed:
                    changed.append(current.name)
            # lower incarnation: stale rumor, ignore
        if changed:
            self.version += 1
            self._persist()
        return changed

    # ------------------------------------------------------------------
    # views

    def get(self, name: str) -> Optional[NodeRecord]:
        return self._records.get(name)

    def records(self) -> List[NodeRecord]:
        return [rec.clone() for rec in self._records.values()]

    def wire(self) -> List[Dict[str, Any]]:
        return [rec.wire() for rec in self._records.values()]

    def address(self, name: str) -> Optional[Tuple[str, int]]:
        rec = self._records.get(name)
        if rec is None or not rec.host or not rec.port:
            return None
        return (rec.host, rec.port)

    def member_names(self, include_left: bool = False) -> List[str]:
        return sorted(
            name
            for name, rec in self._records.items()
            if include_left or rec.status != LEFT
        )

    def active_count(self) -> int:
        """Members not known to have permanently left the group."""
        return sum(1 for rec in self._records.values() if rec.status != LEFT)

    def frontier_lag(self, local_frontiers: Dict[str, int]) -> int:
        """Updates gossiped to exist that ``local_frontiers`` lacks.

        For every member, its record's own-update ``frontier`` is
        compared with the local receive frontier for that member; the
        positive gaps sum to the number of updates this node can
        *prove* it has not yet received — the staleness estimate, in
        the paper's update-count units, that query replies report.
        """
        lag = 0
        for name, rec in self._records.items():
            if name == self.self_name or rec.status == LEFT:
                continue
            gap = rec.frontier - int(local_frontiers.get(name, 0))
            if gap > 0:
                lag += gap
        return lag

    def __len__(self) -> int:
        return len(self._records)


class FailureDetector:
    """Adaptive suspicion-then-dead detector over heartbeat arrivals.

    ``heartbeat(peer, now)`` records an arrival.  ``timeout(peer)``
    returns the current adaptive suspicion bound for that peer:
    ``max(floor, mean + 4*stddev)`` over the recent inter-arrival
    window once at least ``min_samples`` gaps have been observed, else
    just ``floor``.  ``suspect(peer, now)`` / ``dead(peer, now)`` test
    staleness against 1x / ``dead_multiple``x that bound.
    """

    def __init__(
        self,
        floor: float,
        window: int = 64,
        min_samples: int = 8,
        dead_multiple: float = 3.0,
    ) -> None:
        self.floor = float(floor)
        self.min_samples = int(min_samples)
        self.dead_multiple = float(dead_multiple)
        self._window = int(window)
        self._gaps: Dict[str, Deque[float]] = {}
        self._last: Dict[str, float] = {}

    def heartbeat(self, peer: str, now: float) -> None:
        last = self._last.get(peer)
        self._last[peer] = now
        if last is None:
            return
        gap = now - last
        if gap <= 0:
            return
        self._gaps.setdefault(peer, deque(maxlen=self._window)).append(gap)

    def forget(self, peer: str) -> None:
        self._gaps.pop(peer, None)
        self._last.pop(peer, None)

    def last_seen(self, peer: str) -> Optional[float]:
        return self._last.get(peer)

    def timeout(self, peer: str) -> float:
        gaps = self._gaps.get(peer)
        if not gaps or len(gaps) < self.min_samples:
            return self.floor
        n = len(gaps)
        mean = sum(gaps) / n
        var = sum((g - mean) ** 2 for g in gaps) / n
        return max(self.floor, mean + 4.0 * math.sqrt(var))

    def staleness(self, peer: str, now: float) -> float:
        last = self._last.get(peer)
        if last is None:
            return 0.0
        return max(0.0, now - last)

    def suspect(self, peer: str, now: float) -> bool:
        last = self._last.get(peer)
        if last is None:
            return False
        return (now - last) > self.timeout(peer)

    def dead(self, peer: str, now: float) -> bool:
        last = self._last.get(peer)
        if last is None:
            return False
        return (now - last) > self.dead_multiple * self.timeout(peer)
