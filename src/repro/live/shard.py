"""Versioned shard map and epoch-fenced shard migration.

The paper's epsilon bookkeeping is per object set, so nothing in the
model requires one engine to own the whole keyspace: the keyspace is
hash-partitioned into ``n_shards`` shards, each owned by an
independent replica group with its own engine, durable logs,
channels, and snapshots.  Epsilon gauges, degraded mode, and overlap
bounds all hold *per shard* — exactly the per-object-set guarantees
the paper proves, applied to a partition of the object universe.

:class:`ShardMap` is the routing table: shard index -> the owning
group's replica addresses, stamped with an **epoch** that increases
on every ownership change.  ``key_shard`` is a process-independent
hash (CRC-32, not Python's per-process-salted ``hash``), so every
client and every server derive the same owner for a key.

Migration is epoch-fenced and reuses the anti-entropy rejoin
machinery (a migration *is* a rejoin onto a new owner):

1. the replacement group boots cold with ``accepting=False`` (it
   refuses traffic with ``UNAVAILABLE`` until handed the shard);
2. the old owners are **fenced** (``shard-retire``): from that moment
   they answer every update/query with a typed ``WRONG_SHARD`` error
   carrying the epoch-bumped map, so clients refresh and retry —
   no acknowledged update can land behind the migration's back;
3. the fenced group is drained (``settle``) so its snapshot captures
   every acknowledged update;
4. each replacement replica pulls its same-named counterpart's fresh
   snapshot over the ordinary chunked ``snapshot-fetch`` wire path
   and installs it (``fetch-install``) — frontier translation is the
   identity because the replacement group reuses the old group's
   site names, and the tail drain is the degenerate case of a rejoin
   because step 3 quiesced the source;
5. the replacements adopt the new map (``shard-adopt``) and start
   accepting at the new epoch.

A crash of a replacement replica mid-migration just stalls step 4's
retry loop until the replica heals; durability is never in doubt
because the fenced old group still holds everything acknowledged.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import WRONG_SHARD
from .protocol import read_frame, write_frame

__all__ = [
    "ShardMap",
    "WrongShard",
    "key_shard",
    "group_keys_by_shard",
    "shard_admin_request",
    "migrate_shard",
]

#: one replica group's addresses, in site-name order.
GroupAddrs = Tuple[Tuple[str, int], ...]


def key_shard(key: str, n_shards: int) -> int:
    """Owner shard of ``key`` — stable across processes and runs.

    CRC-32 of the UTF-8 key bytes, mod the shard count.  Every router
    and every server must agree on this function: it is part of the
    wire contract (a ``WRONG_SHARD`` answer asserts the *server's*
    evaluation of it).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return zlib.crc32(key.encode("utf-8")) % n_shards


def group_keys_by_shard(
    keys: Sequence[str], n_shards: int
) -> Dict[int, List[str]]:
    """Partition ``keys`` by owner shard, preserving per-shard order."""
    out: Dict[int, List[str]] = {}
    for key in keys:
        out.setdefault(key_shard(key, n_shards), []).append(key)
    return out


class WrongShard(RuntimeError):
    """The addressed replica group does not own the requested keys.

    Carried to clients as error code ``WRONG_SHARD``; the error
    response also carries the newest shard map this replica knows
    (``extra["map"]``), so a router refreshes its table from the
    refusal itself — no separate discovery round trip.
    """

    code = WRONG_SHARD

    def __init__(
        self, message: str, map_hint: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        #: merged into the error response frame by the server.
        self.extra: Dict[str, Any] = (
            {"map": map_hint} if map_hint else {}
        )


@dataclass(frozen=True)
class ShardMap:
    """Epoch-versioned routing table: shard index -> group addresses.

    Immutable; every ownership change produces a *new* map with a
    higher epoch (:meth:`with_group`).  Total order on epochs is what
    makes the cutover fence sound: a client holding epoch ``E`` and a
    server holding ``E' > E`` disagree, the server refuses with the
    newer map, and the client adopts it — never the other way around.
    """

    epoch: int
    groups: Tuple[GroupAddrs, ...]

    @property
    def n_shards(self) -> int:
        return len(self.groups)

    def shard_of(self, key: str) -> int:
        return key_shard(key, self.n_shards)

    def group_of(self, key: str) -> GroupAddrs:
        return self.groups[self.shard_of(key)]

    def with_group(self, shard: int, addrs: Sequence[Tuple[str, int]]) -> "ShardMap":
        """The next epoch: ``shard`` reassigned to ``addrs``."""
        groups = list(self.groups)
        groups[shard] = tuple((host, int(port)) for host, port in addrs)
        return ShardMap(self.epoch + 1, tuple(groups))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "shards": [
                [[host, port] for host, port in group]
                for group in self.groups
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardMap":
        shards = data.get("shards")
        if not isinstance(shards, list) or not shards:
            raise ValueError("shard map without shards: %r" % (data,))
        return cls(
            epoch=int(data.get("epoch", 0)),
            groups=tuple(
                tuple((str(host), int(port)) for host, port in group)
                for group in shards
            ),
        )


# -- admin wire helper ---------------------------------------------------------


async def shard_admin_request(
    addr: Tuple[str, int],
    verb: str,
    timeout: float = 5.0,
    **fields: Any,
) -> Dict[str, Any]:
    """One out-of-band request/response exchange with a replica.

    The migration orchestrator speaks to old and new owners over the
    ordinary request protocol (same framing as clients), so the exact
    same cutover code runs whether the groups live in this process,
    in sibling processes, or on other machines.
    """
    reader, writer = await asyncio.open_connection(*addr)
    try:
        await write_frame(
            writer, {"type": "request", "id": 1, "verb": verb, **fields}
        )
        reply = await asyncio.wait_for(read_frame(reader), timeout=timeout)
    finally:
        writer.close()
    if reply is None:
        raise ConnectionError(
            "replica %s:%d closed during %s" % (addr[0], addr[1], verb)
        )
    if not reply.get("ok"):
        from .client import LiveETFailed  # cycle-free at call time

        raise LiveETFailed(
            reply.get("error", "%s failed" % verb),
            reply.get("code", ""),
        )
    return reply


async def _retrying(
    step: Callable[[], Any],
    deadline: float,
    what: str,
    clock: Callable[[], float],
    backoff: float = 0.05,
    backoff_max: float = 0.5,
) -> Any:
    """Run one cutover step until it succeeds or the deadline passes.

    Transient refusals and dead connections are expected mid-cutover
    (a replacement replica may be crashed and healing); everything
    else is a real error and surfaces immediately.
    """
    from .client import LiveETFailed

    last: Optional[BaseException] = None
    while clock() < deadline:
        try:
            return await step()
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            last = exc
        except LiveETFailed as exc:
            # UNAVAILABLE covers a replica that is mid-install or
            # mid-restart; anything typed differently is permanent.
            if not exc.unavailable:
                raise
            last = exc
        await asyncio.sleep(backoff)
        backoff = min(backoff * 2, backoff_max)
    raise TimeoutError("%s did not complete: %r" % (what, last))


async def migrate_shard(
    *,
    site_names: Sequence[str],
    old_addr_of: Callable[[str], Tuple[str, int]],
    new_addr_of: Callable[[str], Tuple[str, int]],
    new_map: Dict[str, Any],
    settle_timeout: float = 30.0,
    step_timeout: float = 30.0,
    clock: Callable[[], float],
    before_install: Optional[Callable[[], Any]] = None,
) -> None:
    """Epoch-fenced cutover of one shard onto a replacement group.

    Pure orchestration over the wire protocol: ``old_addr_of`` /
    ``new_addr_of`` resolve a site name to its current address (looked
    up per attempt, so a replica that heals on a new port is found).
    ``before_install`` is a chaos hook invoked between the fence and
    the state transfer — exactly the window where a crash must not be
    able to lose acknowledged updates.
    """
    names = list(site_names)

    # 1. Fence: every old owner starts answering WRONG_SHARD with the
    # epoch-bumped map.  All-or-nothing — a single unfenced replica
    # could still acknowledge updates the transfer would miss.
    for name in names:
        await _retrying(
            lambda name=name: shard_admin_request(
                old_addr_of(name), "shard-retire", map=new_map
            ),
            clock() + step_timeout,
            "fencing %s" % name,
            clock,
        )

    # 2. Drain the fenced group: once settled, its snapshots cover
    # every acknowledged update (no new ones can arrive past the
    # fence), so the rejoin tail-drain below is degenerate.
    async def _settle(name: str) -> Dict[str, Any]:
        return await shard_admin_request(
            old_addr_of(name),
            "settle",
            timeout=settle_timeout + 5.0,
            wait=settle_timeout,
        )

    await asyncio.gather(
        *(
            _retrying(
                lambda name=name: _settle(name),
                clock() + settle_timeout,
                "draining %s" % name,
                clock,
            )
            for name in names
        )
    )

    if before_install is not None:
        await before_install()

    # 3. Transfer: each replacement replica pulls its same-named
    # counterpart's fresh snapshot over the chunked snapshot-fetch
    # path and installs it (identity frontier translation).  Retried
    # until the replica is reachable — a crash here only stalls.
    for name in names:
        await _retrying(
            lambda name=name: shard_admin_request(
                new_addr_of(name),
                "fetch-install",
                timeout=step_timeout,
                host=old_addr_of(name)[0],
                port=old_addr_of(name)[1],
                site=name,
            ),
            clock() + step_timeout,
            "installing %s" % name,
            clock,
        )

    # 4. Adopt: the replacements start accepting at the new epoch.
    for name in names:
        await _retrying(
            lambda name=name: shard_admin_request(
                new_addr_of(name), "shard-adopt", map=new_map
            ),
            clock() + step_timeout,
            "adopting %s" % name,
            clock,
        )
