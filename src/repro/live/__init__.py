"""Live replica runtime: the paper's ESR protocols over real sockets.

The deterministic simulator (:mod:`repro.sim`) validates the replica
control methods' logic; this package runs the *same* MSet-processing
state machines (shared via :mod:`repro.replica.base`) under real
concurrency — asyncio TCP transport, file-backed durable stable
queues, wall-clock time, and genuinely parallel client load.

Layers:

* :mod:`repro.live.protocol` — length-prefixed JSON wire protocol
  reusing the operation algebra.
* :mod:`repro.live.durable_queue` — at-least-once, FIFO-per-channel
  durable queues that survive process restarts.
* :mod:`repro.live.engine` — transport-agnostic COMMU / ORDUP engines,
  the synchronous write-all (ROWA) baseline, the timestamped RITU /
  RITU-MV engines, and the COMPE saga/compensation engine.
* :mod:`repro.live.compensation` — append-only durable compensation
  log (undo records + decisions) backing COMPE's backward recovery
  across crashes.
* :mod:`repro.live.server` — a per-replica asyncio TCP server with
  adaptive heartbeat failure detection, gossip-driven membership, and
  degraded-mode query handling.
* :mod:`repro.live.gossip` — versioned membership table (incarnation-
  numbered node records) and the phi-style adaptive failure detector.
* :mod:`repro.live.election` — durable epoch/promise/leader state for
  the ORDUP sequencer's epoch-fenced leader election.
* :mod:`repro.live.client` — pipelined async client facade with
  per-request timeouts, reconnect, and failover.
* :mod:`repro.live.cluster` — in-process N-replica bootstrapper.
* :mod:`repro.live.faults` — seeded fault injection (drop / delay /
  duplicate / reorder / partition / crash schedules).
* :mod:`repro.live.chaos` — randomized-but-seeded chaos harness
  asserting the paper's invariants under faults, including the
  disk-wipe / long-downtime rejoin, sequencer-failover, and
  multi-region WAN partition scenarios.
* :mod:`repro.live.snapshot` — versioned, checksummed site snapshots
  backing log compaction and anti-entropy rejoin.
* :mod:`repro.live.shard` — epoch-versioned shard map plus the
  epoch-fenced live shard migration orchestrator.
* :mod:`repro.live.router` — client-side shard router: the
  ``LiveClient`` verb surface over N replica groups.
"""

from .chaos import (
    ChaosConfig,
    ChaosReport,
    ElectConfig,
    ElectReport,
    RejoinConfig,
    RejoinReport,
    SagaConfig,
    SagaReport,
    WanConfig,
    WanReport,
    persist_cluster_artifacts,
    run_chaos,
    run_chaos_sync,
    run_elect,
    run_elect_sync,
    run_rejoin,
    run_rejoin_sync,
    run_saga,
    run_saga_sync,
    run_wan,
    run_wan_sync,
)
from .compensation import CompensationLog
from .client import (
    LiveClient,
    LiveETFailed,
    LiveETResult,
    LiveSession,
    RequestTimeout,
)
from .cluster import LiveCluster, ShardedCluster
from .durable_queue import DurableInbox, DurableOutbox
from .election import ElectionState
from .faults import (
    CrashEvent,
    FaultPlan,
    FrameFate,
    LinkFaults,
    WAN_INTER,
    WAN_INTRA,
)
from .gossip import FailureDetector, MembershipTable, NodeRecord
from .engine import (
    CommuLiveEngine,
    CompeLiveEngine,
    ENGINES,
    LiveEngine,
    OrdupLiveEngine,
    QueryOutcome,
    QueryTimeout,
    RituLiveEngine,
    RituMvLiveEngine,
    RowaLiveEngine,
    make_engine,
)
from .read_cache import CachedRead, EpsilonReadCache
from .router import RouterSession, ShardRouter
from .server import (
    Compensated,
    LOCAL_CHANNEL,
    Overloaded,
    ReplicaServer,
    SessionStale,
    Unavailable,
)
from .shard import ShardMap, WrongShard, key_shard, migrate_shard
from .snapshot import (
    SnapshotError,
    SnapshotStore,
    open_snapshot,
    seal_snapshot,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "ElectConfig",
    "ElectReport",
    "RejoinConfig",
    "RejoinReport",
    "SagaConfig",
    "SagaReport",
    "WanConfig",
    "WanReport",
    "run_rejoin",
    "run_rejoin_sync",
    "persist_cluster_artifacts",
    "run_chaos",
    "run_chaos_sync",
    "run_elect",
    "run_elect_sync",
    "run_saga",
    "run_saga_sync",
    "run_wan",
    "run_wan_sync",
    "CompensationLog",
    "LiveClient",
    "LiveETFailed",
    "LiveETResult",
    "LiveSession",
    "RequestTimeout",
    "CachedRead",
    "EpsilonReadCache",
    "LiveCluster",
    "ShardedCluster",
    "RouterSession",
    "ShardMap",
    "ShardRouter",
    "WrongShard",
    "key_shard",
    "migrate_shard",
    "CrashEvent",
    "FaultPlan",
    "FrameFate",
    "LinkFaults",
    "WAN_INTER",
    "WAN_INTRA",
    "DurableInbox",
    "DurableOutbox",
    "ElectionState",
    "FailureDetector",
    "MembershipTable",
    "NodeRecord",
    "CommuLiveEngine",
    "CompeLiveEngine",
    "ENGINES",
    "LiveEngine",
    "OrdupLiveEngine",
    "QueryOutcome",
    "QueryTimeout",
    "RituLiveEngine",
    "RituMvLiveEngine",
    "RowaLiveEngine",
    "make_engine",
    "Compensated",
    "ReplicaServer",
    "Unavailable",
    "Overloaded",
    "SessionStale",
    "LOCAL_CHANNEL",
    "SnapshotError",
    "SnapshotStore",
    "open_snapshot",
    "seal_snapshot",
]
