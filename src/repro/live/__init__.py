"""Live replica runtime: the paper's ESR protocols over real sockets.

The deterministic simulator (:mod:`repro.sim`) validates the replica
control methods' logic; this package runs the *same* MSet-processing
state machines (shared via :mod:`repro.replica.base`) under real
concurrency — asyncio TCP transport, file-backed durable stable
queues, wall-clock time, and genuinely parallel client load.

Layers:

* :mod:`repro.live.protocol` — length-prefixed JSON wire protocol
  reusing the operation algebra.
* :mod:`repro.live.durable_queue` — at-least-once, FIFO-per-channel
  durable queues that survive process restarts.
* :mod:`repro.live.engine` — transport-agnostic COMMU / ORDUP engines
  plus the synchronous write-all (ROWA) baseline.
* :mod:`repro.live.server` — a per-replica asyncio TCP server.
* :mod:`repro.live.client` — pipelined async client facade.
* :mod:`repro.live.cluster` — in-process N-replica bootstrapper.
"""

from .client import LiveClient, LiveETFailed
from .cluster import LiveCluster
from .durable_queue import DurableInbox, DurableOutbox
from .engine import (
    CommuLiveEngine,
    ENGINES,
    LiveEngine,
    OrdupLiveEngine,
    QueryOutcome,
    QueryTimeout,
    RowaLiveEngine,
    make_engine,
)
from .server import ReplicaServer

__all__ = [
    "LiveClient",
    "LiveETFailed",
    "LiveCluster",
    "DurableInbox",
    "DurableOutbox",
    "CommuLiveEngine",
    "ENGINES",
    "LiveEngine",
    "OrdupLiveEngine",
    "QueryOutcome",
    "QueryTimeout",
    "RowaLiveEngine",
    "make_engine",
    "ReplicaServer",
]
