"""Durable compensation log for the live COMPE engine.

COMPE (paper section 4) commits optimistically and repairs with
*backward recovery*: every accepted update durably logs the inverse
operations that would undo it, and an ABORT decision replays those
inverses as a compensating step.  At live scale this is the saga /
Compensating Transaction pattern: forward-commit each step, keep a
durable compensation record, run the compensations backward when the
saga aborts.

:class:`CompensationLog` is the durable half.  It reuses the live
runtime's group-commit JSONL machinery (:class:`_DurableLog`): records
are ``{"seq": N, "payload": {...}}`` lines, appends coalesce into one
write + flush + at-most-one fsync, ``sync()`` forces a covering fsync
before any durability claim, and compaction is the same tail-verified
atomic rewrite the channel queues use.

Two record kinds::

    {"k": "undo",    "tid": T, "ops": [<encoded inverse ops>],
                     "keys": [...], "saga": S?}     # S only for saga steps
    {"k": "decided", "tid": T, "outcome": "commit" | "abort"}

Idempotent replay — the crash-safety argument
---------------------------------------------

The log never *drives* state by itself: engine state is a pure
function of (engine checkpoint, inbox replay).  The log's in-memory
``undo`` / ``decisions`` maps gate **duplicate appends only**, never
state mutations.  During recovery the inbox replay re-delivers every
update and decision above the snapshot cut; re-delivered updates find
their tid already in ``undo`` and skip the append (same bytes would be
written — inverses of the admitted operation algebra are
prior-value-independent, so re-deriving them is deterministic), and
re-delivered decisions find their tid in ``decisions`` and skip
likewise.  A crash between an append and the corresponding inbox
record leaves an orphan log record; the retried delivery simply
matches it.  A crash between the inbox record and the append leaves a
gap; the replay re-derives the record.  Either way the log converges
to the same contents, and replaying it any number of times yields the
same maps — idempotent replay.

Compaction is therefore always safe: every record is re-derivable
from the checkpoint + inbox replay, so dropping *retired* records
(both records of a decided tid) can never lose information a recovery
needs.  The engine compacts once enough retired records accumulate.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .durable_queue import _DurableLog, _read_json_lines

__all__ = ["CompensationLog"]

#: retired records tolerated before :meth:`maybe_compact` rewrites.
DEFAULT_COMPACT_THRESHOLD = 256

COMMIT = "commit"
ABORT = "abort"


class CompensationLog(_DurableLog):
    """Append-only durable log of undo records and decisions."""

    def __init__(
        self,
        path: pathlib.Path,
        fsync: bool = False,
        fsync_interval: float = 0.0,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ) -> None:
        super().__init__(path, fsync, fsync_interval)
        self.compact_threshold = max(1, int(compact_threshold))
        self._seq = 0
        self._records: List[Tuple[int, Dict[str, Any]]] = []
        #: tid -> undo payload ({"k","tid","ops","keys","saga"?}).
        self.undo: Dict[str, Dict[str, Any]] = {}
        #: tid -> "commit" | "abort".
        self.decisions: Dict[str, str] = {}
        #: lifetime appended records (monotone; survives compaction).
        self.records_total = 0
        for record in _read_json_lines(self.path):
            if record.get("meta") == "base":
                base = int(record.get("base", 0))
                self.base = max(self.base, base)
                self._seq = max(self._seq, base)
                continue
            seq = int(record["seq"])
            self._seq = max(self._seq, seq)
            payload = record["payload"]
            self._records.append((seq, payload))
            self._load(payload)
            self.records_total += 1
        self._open_log()

    def _load(self, payload: Dict[str, Any]) -> None:
        kind = payload.get("k")
        tid = payload.get("tid")
        if not isinstance(tid, str):
            return
        if kind == "undo":
            self.undo.setdefault(tid, payload)
        elif kind == "decided":
            self.decisions.setdefault(tid, str(payload.get("outcome")))

    def _append(self, payload: Dict[str, Any]) -> None:
        self._seq += 1
        self._records.append((self._seq, payload))
        self._write_records([{"seq": self._seq, "payload": payload}])
        self.records_total += 1

    # -- writes ----------------------------------------------------------------

    def log_undo(
        self,
        tid: str,
        ops: Sequence[Any],
        keys: Sequence[str],
        saga: Optional[str] = None,
    ) -> bool:
        """Durably record the inverse ops that would undo ``tid``.

        ``ops`` are already wire-encoded (see
        :func:`repro.live.protocol.encode_ops`).  Returns False for a
        duplicate (replayed delivery) — nothing is appended twice.
        """
        if tid in self.undo:
            return False
        payload: Dict[str, Any] = {
            "k": "undo",
            "tid": tid,
            "ops": list(ops),
            "keys": list(keys),
        }
        if saga is not None:
            payload["saga"] = saga
        self._append(payload)
        self.undo[tid] = payload
        return True

    def log_decision(self, tid: str, outcome: str) -> bool:
        """Durably record the global decision for ``tid``.

        Returns False for a duplicate — the first decision a tid sees
        is final, every later one (replay, a second deciding site) is
        dropped here and skipped by the engine.
        """
        if outcome not in (COMMIT, ABORT):
            raise ValueError("bad decision outcome %r" % (outcome,))
        if tid in self.decisions:
            return False
        self._append({"k": "decided", "tid": tid, "outcome": outcome})
        self.decisions[tid] = outcome
        return True

    # -- reads -----------------------------------------------------------------

    def undo_ops(self, tid: str) -> Optional[List[Any]]:
        """Encoded inverse ops for ``tid`` (None when unknown)."""
        record = self.undo.get(tid)
        return None if record is None else list(record["ops"])

    def decided(self, tid: str) -> Optional[str]:
        return self.decisions.get(tid)

    @property
    def live_records(self) -> int:
        """Records currently in the log file (post-compaction)."""
        return len(self._records)

    def undecided_tids(self) -> List[str]:
        return [t for t in self.undo if t not in self.decisions]

    # -- compaction ------------------------------------------------------------

    def _retired(self, payload: Dict[str, Any]) -> bool:
        return payload.get("tid") in self.decisions

    def reclaimable(self) -> int:
        """Records belonging to decided tids (safe to rewrite away)."""
        return sum(1 for _, p in self._records if self._retired(p))

    def compact_retired(self) -> int:
        """Rewrite the log keeping only records of undecided tids.

        Safe at any instant: retired records are re-derivable from the
        engine checkpoint + inbox replay (see the module docstring), so
        a crash before, during (the rewrite is tail-verified and
        atomic), or after the compaction recovers identically.  The
        in-memory ``decisions`` map is kept — the running process still
        gates duplicates with it — while ``undo`` entries for decided
        tids are pruned to bound memory.  Returns records dropped.
        """
        survivors = [(s, p) for s, p in self._records if not self._retired(p)]
        dropped = len(self._records) - len(survivors)
        if not dropped:
            return 0
        self._rewrite(
            [{"seq": s, "payload": p} for s, p in survivors],
            base=self.base,
        )
        self._records = survivors
        for tid in [t for t in self.undo if t in self.decisions]:
            del self.undo[tid]
        self.compaction_count += 1
        self.compacted_records += dropped
        return dropped

    def maybe_compact(self) -> int:
        """Compact when enough retired records have accumulated."""
        if self.reclaimable() < self.compact_threshold:
            return 0
        return self.compact_retired()
