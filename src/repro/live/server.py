"""Asyncio TCP replica server: one site of a live replicated system.

A :class:`ReplicaServer` hosts a site's store and divergence-control
engine (:mod:`repro.live.engine`) and speaks the length-prefixed JSON
protocol (:mod:`repro.live.protocol`) on a single listening socket,
serving two kinds of connections:

* **clients** submit epsilon-transactions — ``update`` and ``query``
  verbs plus introspection (``values``, ``stats``, ``ping``);
* **peers** deliver update MSets over per-channel durable queues and
  receive acknowledgements.

Durability contract (the paper's stable queues, live): an update ET is
acknowledged to its client only after its MSet has been appended to the
site's local durable log *and* every outbound channel log.  A replica
killed and restarted replays its inbound logs through the engine and
resumes its outbound channels, so acknowledged updates are never lost
and peers' retries are deduplicated by channel sequence number.

Propagation hot path (batched + pipelined): each peer channel drains
its backlog into multi-MSet ``mset-batch`` frames (up to ``batch_size``
MSets each, written as one buffered burst) and keeps up to ``window``
batches in flight instead of stop-and-waiting on each acknowledgement.
Acks are *cumulative* — ``ack.seq`` covers every channel sequence
number ``<= seq`` — so one reply retires a whole window and the
outbox truncates in one step.  The receive side records a batch with
one group-commit append (single write + fsync) and applies it under
one engine-lock acquisition; backpressure is structural: a receiver
does not read the next frame from a connection until the current
batch is durable and applied, so a fast sender fills TCP flow control
(bounded by ``window`` batches) instead of the receiver's memory.

Wire codec negotiation (``wire`` option): with the default
``wire="bin1"`` a channel sender advertises the binary codec on its
``peer-hello``; a receiver that speaks it replies ``hello-ack`` and
both directions switch — batch frames become struct-packed envelopes
carrying each MSet's canonical payload bytes exactly as they were
encoded when the update was first accepted (zero re-encode relay:
the outbox caches the blob, re-sends forward it verbatim, and the
receiver splices the same bytes into its inbox log), and cumulative
acks shrink to a 13-byte struct.  A peer that never answers the
advert — an older build, or one running ``wire="json"`` — keeps the
JSON framing on that connection with no configuration; the two
codecs interoperate freely within one cluster because negotiation is
per-connection and frames are self-describing.

Failure detection and graceful degradation: channel loops double as a
heartbeat path — any acknowledgement or heartbeat reply marks the peer
*alive*; a peer silent for longer than ``suspect_after`` seconds is
*suspected*, the server enters **degraded mode**, and ``epsilon = 0``
queries fail fast with a typed :class:`Unavailable` error instead of
blocking until their timeout.  Epsilon-bounded queries keep answering
throughout (the paper's availability claim), with their inconsistency
accounting intact.  Peer health, per-peer staleness, and outbound
backlog are exposed via the ``stats`` verb.

Fault injection (:mod:`repro.live.faults`) plugs into the channel
loops: an installed :class:`~repro.live.faults.FaultPlan` can drop,
delay, duplicate, and reorder outbound peer frames or sever directed
links entirely, without touching the wire format.

Snapshots, compaction, and anti-entropy rejoin: the server
periodically (``snapshot_interval``) — or on demand (``snapshot``
verb) — persists a versioned, checksummed image of its applied state
(:mod:`repro.live.snapshot`) capturing the engine checkpoint and
every channel's applied frontier in one atomic cut, then compacts the
durable logs below those frontiers.  A replica that comes back from a
long outage or a wiped disk catches up by *anti-entropy*: it fetches
a peer's snapshot in chunks (``snapshot-fetch`` verb), installs it
when the snapshot dominates its own frontiers, and drains only the
log tail above the snapshot from the normal channels.  Senders repair
regressed receivers symmetrically — a cumulative ack (or heartbeat
reply) below the outbox frontier rewinds the channel from the log
when the records survive, or sends a ``peer-reset`` frame directing
the receiver to snapshot catch-up when they were compacted away.
While catching up the replica refuses updates and ``epsilon = 0``
queries with typed errors; epsilon-bounded queries keep answering
from the (stale but bounded) local state.

Backpressure: when any peer channel's backlog exceeds
``backlog_limit``, new client updates are refused with a typed
``OVERLOADED`` error instead of growing the durable queue without
bound.
"""

from __future__ import annotations

import asyncio
import json
import logging
import pathlib
import random
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import is_write
from ..obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    Registry,
)
from ..obs.trace import TraceRecorder
from ..replica.mset import MSet, MSetKind
from .durable_queue import DurableInbox, DurableOutbox
from .election import ElectionState
from .engine import LiveEngine, QueryTimeout, make_engine
from .faults import FaultPlan
from .gossip import DEAD, LEFT, SUSPECT, FailureDetector, MembershipTable
from .protocol import (
    MAX_FRAME,
    SUPPORTED_WIRES,
    WIRE_BIN1,
    WIRE_JSON,
    ProtocolError,
    decode_batch_frame,
    decode_mset,
    decode_ops,
    decode_spec,
    encode_batch_frame,
    encode_bin_ack_frame,
    encode_bin_batch_frame,
    encode_frame,
    encode_mset,
    negotiate_wire,
    payload_blob,
    read_frame,
    write_encoded,
    write_frame,
)
from .shard import WrongShard, key_shard
from .snapshot import (
    SnapshotError,
    SnapshotStore,
    open_snapshot,
    seal_snapshot,
    snapshot_bytes,
)

__all__ = [
    "ReplicaServer",
    "Unavailable",
    "Overloaded",
    "SessionStale",
    "Compensated",
    "WrongShard",
    "LOCAL_CHANNEL",
]

logger = logging.getLogger(__name__)

#: inbox channel name for the site's own updates.
LOCAL_CHANNEL = "_local"


class Unavailable(RuntimeError):
    """A request that needs full replica agreement cannot be served
    because one or more peers are unreachable (degraded mode).

    Carried to clients as error code ``UNAVAILABLE`` so they can
    distinguish honest refusal from transient failures and retry
    elsewhere or relax their epsilon budget.
    """

    code = "UNAVAILABLE"


class Overloaded(RuntimeError):
    """A client update was refused because a peer channel's durable
    backlog exceeds the configured high-water mark.

    Carried to clients as error code ``OVERLOADED``: the replica is
    alive but shedding write load instead of growing its durable
    queues without bound; retry later or at a less loaded replica.
    """

    code = "OVERLOADED"


class SessionStale(RuntimeError):
    """A session-token read was refused because this replica's applied
    frontiers lag the token — serving it would violate the session's
    read-your-writes / monotonic-reads guarantee.

    Carried to clients as error code ``SESSION_STALE``; the response
    ships this replica's current frontier vector (``frontiers``) so
    the client can pick a fresher replica instead of guessing.
    """

    code = "SESSION_STALE"

    def __init__(self, message: str, frontiers: Dict[str, int]) -> None:
        super().__init__(message)
        self.extra = {"frontiers": frontiers}


class Compensated(RuntimeError):
    """An optimistically applied update was undone by COMPE's backward
    recovery (an ABORT decision compensated its effects).

    Carried to clients as error code ``COMPENSATED``; the response
    ships the undone tids (``compensated``) so the caller knows
    exactly which updates were reverted — an honest "briefly visible,
    then removed", never a silent drop.
    """

    code = "COMPENSATED"

    def __init__(self, message: str, compensated: Sequence[Any]) -> None:
        super().__init__(message)
        self.extra = {"compensated": list(compensated)}


#: bytes of snapshot data served per ``snapshot-fetch`` chunk — held
#: well under MAX_FRAME so the response frame (chunk + JSON envelope)
#: always fits the existing framing.
SNAPSHOT_CHUNK = 1 << 20

#: seconds an advertising channel sender holds data waiting for the
#: receiver's hello-ack verdict.  New receivers always reply (accept or
#: explicit "json" refusal), so the deadline only bites against
#: receivers that predate hello-ack — which then stay JSON, once per
#: connection.
HELLO_ACK_TIMEOUT = 0.25


class ReplicaServer:
    """One live replica site serving ESR protocols over TCP."""

    def __init__(
        self,
        name: str,
        peers: Sequence[str],
        data_dir: pathlib.Path,
        method: str = "commu",
        fsync: bool = False,
        retry_base: float = 0.05,
        retry_max: float = 1.0,
        query_timeout: float = 30.0,
        commit_timeout: float = 30.0,
        heartbeat_interval: float = 0.25,
        suspect_after: float = 0.75,
        ack_timeout: float = 2.0,
        batch_size: int = 32,
        window: int = 4,
        wire: str = WIRE_BIN1,
        fsync_interval: float = 0.0,
        snapshot_interval: float = 0.0,
        backlog_limit: int = 0,
        catchup: bool = True,
        catchup_lag: int = 0,
        faults: Optional[FaultPlan] = None,
        observability: bool = True,
        registry: Optional[Registry] = None,
        trace: Optional[TraceRecorder] = None,
        shard: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.peer_names = tuple(sorted(p for p in peers if p != name))
        #: shard ownership, when this replica serves one partition of a
        #: sharded keyspace: ``{"index": i, "count": n, "epoch": e,
        #: "accepting": bool}``.  ``None`` means the replica owns the
        #: whole keyspace (the unsharded deployment) and no ownership
        #: checks run.  A booting migration target sets
        #: ``accepting=False`` and refuses traffic until ``shard-adopt``.
        if shard is not None:
            self.shard_index = int(shard["index"])
            self.shard_count = int(shard["count"])
            self.shard_epoch = int(shard.get("epoch", 0))
            self._shard_accepting = bool(shard.get("accepting", True))
        else:
            self.shard_index = None
            self.shard_count = None
            self.shard_epoch = 0
            self._shard_accepting = True
        #: True once this group was fenced out of its shard: every
        #: update/query is answered WRONG_SHARD with the newest map.
        self._shard_retired = False
        #: newest shard map this replica has been told about (the
        #: hint carried on WRONG_SHARD refusals).
        self._shard_map: Optional[Dict[str, Any]] = None
        self.data_dir = pathlib.Path(data_dir)
        self.method = method
        self.fsync = fsync
        #: max MSets coalesced into one mset-batch frame.
        self.batch_size = max(1, int(batch_size))
        #: max batch frames in flight per channel before waiting on acks.
        self.window = max(1, int(window))
        #: best wire codec this replica negotiates on peer channels:
        #: ``"bin1"`` (default) advertises the binary framing and
        #: upgrades per-connection when the peer answers; ``"json"``
        #: never advertises nor answers — the pure legacy behavior,
        #: used for interop tests and as an escape hatch.
        if wire not in (WIRE_BIN1, WIRE_JSON):
            raise ValueError("unknown wire codec %r" % (wire,))
        self.wire = wire
        #: min seconds between fsyncs on each durable log (0 = every
        #: group append) — only meaningful with ``fsync=True``.
        self.fsync_interval = fsync_interval
        #: seconds between automatic snapshots (0 = manual only).
        self.snapshot_interval = float(snapshot_interval)
        #: per-channel durable backlog above which client updates are
        #: refused with OVERLOADED (0 = unlimited).
        self.backlog_limit = max(0, int(backlog_limit))
        #: False disables anti-entropy (startup wipe probe, peer-reset
        #: handling): a regressed replica then recovers by channel
        #: rewind / full log replay only — the benchmark baseline.
        self.catchup_enabled = bool(catchup)
        #: when > 0, a receiver more than this many records behind is
        #: sent a peer-reset hint (snapshot catch-up) even while the
        #: log could still serve it — set it well above the largest
        #: backlog a healthy channel reaches, or bursts will trigger
        #: needless (if harmless) snapshot installs.
        self.catchup_lag = max(0, int(catchup_lag))
        self.retry_base = retry_base
        self.retry_max = retry_max
        self.query_timeout = query_timeout
        self.commit_timeout = commit_timeout
        self.heartbeat_interval = heartbeat_interval
        self.suspect_after = suspect_after
        self.ack_timeout = ack_timeout
        self.faults = faults
        #: one metrics registry + trace recorder per replica.  The
        #: registry takes the live runtime's single lock; ``site`` is
        #: stamped on every sample so scrapes across a cluster merge
        #: cleanly.  ``observability=False`` swaps in no-op instruments
        #: (the benchmark's metrics-off baseline).
        if registry is not None:
            self.registry = registry
        elif observability:
            # ``shard`` joins ``site`` as a constant label so scrapes
            # across a sharded cluster split per-shard health (epsilon
            # gauges, channel backlog, ack latency) without relabeling.
            const_labels = {"site": name}
            if self.shard_index is not None:
                const_labels["shard"] = str(self.shard_index)
            self.registry = Registry(
                threadsafe=True, const_labels=const_labels
            )
        else:
            self.registry = NULL_REGISTRY
        if trace is not None:
            self.trace = trace
        else:
            self.trace = TraceRecorder(site=name, enabled=observability)
        self.engine: LiveEngine = make_engine(method, name, self.peer_names)
        self.engine.bind_observability(self.registry, self.trace)
        self._init_instruments()
        #: the site hosting the central order server (ORDUP).
        self.order_site = sorted((name,) + self.peer_names)[0]
        self.peer_addrs: Dict[str, Tuple[str, int]] = {}
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._running = False
        self.outboxes: Dict[str, DurableOutbox] = {}
        self.inboxes: Dict[str, DurableInbox] = {}
        self._outbox_events: Dict[str, asyncio.Event] = {}
        self._channel_tasks: List[asyncio.Task] = []
        self._conn_tasks: Set[asyncio.Task] = set()
        #: peer -> monotonic instant of last evidence it is alive.
        self.peer_last_seen: Dict[str, float] = {}
        #: peer -> consecutive channel connect/send failures.
        self.channel_failures: Dict[str, int] = {}
        #: peer -> wire codec negotiated on the current channel
        #: session ("json" until a hello-ack upgrades it).
        self._peer_wire: Dict[str, str] = {}
        #: peer -> rolling batch-acknowledgement latencies (seconds).
        self._ack_latencies: Dict[str, Deque[float]] = {}
        #: peer -> total MSets cumulatively acknowledged since boot.
        self.acked_msets: Dict[str, int] = {}
        #: notified whenever the drain condition may have changed; the
        #: ``settle`` verb waits here instead of clients busy-polling.
        self._drain_cond = asyncio.Condition()
        #: (peer, channel seq) -> local update tid, for ack tracking.
        self._seq_tid: Dict[Tuple[str, int], Any] = {}
        #: local update tid -> peers whose durable ack is outstanding.
        self._unacked: Dict[Any, Set[str]] = {}
        #: local update tid -> written keys (lock-counter release).
        self._local_keys: Dict[Any, Tuple[str, ...]] = {}
        #: tid -> future resolved when the MSet applies locally (ORDUP).
        self._apply_futures: Dict[Any, asyncio.Future] = {}
        #: tid -> future resolved when all peers acked (sync commit).
        self._full_ack_futures: Dict[Any, asyncio.Future] = {}
        self._order_conn: Optional[
            Tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = None
        self._order_lock = asyncio.Lock()
        self._order_counter = 0
        self._order_path = self.data_dir / "order.json"
        #: which peer the cached order connection dials (re-dial on
        #: leader change).
        self._order_target: Optional[str] = None
        #: gossiped membership table + adaptive failure detector.
        self.membership = MembershipTable(
            name, self.data_dir / "membership.json"
        )
        self.detector = FailureDetector(floor=suspect_after)
        #: durable election state for the ORDUP sequencer.
        self.election = ElectionState(self.data_dir / "election.json")
        #: peer -> (last epoch it gossiped, monotonic instant) — the
        #: leader's gossip lease: grants require a majority of fresh
        #: acks at the leader's own epoch.
        self._peer_epochs: Dict[str, Tuple[int, float]] = {}
        #: ORDUP with peers: True once the boot epoch probe confirmed
        #: we are not resurrecting with a stale epoch.  Grants are
        #: refused until then.
        self._epoch_synced = not (self.engine.needs_order and self.peer_names)
        self._election_task: Optional[asyncio.Task] = None
        #: serializes campaigns (one at a time per replica).
        self._campaign_lock = asyncio.Lock()
        #: deterministic per-server jitter stream (heartbeat spread).
        self._rng = random.Random(name)
        #: peer -> currently suspected? (suspicion-transition counting).
        self._suspected_state: Dict[str, bool] = {}
        #: True once start_channels ran (gossip joins then spawn their
        #: channel loops immediately instead of waiting for it).
        self._channels_started = False
        self._monitor_task: Optional[asyncio.Task] = None
        #: last degraded() value the monitor observed (gauge flips).
        self._last_degraded = False
        #: serializes record-then-apply against snapshot capture: a
        #: snapshot taken between an inbox record and its engine apply
        #: would claim a frontier whose effects it does not contain.
        self._apply_lock = asyncio.Lock()
        #: serializes snapshot capture/compaction/install.
        self._snapshot_lock = asyncio.Lock()
        self._snapshot_store = SnapshotStore(
            self.data_dir / "snapshot.json"
        )
        #: frontiers of the last persisted snapshot (stats/compaction).
        self._snapshot_frontiers: Dict[str, int] = {}
        self._last_snapshot_at: Optional[float] = None
        #: True while installing a peer snapshot; folded into
        #: degraded(): strict queries and updates are refused.
        self._catching_up = False
        self._catchup_task: Optional[asyncio.Task] = None
        #: completed snapshot catch-up installs since boot.
        self.catchup_installs = 0
        #: peers owed a peer-reset frame by their channel sender.
        self._reset_peers: Set[str] = set()
        #: precomputed verb dispatch — building this dict per request
        #: was a measurable cost on the receive hot path.
        # Precomputed verb dispatch: built once instead of a dict
        # literal per request.  Values are attribute names (resolved
        # with ``getattr`` at call time) so per-instance handler
        # overrides still take effect.
        self._verb_handlers = {
            "update": "_handle_update",
            "decide": "_handle_decide",
            "query": "_handle_query",
            "values": "_handle_values",
            "stats": "_handle_stats",
            "settle": "_handle_settle",
            "order": "_handle_order",
            "elect": "_handle_elect",
            "ping": "_handle_ping",
            "metrics": "_handle_metrics",
            "snapshot": "_handle_snapshot",
            "snapshot-fetch": "_handle_snapshot_fetch",
            "shard-info": "_handle_shard_info",
            "shard-retire": "_handle_shard_retire",
            "shard-adopt": "_handle_shard_adopt",
            "fetch-install": "_handle_fetch_install",
        }

    def _init_instruments(self) -> None:
        """Register this replica's metric families (see OBSERVABILITY.md)."""
        reg = self.registry
        self.m_channel_backlog = reg.gauge(
            "channel_backlog",
            "unacknowledged MSets queued on one outbound peer channel",
            labels=("peer",),
        )
        self.m_peer_staleness = reg.gauge(
            "peer_staleness_seconds",
            "seconds since the last evidence a peer is alive",
            labels=("peer",),
        )
        self.m_peer_alive = reg.gauge(
            "peer_alive",
            "1 while the peer passes the heartbeat deadline, else 0",
            labels=("peer",),
        )
        self.m_acked_msets = reg.counter(
            "channel_acked_msets_total",
            "MSets cumulatively acknowledged by one peer since boot",
            labels=("peer",),
        )
        self.m_ack_latency = reg.histogram(
            "ack_latency_seconds",
            "batch send-to-cumulative-ack latency per peer channel",
            labels=("peer",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.m_batch_msets = reg.histogram(
            "batch_msets",
            "MSets coalesced into each outbound propagation frame",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self.m_channel_errors = reg.counter(
            "channel_errors_total",
            "peer channel sessions ended by a transport/protocol error",
            labels=("peer",),
        )
        self.m_frames_dropped = reg.counter(
            "frames_dropped_total",
            "inbound frames dropped instead of processed",
            labels=("reason",),
        )
        self.m_degraded = reg.gauge(
            "degraded",
            "1 while any peer is suspected (degraded mode), else 0",
        )
        self.m_degraded_transitions = reg.counter(
            "degraded_transitions_total",
            "times this replica entered or left degraded mode",
        )
        self.m_unacked = reg.gauge(
            "unacked_updates",
            "local updates whose peer acknowledgements are outstanding",
        )
        self.m_log_fsync = reg.counter(
            "log_fsync_total",
            "fsyncs performed on one durable channel log",
            labels=("log",),
        )
        self.m_log_fsync_seconds = reg.counter(
            "log_fsync_seconds_total",
            "cumulative fsync latency on one durable channel log",
            labels=("log",),
        )
        self.m_log_bytes = reg.counter(
            "log_bytes_total",
            "bytes appended to one durable channel log",
            labels=("log",),
        )
        self.m_requests = reg.counter(
            "requests_total",
            "client requests served, by verb and outcome",
            labels=("verb", "outcome"),
        )
        self.m_snapshots = reg.counter(
            "snapshots_total",
            "site snapshots persisted (periodic, manual, or install)",
            labels=("kind",),
        )
        self.m_snapshot_bytes = reg.histogram(
            "snapshot_size_bytes",
            "serialized size of each persisted snapshot",
            buckets=(
                256, 1024, 4096, 16384, 65536,
                262144, 1048576, 4194304, 16777216,
            ),
        )
        self.m_snapshot_seconds = reg.histogram(
            "snapshot_duration_seconds",
            "wall time to capture, persist, and compact one snapshot",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.m_log_compactions = reg.counter(
            "log_compactions_total",
            "compaction rewrites performed on one durable channel log",
            labels=("log",),
        )
        self.m_log_compacted = reg.counter(
            "log_compacted_records_total",
            "records dropped from one durable channel log by compaction",
            labels=("log",),
        )
        self.m_updates_rejected = reg.counter(
            "updates_rejected_total",
            "client updates refused before durability, by reason",
            labels=("reason",),
        )
        self.m_session_stale = reg.counter(
            "session_stale_total",
            "session reads refused because applied frontiers lag the token",
        )
        self.m_catchup = reg.counter(
            "catchup_total",
            "anti-entropy catch-up attempts, by outcome",
            labels=("outcome",),
        )
        self.m_channel_rewinds = reg.counter(
            "channel_rewinds_total",
            "outbound channels rewound for a regressed receiver",
            labels=("peer",),
        )
        self.m_elections = reg.counter(
            "elections_total",
            "sequencer election campaigns started here, by outcome",
            labels=("outcome",),
        )
        self.m_leader_epoch = reg.gauge(
            "leader_epoch",
            "highest sequencer leadership epoch adopted at this replica",
        )
        self.m_membership_size = reg.gauge(
            "membership_size",
            "member records in the gossiped table (left excluded)",
        )
        self.m_suspicions = reg.counter(
            "suspicions_total",
            "times the adaptive detector newly suspected one peer",
            labels=("peer",),
        )
        self.m_wire_negotiations = reg.counter(
            "wire_negotiations_total",
            "hello negotiations completed on inbound connections, "
            "by resulting codec",
            labels=("wire_codec",),
        )
        self.m_propagation_frames = reg.counter(
            "propagation_frames_total",
            "outbound propagation batch frames written, by codec",
            labels=("peer", "wire_codec"),
        )
        self.m_frames_relayed = reg.counter(
            "frames_relayed_total",
            "MSets forwarded as already-encoded payload bytes "
            "(zero re-encode relay)",
            labels=("peer",),
        )

    # -- lifecycle -----------------------------------------------------------

    async def bind(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Open logs, recover state, and start listening.

        Returns the bound port (useful with ``port=0``).  Channels to
        peers start separately (:meth:`start_channels`) once peer
        addresses are known.
        """
        self.data_dir.mkdir(parents=True, exist_ok=True)
        for peer in self.peer_names:
            self.outboxes[peer] = DurableOutbox(
                self.data_dir / "outbox" / ("%s.log" % peer),
                self.fsync,
                self.fsync_interval,
            )
            self.inboxes[peer] = DurableInbox(
                self.data_dir / "inbox" / ("%s.log" % peer),
                self.fsync,
                self.fsync_interval,
            )
        self.inboxes[LOCAL_CHANNEL] = DurableInbox(
            self.data_dir / "inbox" / ("%s.log" % LOCAL_CHANNEL),
            self.fsync,
            self.fsync_interval,
        )
        if self._order_path.exists():
            try:
                self._order_counter = int(
                    json.loads(self._order_path.read_text())["next"]
                )
            except (ValueError, KeyError, json.JSONDecodeError):
                self._order_counter = 0
        self.membership.load()
        self.election.load()
        if self.election.epoch > 0 and hasattr(self.engine, "adopt_epoch"):
            self.engine.adopt_epoch(self.election.epoch, self.election.base)
        self.m_leader_epoch.set(self.election.epoch)
        # Method-owned durable state (COMPE's compensation log) opens
        # before recovery so replay finds its dedup maps loaded.
        self.engine.attach_storage(
            self.data_dir, self.fsync, self.fsync_interval
        )
        await self._recover()
        self._running = True
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )
        self.host = host
        self.port = self._server.sockets[0].getsockname()[1]
        self.membership.update_self(
            host=host, port=self.port, shard=self.shard_index,
        )
        self.m_membership_size.set(self.membership.active_count())
        return self.port

    async def _recover(self) -> None:
        """Restore the persisted snapshot (if any), then replay the
        durable log tails above it through the engine.

        Without a snapshot this is the original full-log replay.  With
        one, the engine restores the checkpoint image first and only
        records *above* the snapshot's per-channel frontiers replay —
        including records a crash caught between snapshot persistence
        and log compaction (they are skipped by frontier, so nothing
        double-applies).  Inboxes that lag the snapshot (a crash
        between snapshot install and the frontier resets) are aligned
        up to it.
        """
        snap_frontiers: Dict[str, int] = {}
        snap = self._snapshot_store.load()
        if snap is not None and snap.get("method") == self.method:
            snap_frontiers = {
                src: int(seq)
                for src, seq in snap.get("frontiers", {}).items()
            }
            await self.engine.restore(snap["engine"])
            self._snapshot_frontiers = dict(snap_frontiers)
            self._last_snapshot_at = self.engine.clock()
            for src, inbox in self.inboxes.items():
                floor = snap_frontiers.get(src, 0)
                if inbox.frontier < floor:
                    inbox.reset_to(floor)
        for src, inbox in sorted(self.inboxes.items()):
            floor = snap_frontiers.get(src, 0)
            for seq, payload in inbox.replay():
                if seq <= floor:
                    continue  # already inside the snapshot image
                mset = decode_mset(payload["mset"])
                await self.engine.accept(mset, local=(src == LOCAL_CHANNEL))
        # Repair outbox lockstep: a crash between the local-channel
        # record and the per-peer channel appends leaves an outbox
        # missing the newest local records — re-append them from the
        # local log so every channel carries every local update (the
        # channel seq == local tid seq invariant the snapshot frontier
        # mapping relies on).
        local_inbox = self.inboxes[LOCAL_CHANNEL]
        local_tail = {seq: payload for seq, payload in local_inbox.replay()}
        for peer, outbox in self.outboxes.items():
            if outbox._seq >= local_inbox.frontier:
                continue
            missing = [
                local_tail[seq]
                for seq in range(outbox._seq + 1, local_inbox.frontier + 1)
                if seq in local_tail
            ]
            if len(missing) == local_inbox.frontier - outbox._seq:
                outbox.append_many(missing)
            else:
                # The missing records were compacted below the local
                # log's floor — they are covered by the persisted
                # snapshot, which is exactly what a regressed receiver
                # will be served.
                outbox.reset_to(local_inbox.frontier)
        # Rebuild ack tracking from the outbound backlogs.
        acked_local: Set[Any] = set()
        keys_of: Dict[Any, Tuple[str, ...]] = {}
        replayed_local: Set[Any] = set()
        for seq, payload in local_inbox.replay():
            tid = payload["mset"]["tid"]
            keys_of[tid] = tuple(
                {op["key"] for op in payload["mset"]["ops"]}
            )
            if seq > snap_frontiers.get(LOCAL_CHANNEL, 0):
                acked_local.add(tid)
                replayed_local.add(tid)
        for peer, outbox in self.outboxes.items():
            for seq, payload in outbox.pending():
                tid = payload["mset"]["tid"]
                self._seq_tid[(peer, seq)] = tid
                self._unacked.setdefault(tid, set()).add(peer)
                self._local_keys[tid] = keys_of.get(
                    tid,
                    tuple({op["key"] for op in payload["mset"]["ops"]}),
                )
                acked_local.discard(tid)
        # Local updates already acked by every peer before the crash:
        # release their lock-counters (replay re-raised them).
        for tid in acked_local:
            await self.engine.fully_acked(tid, keys_of.get(tid, ()))
        # The inverse hole: local updates applied *inside* the snapshot
        # image (so replay never re-raised their counters) but still
        # awaiting a peer ack — re-raise so origin-site queries keep
        # observing the cluster-wide in-flight inconsistency.
        for tid, peers_waiting in self._unacked.items():
            if peers_waiting and tid not in replayed_local:
                await self.engine.hold_counters(
                    tid, self._local_keys.get(tid, ())
                )

    def set_peers(self, addrs: Dict[str, Tuple[str, int]]) -> None:
        """Install (or update) peer addresses for the channel loops."""
        for peer, addr in addrs.items():
            if peer != self.name:
                self.peer_addrs[peer] = tuple(addr)
                self.membership.observe(peer, addr[0], int(addr[1]))
        self.m_membership_size.set(self.membership.active_count())
        self._order_conn = None  # re-resolve on next order request
        self._order_target = None

    def start_channels(self) -> None:
        """Launch one durable sender loop per peer channel."""
        if self._channel_tasks:
            return
        self._channels_started = True
        now = self.engine.clock()
        for peer in self.peer_names:
            # Grace period: a freshly booted cluster is not "degraded"
            # before the first heartbeat round had a chance to land.
            self.peer_last_seen.setdefault(peer, now)
            self._outbox_events[peer] = asyncio.Event()
            self._outbox_events[peer].set()
            task = asyncio.ensure_future(self._channel_loop(peer))
            task.add_done_callback(self._note_task_crash)
            self._channel_tasks.append(task)
        if self._monitor_task is None:
            self._monitor_task = asyncio.ensure_future(
                self._degraded_monitor()
            )
        if self.snapshot_interval > 0:
            task = asyncio.ensure_future(self._snapshot_loop())
            task.add_done_callback(self._note_task_crash)
            self._channel_tasks.append(task)
        if self.engine.needs_order and self.peer_names:
            if self._election_task is None:
                self._election_task = asyncio.ensure_future(
                    self._election_loop()
                )
                self._election_task.add_done_callback(self._note_task_crash)
            if not self._epoch_synced:
                task = asyncio.ensure_future(self._epoch_probe())
                task.add_done_callback(self._note_task_crash)
                self._channel_tasks.append(task)
        if (
            self.catchup_enabled
            and self.peer_names
            and self.engine.applied_count == 0
            and all(box.frontier == 0 for box in self.inboxes.values())
            and not self._snapshot_store.exists()
        ):
            # Empty engine, empty logs, no snapshot: either a fresh
            # cluster boot or a wiped disk.  Ask the peers which.
            task = asyncio.ensure_future(self._startup_probe())
            task.add_done_callback(self._note_task_crash)
            self._channel_tasks.append(task)

    async def stop(self) -> None:
        """Stop serving.  Durable state is already on disk (the
        stable queues write through), so stop doubles as a crash."""
        self._running = False
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (OSError, ConnectionError) as exc:
                logger.debug(
                    "%s: listener close raised %r", self.name, exc
                )
            self._server = None
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            self._channel_tasks.append(self._monitor_task)
            self._monitor_task = None
        if self._catchup_task is not None:
            self._catchup_task.cancel()
            self._channel_tasks.append(self._catchup_task)
            self._catchup_task = None
        if self._election_task is not None:
            self._election_task.cancel()
            self._channel_tasks.append(self._election_task)
            self._election_task = None
        for task in self._channel_tasks + list(self._conn_tasks):
            task.cancel()
        for task in self._channel_tasks + list(self._conn_tasks):
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception as exc:
                # A task that died with a real error before the cancel
                # landed: teardown proceeds, but the error is counted
                # and logged instead of silently eaten.
                self.m_frames_dropped.labels(reason="stop_error").inc()
                logger.debug(
                    "%s: task %r raised during stop: %r",
                    self.name, task, exc,
                )
        self._channel_tasks = []
        self._conn_tasks.clear()
        if self._order_conn is not None:
            self._order_conn[1].close()
            self._order_conn = None
        for box in list(self.outboxes.values()) + list(self.inboxes.values()):
            box.close()
        self.engine.close()
        for fut in list(self._apply_futures.values()) + list(
            self._full_ack_futures.values()
        ):
            if not fut.done():
                fut.cancel()
        self._apply_futures.clear()
        self._full_ack_futures.clear()

    def _note_task_crash(self, task: asyncio.Task) -> None:
        """A long-lived task died of an *unexpected* error: make it
        loud (counted + warned) instead of silently unretrieved."""
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.m_frames_dropped.labels(reason="task_crash").inc()
            logger.warning(
                "%s: background task crashed: %r", self.name, exc
            )

    # -- peer health ---------------------------------------------------------

    def _note_peer_alive(self, peer: str) -> None:
        if peer in self.outboxes or peer in self.inboxes:
            now = self.engine.clock()
            self.peer_last_seen[peer] = now
            self.channel_failures[peer] = 0
            self.detector.heartbeat(peer, now)

    def peer_alive(self, peer: str) -> bool:
        """True while we have recent evidence the peer is reachable.

        Adaptive: the detector suspects a peer only when staleness
        exceeds its observed inter-arrival distribution (mean + 4
        sigma, floored at ``suspect_after``), so high-jitter WAN links
        don't flap degraded mode on every slow heartbeat.
        """
        seen = self.peer_last_seen.get(peer)
        if seen is None:
            return False
        now = self.engine.clock()
        if self.detector.last_seen(peer) is None:
            # grace window before the first heartbeat lands
            return now - seen < self.suspect_after
        return not self.detector.suspect(peer, now)

    def peer_dead(self, peer: str) -> bool:
        """True once staleness passes the dead escalation (3x the
        adaptive suspicion bound) — the trigger for elections."""
        if self.detector.last_seen(peer) is None:
            seen = self.peer_last_seen.get(peer)
            if seen is None:
                return False
            return (
                self.engine.clock() - seen
                > self.detector.dead_multiple * self.suspect_after
            )
        return self.detector.dead(peer, self.engine.clock())

    def suspected_peers(self) -> Tuple[str, ...]:
        """Peers currently failing the heartbeat deadline."""
        return tuple(
            p for p in self.peer_names if not self.peer_alive(p)
        )

    def degraded(self) -> bool:
        """True when any peer is suspected — or this replica is mid
        snapshot catch-up: full agreement is off the table, only
        epsilon-bounded service remains."""
        return bool(self.suspected_peers()) or self._catching_up

    async def _degraded_monitor(self) -> None:
        """Watch the degraded predicate and publish its transitions as
        gauge flips plus trace events — an operator watching the
        ``degraded`` gauge sees exactly when partial service began and
        ended, not just the current instant."""
        while self._running:
            self._check_degraded_transition()
            await asyncio.sleep(self.heartbeat_interval / 2)

    def _check_degraded_transition(self) -> None:
        suspected = set(self.suspected_peers())
        for peer in self.peer_names:
            was = self._suspected_state.get(peer, False)
            now = peer in suspected
            if now and not was:
                self.m_suspicions.labels(peer=peer).inc()
                self.membership.set_status(peer, SUSPECT)
                self.trace.event("membership", peer=peer, status=SUSPECT)
            # recovery needs no local de-escalation: the suspected
            # peer sees our rumor in gossip, refutes by bumping its
            # incarnation, and the refutation out-versions us.
            self._suspected_state[peer] = now
            if now and self.peer_dead(peer):
                if self.membership.set_status(peer, DEAD):
                    self.trace.event("membership", peer=peer, status=DEAD)
        now_degraded = self.degraded()
        if now_degraded != self._last_degraded:
            self._last_degraded = now_degraded
            self.m_degraded.set(1 if now_degraded else 0)
            self.m_degraded_transitions.inc()
            self.trace.event(
                "degraded",
                value=1 if now_degraded else 0,
                suspected=list(self.suspected_peers()),
            )
            logger.debug(
                "%s: degraded -> %s (suspected: %s)",
                self.name, now_degraded,
                ",".join(self.suspected_peers()) or "-",
            )

    # -- gossip membership ---------------------------------------------------

    async def _merge_gossip(
        self, src: str, payload: Dict[str, Any]
    ) -> None:
        """Merge a heartbeat's piggybacked membership + leadership
        digest.  Membership changes may wire in newly discovered
        members or re-learn moved addresses; a higher leadership epoch
        is adopted (fencing the engine) under the apply lock."""
        if not isinstance(payload, dict):
            return
        changed = self.membership.merge(payload.get("nodes", ()))
        self.m_membership_size.set(self.membership.active_count())
        for name in changed:
            await self._apply_member_change(name)
        leader = payload.get("leader")
        if isinstance(leader, dict):
            epoch = int(leader.get("epoch", 0))
            self._peer_epochs[src] = (epoch, self.engine.clock())
            who = leader.get("leader")
            if who and epoch > self.election.epoch:
                await self._adopt_leader(
                    epoch, str(who), int(leader.get("base", 0))
                )

    async def _apply_member_change(self, name: str) -> None:
        """React to one changed membership record: join, address
        move, or a frontier digest showing we are far behind."""
        if name == self.name:
            return
        rec = self.membership.get(name)
        if rec is None or rec.status == LEFT:
            return
        if rec.shard != self.shard_index:
            return  # a different shard's replica group
        if name not in self.peer_names:
            if rec.host and rec.port:
                self.add_peer(name, rec.host, rec.port)
            return
        if rec.host and rec.port:
            current = self.peer_addrs.get(name)
            if current != (rec.host, rec.port):
                self.peer_addrs[name] = (rec.host, rec.port)
                if self._order_target == name:
                    self._order_conn = None
                self.trace.event(
                    "membership", peer=name, status="moved",
                    host=rec.host, port=rec.port,
                )
        # Frontier digest: the peer has originated records far beyond
        # what we durably hold from it — steer ourselves to snapshot
        # catch-up instead of waiting to be told.
        inbox = self.inboxes.get(name)
        if (
            self.catchup_lag
            and self.catchup_enabled
            and not self._catching_up
            and inbox is not None
            and rec.frontier - inbox.frontier > self.catchup_lag
        ):
            self._trigger_catchup("gossip-digest", preferred=name)

    def add_peer(self, name: str, host: str, port: int) -> None:
        """Dynamically wire a gossip-discovered member into this
        replica: durable channel logs, engine peer set, address book,
        and (when running) a live channel loop.  The new channel
        starts at our local frontier with a ``peer-reset`` owed, so
        the joiner snapshot-installs history instead of replaying it
        through the channel."""
        if name == self.name:
            return
        if name in self.peer_names:
            self.peer_addrs[name] = (host, int(port))
            return
        self.peer_names = tuple(sorted(self.peer_names + (name,)))
        self.peer_addrs[name] = (host, int(port))
        self.membership.observe(name, host, int(port))
        outbox = DurableOutbox(
            self.data_dir / "outbox" / ("%s.log" % name),
            self.fsync,
            self.fsync_interval,
        )
        inbox = DurableInbox(
            self.data_dir / "inbox" / ("%s.log" % name),
            self.fsync,
            self.fsync_interval,
        )
        self.outboxes[name] = outbox
        self.inboxes[name] = inbox
        local_frontier = self.inboxes[LOCAL_CHANNEL].frontier
        if outbox._seq < local_frontier:
            outbox.reset_to(local_frontier)
            if self.catchup_enabled and local_frontier > 0:
                self._reset_peers.add(name)
        self.engine.peers = tuple(sorted(set(self.engine.peers) | {name}))
        self.trace.event("membership", peer=name, status="join")
        logger.info(
            "%s: discovered member %s at %s:%d", self.name, name, host, port
        )
        if self._running and self._channels_started:
            self.peer_last_seen.setdefault(name, self.engine.clock())
            self._outbox_events[name] = asyncio.Event()
            self._outbox_events[name].set()
            task = asyncio.ensure_future(self._channel_loop(name))
            task.add_done_callback(self._note_task_crash)
            self._channel_tasks.append(task)

    # -- sequencer election --------------------------------------------------

    def current_leader(self) -> str:
        """The site authorized to grant order tokens: the elected
        leader once any election has happened, else the static
        lexicographic default (backward compatible)."""
        if self.election.epoch > 0 and self.election.leader:
            return self.election.leader
        return self.order_site

    def _grant_allowed(self) -> bool:
        """May this replica grant order tokens *right now*?

        Two conditions beyond being the leader: the boot epoch probe
        must have confirmed our epoch is current (a resurrected
        deposed leader cannot self-grant at its stale epoch before
        learning the new one), and a majority of the full membership
        must have gossiped *our* epoch within the suspicion floor —
        the leader's lease.  A leader isolated on the minority side of
        a partition loses the lease and refuses, so it can never ack
        updates the majority's new leader will fence."""
        if not self._epoch_synced:
            return False
        if not self.peer_names:
            return True
        now = self.engine.clock()
        epoch = self.election.epoch
        fresh = 1  # ourselves
        for peer, (peer_epoch, at) in self._peer_epochs.items():
            if peer_epoch == epoch and now - at < self.suspect_after:
                fresh += 1
        return fresh >= self._quorum()

    def _quorum(self) -> int:
        """Majority of the *full* membership (left members excluded).

        The denominator is everyone, not just reachable members — two
        disjoint 'majorities' of reachable subsets is exactly the
        split-brain this fences out.  Floored at the static peer list
        so a not-yet-gossiped table cannot shrink the quorum."""
        members = max(
            self.membership.active_count(), len(self.peer_names) + 1
        )
        return members // 2 + 1

    def _check_order_authority(self) -> None:
        leader = self.current_leader()
        if self.name != leader:
            raise ValueError("order tokens are issued by %s" % leader)
        if not self._grant_allowed():
            raise Unavailable(
                "order authority lease not held at %s (epoch %d)"
                % (self.name, self.election.epoch)
            )

    async def _adopt_leader(
        self, epoch: int, leader: str, base: int
    ) -> None:
        """Adopt a leadership announcement (ours or gossiped) and
        fence the engine, atomically with respect to applies."""
        async with self._apply_lock:
            if not self.election.adopt(epoch, leader, base):
                return
            if hasattr(self.engine, "adopt_epoch"):
                self.engine.adopt_epoch(epoch, base)
        self._epoch_synced = True
        self.m_leader_epoch.set(epoch)
        if leader != self.name:
            self._order_conn = None
            self._order_target = None
        self.trace.event(
            "election", phase="adopt", epoch=epoch, leader=leader,
            base=base,
        )
        logger.info(
            "%s: adopted leader %s for epoch %d (base %d)",
            self.name, leader, epoch, base,
        )

    async def _elect_rpc(
        self, peer: str, epoch: int
    ) -> Optional[Dict[str, Any]]:
        """One elect request to one peer (vote request, or a pure
        epoch read at ``epoch=0``).  Returns the reply or None."""
        addr = self.peer_addrs.get(peer) or self.membership.address(peer)
        if addr is None:
            return None
        if self.faults is not None and (
            self.faults.is_severed(self.name, peer)
            or self.faults.is_severed(peer, self.name)
        ):
            return None
        writer = None
        try:
            reader, writer = await asyncio.open_connection(*addr)
            await write_frame(
                writer,
                {
                    "type": "request",
                    "id": 0,
                    "verb": "elect",
                    "epoch": epoch,
                    "candidate": self.name,
                },
            )
            reply = await asyncio.wait_for(
                read_frame(reader), timeout=self.ack_timeout
            )
        except (OSError, ConnectionError, asyncio.TimeoutError, ProtocolError):
            return None
        finally:
            if writer is not None:
                writer.close()
        if not isinstance(reply, dict) or not reply.get("ok"):
            return None
        return reply

    async def _epoch_probe(self) -> None:
        """Boot-time epoch sync (ORDUP with peers): learn the cluster's
        current epoch from a majority before any grant is allowed, so
        a deposed leader resurrected with stale durable state cannot
        resume sequencing at its old epoch."""
        backoff = self.retry_base
        while self._running and not self._epoch_synced:
            replies = 0
            best: Optional[Tuple[int, str, int]] = None
            for peer in self.peer_names:
                reply = await self._elect_rpc(peer, 0)
                if reply is None:
                    continue
                replies += 1
                epoch = int(reply.get("epoch", 0))
                if reply.get("leader") and (
                    best is None or epoch > best[0]
                ):
                    best = (
                        epoch,
                        str(reply["leader"]),
                        int(reply.get("base", 0)),
                    )
            if replies + 1 >= self._quorum():
                if best is not None and best[0] > self.election.epoch:
                    await self._adopt_leader(*best)
                self._epoch_synced = True
                self.trace.event(
                    "election", phase="epoch-sync",
                    epoch=self.election.epoch,
                )
                return
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, self.retry_max)

    def _best_candidate(self, exclude: Tuple[str, ...] = ()) -> str:
        """Deterministic candidate ranking: highest incarnation among
        live members, ties to the lexicographically smallest name.
        Every replica computes the same answer from converged gossip,
        so normally exactly one campaigns."""
        best = self.name
        rec = self.membership.get(self.name)
        best_inc = rec.incarnation if rec is not None else 0
        for peer in self.peer_names:
            if peer in exclude or not self.peer_alive(peer):
                continue
            rec = self.membership.get(peer)
            inc = rec.incarnation if rec is not None else 0
            if inc > best_inc or (inc == best_inc and peer < best):
                best, best_inc = peer, inc
        return best

    async def _election_loop(self) -> None:
        """Watch the order authority; campaign when it is dead."""
        while self._running:
            await asyncio.sleep(self._heartbeat_jitter())
            if not self._epoch_synced or self._catching_up:
                continue
            leader = self.current_leader()
            if leader == self.name or not self.peer_dead(leader):
                continue
            if self._best_candidate(exclude=(leader,)) == self.name:
                await self._campaign()

    async def _campaign(self) -> None:
        """Run one election round: self-promise a fresh epoch, gather
        promises (carrying durable order frontiers), and on majority
        adopt leadership resuming from the max frontier seen."""
        async with self._campaign_lock:
            epoch = max(self.election.promised, self.election.epoch) + 1
            if not self.election.promise(epoch):
                return
            self.m_elections.labels(outcome="started").inc()
            self.trace.event("election", phase="campaign", epoch=epoch)
            votes = 1
            max_seen = getattr(self.engine, "max_order_seen", None)
            frontiers = [max_seen() if max_seen is not None else 0]
            for peer in self.peer_names:
                reply = await self._elect_rpc(peer, epoch)
                if reply is None:
                    continue
                if reply.get("promised"):
                    votes += 1
                    frontiers.append(int(reply.get("frontier", 0)))
            if votes < self._quorum():
                self.m_elections.labels(outcome="lost").inc()
                self.trace.event(
                    "election", phase="lost", epoch=epoch, votes=votes,
                )
                # Jittered backoff before the loop re-evaluates, so
                # duelling candidates desynchronize.
                await asyncio.sleep(
                    self.retry_base
                    + self._rng.random() * self.heartbeat_interval
                )
                return
            base = max(frontiers)
            async with self._order_lock:
                # Resume sequencing above every grant any majority
                # member has durably seen; persisted before the first
                # new grant can be issued.
                self._order_counter = max(self._order_counter, base)
                self._order_path.write_text(
                    json.dumps(
                        {"next": self._order_counter, "epoch": epoch}
                    )
                )
            await self._adopt_leader(epoch, self.name, base)
            self.m_elections.labels(outcome="won").inc()
            self.trace.event(
                "election", phase="won", epoch=epoch, base=base,
                votes=votes,
            )
            logger.info(
                "%s: won election for epoch %d (base %d, votes %d)",
                self.name, epoch, base, votes,
            )

    # -- channel sender loops ------------------------------------------------

    def _kick_channels(self) -> None:
        for event in self._outbox_events.values():
            event.set()

    def _link_severed(self, dst: str) -> bool:
        return self.faults is not None and self.faults.is_severed(
            self.name, dst
        )

    async def _channel_loop(self, peer: str) -> None:
        """Persistently (re)connect one peer channel and run a
        pipelined delivery session over each connection."""
        backoff = self.retry_base
        while self._running:
            addr = self.peer_addrs.get(peer)
            if addr is None or self._link_severed(peer):
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max)
                continue
            writer = None
            try:
                reader, writer = await asyncio.open_connection(*addr)
                hello: Dict[str, Any] = {
                    "type": "peer-hello", "src": self.name,
                }
                if self.wire != WIRE_JSON:
                    # Advertise the binary codecs we can read and
                    # write; an old (or wire="json") peer ignores the
                    # key and never replies — the channel stays JSON.
                    hello["wire"] = list(SUPPORTED_WIRES)
                await write_frame(writer, hello)
                backoff = self.retry_base
                await self._channel_session(peer, reader, writer)
            except (
                OSError,
                ConnectionError,
                asyncio.TimeoutError,
                ProtocolError,
            ) as exc:
                self.channel_failures[peer] = (
                    self.channel_failures.get(peer, 0) + 1
                )
                self.m_channel_errors.labels(peer=peer).inc()
                logger.debug(
                    "%s: channel to %s failed (%s), retrying in %.3fs",
                    self.name, peer, exc, backoff,
                )
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max)
            finally:
                if writer is not None:
                    writer.close()

    async def _channel_session(
        self,
        peer: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One connected session: a windowed batch sender pipelined
        against a cumulative-ack reader.

        ``state`` is shared between the two halves: ``sent_hi`` is the
        highest channel seq handed to this connection, ``inflight`` the
        (last_seq, sent_at, n_msets) record of each un-retired batch,
        ``wire`` the codec negotiated for this connection (JSON until
        the peer's hello-ack upgrades it).
        """
        state = {
            "sent_hi": self.outboxes[peer].frontier,
            "inflight": deque(),
            "wire": WIRE_JSON,
            "hello_done": asyncio.Event(),
        }
        self._peer_wire[peer] = WIRE_JSON
        sender = asyncio.ensure_future(
            self._channel_sender(peer, writer, state)
        )
        ack_reader = asyncio.ensure_future(
            self._channel_ack_reader(peer, reader, state)
        )
        try:
            done, _ = await asyncio.wait(
                {sender, ack_reader}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (sender, ack_reader):
                if not task.done():
                    task.cancel()
            for task in (sender, ack_reader):
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                except (
                    OSError,
                    ConnectionError,
                    asyncio.TimeoutError,
                    ProtocolError,
                ) as exc:
                    # The losing half died of the same connection —
                    # expected; the winner's error (below) is the one
                    # that drives the retry.
                    logger.debug(
                        "%s: channel %s teardown raised %r",
                        self.name, peer, exc,
                    )
        for task in done:
            exc = task.exception()
            if exc is not None:
                raise exc

    async def _channel_sender(
        self, peer: str, writer: asyncio.StreamWriter, state: Dict[str, Any]
    ) -> None:
        """Drain the outbox as batch frames, keeping up to ``window``
        batches in flight; heartbeat while idle.

        Under fault injection frames are dropped, delayed, duplicated,
        or reordered; whatever stays unacknowledged past ``ack_timeout``
        is simply re-sent from the cumulative-ack frontier — the
        durable queue's at-least-once discipline does the recovery, no
        special cases."""
        outbox = self.outboxes[peer]
        event = self._outbox_events[peer]
        inflight: Deque[Tuple[int, float, int]] = state["inflight"]
        if self.wire != WIRE_JSON:
            # We advertised codecs on the hello: hold data until the
            # receiver's verdict (new receivers always reply, even to
            # refuse) or a short deadline covering receivers that
            # predate hello-ack.  Without this gate the first send
            # window after every (re)connect — which after a partition
            # heal is the entire drain — streams JSON on a channel
            # that is about to negotiate bin1.
            try:
                await asyncio.wait_for(
                    state["hello_done"].wait(), timeout=HELLO_ACK_TIMEOUT
                )
            except asyncio.TimeoutError:
                pass  # legacy receiver: stay on JSON
        while self._running:
            if self._link_severed(peer):
                raise ConnectionResetError(
                    "link %s->%s severed" % (self.name, peer)
                )
            if peer in self._reset_peers:
                self._reset_peers.discard(peer)
                await write_frame(
                    writer,
                    {
                        "type": "peer-reset",
                        "src": self.name,
                        "base": outbox.base,
                        "frontier": outbox._seq,
                    },
                )
            # Clear-before-check: an ack or new append landing during
            # the scan re-sets the event, so the wait below returns
            # immediately instead of stalling a heartbeat interval.
            event.clear()
            now = self.engine.clock()
            if inflight and now - inflight[0][1] > self.ack_timeout:
                # Stalled pipeline (dropped/reordered frames or a dead
                # peer): fall back to the durable frontier and re-send.
                inflight.clear()
                state["sent_hi"] = outbox.frontier
                await asyncio.sleep(self.retry_base)
                continue
            if now >= state.get("hb_next", 0.0):
                # Time-based, not idle-only: gossip and the leader's
                # epoch lease ride heartbeats, so they must keep
                # flowing under load.  Jittered per link so a large
                # cluster's probes don't synchronize into bursts (and
                # a synchronized stall into a false-suspicion storm).
                await self._heartbeat_probe(peer, writer)
                state["hb_next"] = (
                    self.engine.clock() + self._heartbeat_jitter()
                )
            room = self.window - len(inflight)
            # Bounded fetch: one send round can use at most a full
            # window of full batches, so never scan (or plan) more —
            # a deep backlog otherwise costs O(backlog) per wakeup,
            # making its drain quadratic.
            fresh = outbox.pending_after(
                state["sent_hi"], room * self.batch_size
            ) if room > 0 else []
            if fresh:
                await self._send_batches(peer, writer, state, fresh, room)
                continue
            timeout = max(0.01, state["hb_next"] - self.engine.clock())
            if inflight:
                # Wake in time for the stall deadline of the oldest
                # in-flight batch.
                timeout = min(
                    timeout,
                    max(
                        self.retry_base,
                        self.ack_timeout - (now - inflight[0][1]),
                    ),
                )
            try:
                await asyncio.wait_for(event.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass

    async def _send_batches(
        self,
        peer: str,
        writer: asyncio.StreamWriter,
        state: Dict[str, Any],
        entries: List[Tuple[int, Any]],
        room: int,
    ) -> None:
        """Chunk ``entries`` into at most ``room`` batch frames and
        write them as one buffered burst of pre-encoded bytes.

        On a negotiated binary channel each MSet's payload bytes are
        forwarded exactly as cached when the update entered the outbox
        — the zero re-encode relay; re-sends from the log reuse the
        same cache.  On a JSON channel the frames are built as before
        (including the legacy single-``mset`` form an older peer
        understands).
        """
        if self.faults is not None:
            entries = self.faults.reorder_batch(self.name, peer, entries)
        outbox = self.outboxes[peer]
        use_bin = state.get("wire") == WIRE_BIN1
        wire_codec = WIRE_BIN1 if use_bin else WIRE_JSON
        now = self.engine.clock()
        chunks: List[bytes] = []
        for batch in self._plan_batches(outbox, entries)[:room]:
            last_seq = max(seq for seq, _ in batch)
            state["sent_hi"] = max(state["sent_hi"], last_seq)
            state["inflight"].append((last_seq, now, len(batch)))
            self.m_batch_msets.observe(len(batch))
            if use_bin:
                data = encode_bin_batch_frame(
                    self.name,
                    [(seq, outbox.wire_blob(seq)) for seq, _ in batch],
                )
                self.m_frames_relayed.labels(peer=peer).inc(len(batch))
            elif len(batch) == 1:
                # Single-MSet batches ride the legacy frame so an
                # older peer interoperates without knowing mset-batch.
                seq, payload = batch[0]
                data = encode_frame(
                    {
                        "type": "mset",
                        "src": self.name,
                        "seq": seq,
                        "mset": payload["mset"],
                    }
                )
            else:
                data = encode_frame(
                    encode_batch_frame(
                        self.name,
                        [
                            (seq, payload["mset"])
                            for seq, payload in batch
                        ],
                    )
                )
            self.m_propagation_frames.labels(
                peer=peer, wire_codec=wire_codec
            ).inc()
            copies = 1
            if self.faults is not None:
                nbytes = 0
                if self.faults.models_bandwidth:
                    nbytes = len(data) - 4  # body bytes, sans header
                fate = self.faults.frame_fate(self.name, peer, nbytes)
                if fate.delay:
                    # A link delay holds up everything behind it too:
                    # flush what is already queued, then stall.
                    await write_encoded(writer, chunks)
                    chunks = []
                    await asyncio.sleep(fate.delay)
                if fate.drop:
                    continue  # stays inflight; the stall path re-sends
                if fate.duplicate:
                    copies = 2
            chunks.extend([data] * copies)
        await write_encoded(writer, chunks)

    def _plan_batches(
        self, outbox: DurableOutbox, entries: List[Tuple[int, Any]]
    ) -> List[List[Tuple[int, Any]]]:
        """Split pending entries into frames of at most ``batch_size``
        MSets, cutting early when a frame approaches MAX_FRAME.

        Sizes come from the outbox's cached payload bytes, so planning
        costs a length lookup per entry instead of a ``json.dumps``
        per entry per send attempt.
        """
        batches: List[List[Tuple[int, Any]]] = []
        current: List[Tuple[int, Any]] = []
        current_bytes = 0
        budget = MAX_FRAME // 2
        for seq, payload in entries:
            size = len(outbox.wire_blob(seq))
            if current and (
                len(current) >= self.batch_size
                or current_bytes + size > budget
            ):
                batches.append(current)
                current = []
                current_bytes = 0
            current.append((seq, payload))
            current_bytes += size
        if current:
            batches.append(current)
        return batches

    def _heartbeat_jitter(self) -> float:
        """Next heartbeat delay: the configured interval +/- 25%,
        drawn from this server's deterministic jitter stream."""
        return self.heartbeat_interval * (0.75 + 0.5 * self._rng.random())

    def _gossip_payload(self) -> Dict[str, Any]:
        """The membership + leadership digest piggybacked on every
        heartbeat and heartbeat reply."""
        self.membership.update_self(
            frontier=self.inboxes[LOCAL_CHANNEL].frontier,
            applied=self.engine.applied_count,
        )
        return {
            "nodes": self.membership.wire(),
            "leader": self.election.wire(),
        }

    async def _heartbeat_probe(
        self, peer: str, writer: asyncio.StreamWriter
    ) -> None:
        """One liveness probe, carrying the gossip digest.  The reply
        (if any) is consumed by the ack reader; a lost probe is not an
        error — the peer just stays un-refreshed and ages toward
        suspicion."""
        if self.faults is not None:
            fate = self.faults.frame_fate(self.name, peer)
            if fate.delay:
                await asyncio.sleep(fate.delay)
            if fate.drop:
                return
        await write_frame(
            writer,
            {
                "type": "hb",
                "src": self.name,
                "gossip": self._gossip_payload(),
            },
        )

    async def _channel_ack_reader(
        self, peer: str, reader: asyncio.StreamReader, state: Dict[str, Any]
    ) -> None:
        """Consume cumulative acks (and heartbeat replies) for one
        connection, retiring in-flight batches and freeing the send
        window without ever blocking the sender."""
        event = self._outbox_events[peer]
        inflight: Deque[Tuple[int, float, int]] = state["inflight"]
        while self._running:
            frame = await read_frame(reader)
            if frame is None:
                raise ConnectionResetError("peer closed")
            kind = frame.get("type")
            if kind == "ack":
                self._note_peer_alive(peer)
                seq = int(frame["seq"])
                self._reconcile_ack(peer, seq, state)
                now = self.engine.clock()
                while inflight and inflight[0][0] <= seq:
                    _, sent_at, count = inflight.popleft()
                    self._record_ack_latency(peer, now - sent_at, count)
                await self._on_peer_ack(peer, seq)
                event.set()  # window freed: wake the sender
            elif kind == "hb-ack":
                self._note_peer_alive(peer)
                if "seq" in frame:
                    self._reconcile_ack(peer, int(frame["seq"]), state)
                if "gossip" in frame:
                    await self._merge_gossip(peer, frame["gossip"])
            elif kind == "hello-ack":
                # The receiver's negotiation verdict for the codecs we
                # advertised on the hello frame ("json" is an explicit
                # refusal).  Every frame after this point may use the
                # accepted codec; waking ``hello_done`` releases the
                # sender, which holds data until the verdict so the
                # first window after a (re)connect cannot race past
                # the upgrade and stream JSON on a bin1 channel.
                wire = frame.get("wire")
                if self.wire != WIRE_JSON and wire in SUPPORTED_WIRES:
                    state["wire"] = wire
                    self._peer_wire[peer] = wire
                state["hello_done"].set()

    def _reconcile_ack(
        self, peer: str, seq: int, state: Dict[str, Any]
    ) -> None:
        """Compare a receiver's durability claim against the outbox.

        Normal operation only ever moves ``seq`` forward.  Two
        anomalies mean one side lost durable state:

        * ``seq`` *above* everything this outbox ever assigned — the
          receiver durably holds records this replica no longer knows
          it sent, so *this* side regressed (wiped or restored from an
          older image): trigger our own snapshot catch-up.
        * ``seq`` *below* the cumulative ack frontier — the receiver
          regressed.  Rewind the channel to re-send from its log when
          the records survive; when compaction already dropped them
          (or the receiver is ``catchup_lag`` records behind), flag
          the sender to emit a ``peer-reset`` frame directing the
          receiver to snapshot catch-up instead.
        """
        outbox = self.outboxes[peer]
        if seq > outbox._seq:
            if self.catchup_enabled and not self._catching_up:
                self._trigger_catchup("regressed-ack", preferred=peer)
            return
        if peer in self._reset_peers:
            return  # already directed to snapshot catch-up
        lag = outbox._seq - seq
        if seq >= outbox.frontier:
            # Not regressed, merely behind.  With ``catchup_lag`` set,
            # a receiver this far back (e.g. returning from a long
            # outage) is told to snapshot-install instead of drinking
            # the whole backlog through the channel.
            if self.catchup_lag and lag > self.catchup_lag:
                self._reset_peers.add(peer)
                self.trace.event(
                    "channel-lag", peer=peer, seq=seq, lag=lag
                )
                self._outbox_events[peer].set()
            return
        rewound = outbox.rewind_to(seq)
        self.m_channel_rewinds.labels(peer=peer).inc()
        if rewound:
            # Force the session to restart sending from the rewound
            # frontier instead of waiting out the stall deadline.
            state["inflight"].clear()
            state["sent_hi"] = outbox.frontier
        if not rewound or (self.catchup_lag and lag > self.catchup_lag):
            self._reset_peers.add(peer)
        self.trace.event(
            "channel-rewind", peer=peer, seq=seq, resend=rewound
        )
        logger.info(
            "%s: peer %s regressed to seq %d (rewind=%s, lag=%d)",
            self.name, peer, seq, rewound, lag,
        )
        self._outbox_events[peer].set()

    def _record_ack_latency(
        self, peer: str, latency: float, n_msets: int
    ) -> None:
        lats = self._ack_latencies.get(peer)
        if lats is None:
            lats = self._ack_latencies[peer] = deque(maxlen=512)
        lats.append(latency)
        self.acked_msets[peer] = self.acked_msets.get(peer, 0) + n_msets
        self.m_ack_latency.labels(peer=peer).observe(latency)
        self.m_acked_msets.labels(peer=peer).set_to(
            self.acked_msets[peer]
        )

    async def _on_peer_ack(self, peer: str, seq: int) -> None:
        """A peer durably holds every channel message ``<= seq``
        (cumulative acknowledgement)."""
        covered = self.outboxes[peer].ack_through(seq)
        released = []
        for acked_seq in covered:
            tid = self._seq_tid.pop((peer, acked_seq), None)
            if tid is None:
                continue
            waiting = self._unacked.get(tid)
            if waiting is None:
                continue
            waiting.discard(peer)
            if not waiting:
                del self._unacked[tid]
                released.append((tid, self._local_keys.pop(tid, ())))
        if released:
            # One cumulative ack can retire a whole send window of
            # local updates: release their obligations under a single
            # engine-lock acquisition instead of once per update.
            await self.engine.fully_acked_many(released)
            for tid, _ in released:
                self.trace.event("update-ack", tid=tid)
                fut = self._full_ack_futures.pop(tid, None)
                if fut is not None and not fut.done():
                    fut.set_result(True)
        if covered:
            await self._notify_drain()

    # -- connection handling ---------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        # Per-connection negotiated codec for frames *we* send back on
        # this socket (acks).  Flips to binary when the peer's hello
        # advertises a codec we also speak.
        conn_wire = {"codec": WIRE_JSON}

        async def send(obj: Dict[str, Any]) -> None:
            async with write_lock:
                await write_frame(writer, obj)

        async def send_raw(data: bytes) -> None:
            async with write_lock:
                writer.write(data)
                await writer.drain()

        try:
            while self._running:
                try:
                    frame = await read_frame(reader)
                except ProtocolError:
                    self.m_frames_dropped.labels(
                        reason="protocol_error"
                    ).inc()
                    break
                if frame is None:
                    break
                kind = frame.get("type")
                if kind in ("mset", "mset-batch"):
                    try:
                        await self._on_mset_batch_frame(
                            frame, send, send_raw, conn_wire
                        )
                    except ProtocolError:
                        self.m_frames_dropped.labels(
                            reason="malformed_mset"
                        ).inc()
                        break
                elif kind == "request":
                    # Requests may block on divergence control or
                    # commit acknowledgements: serve them concurrently.
                    req_task = asyncio.ensure_future(
                        self._serve_request(frame, send)
                    )
                    self._conn_tasks.add(req_task)
                    req_task.add_done_callback(self._conn_tasks.discard)
                elif kind == "hb":
                    src = str(frame.get("src", ""))
                    self._note_peer_alive(src)
                    if "gossip" in frame:
                        await self._merge_gossip(src, frame["gossip"])
                    reply: Dict[str, Any] = {
                        "type": "hb-ack", "src": self.name,
                    }
                    inbox = self.inboxes.get(src)
                    if inbox is not None:
                        # Heartbeat replies carry the receiver's inbox
                        # frontier so an idle channel still detects a
                        # regressed (wiped) receiver.
                        reply["seq"] = inbox.frontier
                    if "gossip" in frame:
                        reply["gossip"] = self._gossip_payload()
                    await send(reply)
                elif kind == "peer-reset":
                    # A sender compacted away records we never saw (or
                    # judged us too far behind to resend): the channel
                    # alone cannot repair us — snapshot catch-up can.
                    src = str(frame.get("src", ""))
                    self._note_peer_alive(src)
                    if self.catchup_enabled:
                        self._trigger_catchup("peer-reset", preferred=src)
                    else:
                        self.m_frames_dropped.labels(
                            reason="peer_reset_ignored"
                        ).inc()
                elif kind in ("peer-hello", "client-hello"):
                    src = frame.get("src")
                    if src:
                        self._note_peer_alive(str(src))
                    advert = frame.get("wire")
                    choice = None
                    if self.wire != WIRE_JSON:
                        choice = negotiate_wire(advert)
                    if choice is not None:
                        conn_wire["codec"] = choice
                    if advert is not None:
                        # The advert itself proves this sender speaks
                        # hello-ack, so ALWAYS answer it — with the
                        # chosen codec or an explicit "json" verdict.
                        # An advertising sender holds data until the
                        # reply lands; a silent receiver here would
                        # stall it for the whole handshake deadline
                        # and (worse) let the first send window after
                        # every reconnect race past the upgrade as
                        # JSON.  Advertising also implies the sender
                        # can already read the codec, so acks may
                        # switch as soon as this reply is queued.
                        await send(
                            {
                                "type": "hello-ack",
                                "src": self.name,
                                "wire": choice or WIRE_JSON,
                            }
                        )
                    self.m_wire_negotiations.labels(
                        wire_codec=choice or WIRE_JSON
                    ).inc()
                    continue
                else:
                    await send(
                        {"type": "error", "error": "unknown frame %r" % kind}
                    )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    async def _on_mset_batch_frame(
        self,
        frame: Dict[str, Any],
        send,
        send_raw=None,
        conn_wire: Optional[Dict[str, str]] = None,
    ) -> None:
        """Receive one ``mset``/``mset-batch`` frame (JSON or binary)
        from a peer.

        The contiguous fresh prefix of the batch is durably recorded
        with one group-commit append and applied under one engine-lock
        acquisition, then acknowledged *cumulatively* with the inbox
        frontier — covering this batch, any duplicates, and anything
        earlier the sender may not know was acked.  Because the frame
        is processed inline (the connection reads no further frames
        until this one is durable and applied), a fast sender fills
        TCP flow control rather than the receiver's memory.

        Every entry is fully decoded *before* anything is durably
        recorded: a malformed MSet must raise ``ProtocolError`` here
        (dropping the connection) rather than poison the inbox log,
        where it would crash recovery replay on every restart.

        Binary frames arrive with pre-encoded payload ``blobs``; those
        exact bytes are spliced into the inbox log so the durable
        record stays the same JSON line either way.
        """
        src = frame.get("src", "")
        inbox = self.inboxes.get(src)
        if inbox is None:
            # Unknown peer: the drop is counted and logged, not silent.
            self.m_frames_dropped.labels(reason="unknown_peer").inc()
            logger.debug(
                "%s: dropped mset frame from unknown peer %r",
                self.name, src,
            )
            return
        self._note_peer_alive(src)
        blobs = frame.get("blobs")
        fresh: List[Tuple[int, Any]] = []
        fresh_blobs: Optional[List[bytes]] = None
        expected = inbox.frontier + 1
        if blobs is not None:
            fresh_blobs = []
            for seq, blob in blobs:
                if seq < expected:
                    continue  # duplicate: the cumulative ack re-covers it
                if seq > expected:
                    break  # gap (reordered/dropped frame): ack frontier
                try:
                    payload = json.loads(blob)
                except ValueError as exc:
                    raise ProtocolError(
                        "binary entry %d is not valid JSON: %s"
                        % (seq, exc)
                    ) from exc
                if not isinstance(payload, dict) or not isinstance(
                    payload.get("mset"), dict
                ):
                    raise ProtocolError(
                        "binary entry %d is not an mset payload" % seq
                    )
                fresh.append((seq, payload))
                fresh_blobs.append(blob)
                expected += 1
        else:
            entries = decode_batch_frame(frame)
            for seq, encoded in entries:
                if seq < expected:
                    continue  # duplicate: the cumulative ack re-covers it
                if seq > expected:
                    break  # gap (reordered/dropped frame): ack frontier
                fresh.append((seq, {"mset": encoded}))
                expected += 1
        if fresh:
            # Decode first (see docstring), then record + apply under
            # the apply lock: a snapshot captured between the two
            # would claim this inbox frontier without holding the
            # batch's engine effects.
            msets = [
                decode_mset(payload["mset"]) for _, payload in fresh
            ]
            async with self._apply_lock:
                inbox.record_many(fresh, blobs=fresh_blobs)
                applied = await self.engine.accept_batch(msets, local=False)
                self._resolve_applied(applied)
            await self._notify_drain()
        # The cumulative ack is a durability claim over everything
        # <= frontier: the sender will truncate its outbox on receipt.
        # Records written inside the fsync_interval window must be
        # fsynced before that claim leaves this process, or a crash
        # here would lose them from both ends of the channel.
        inbox.sync()
        if (
            send_raw is not None
            and conn_wire is not None
            and conn_wire.get("codec") == WIRE_BIN1
        ):
            await send_raw(encode_bin_ack_frame(inbox.frontier))
        else:
            await send({"type": "ack", "seq": inbox.frontier})

    def _resolve_applied(self, applied: List[MSet]) -> None:
        """Applying remote MSets can release held-back local ones."""
        for mset in applied:
            fut = self._apply_futures.pop(mset.tid, None)
            if fut is not None and not fut.done():
                fut.set_result(True)

    # -- drain / settle --------------------------------------------------------

    def _drained(self) -> bool:
        """True when this site has nothing left to propagate or apply:
        every outbound channel is empty, the engine holds no buffered
        or locked work, and no local update awaits a peer ack."""
        return (
            all(box.drained() for box in self.outboxes.values())
            and self.engine.quiescent()
            and not self._unacked
        )

    async def _notify_drain(self) -> None:
        """Wake any ``settle`` waiters; called whenever acks, applies,
        or local commits may have changed the drain condition."""
        async with self._drain_cond:
            self._drain_cond.notify_all()

    # -- snapshots + compaction ------------------------------------------------

    async def take_snapshot(
        self, kind: str = "manual", compact: bool = True
    ) -> Dict[str, Any]:
        """Persist a checkpoint of the applied state, then compact the
        durable logs below its frontiers.

        The capture runs under the apply lock, so the engine image and
        the per-channel frontiers are one consistent cut; persistence
        is atomic (temp + fsync + rename), so the snapshot file is the
        commit point — compaction afterwards only ever drops records
        the snapshot provably contains.  Crash between the two and
        recovery replays the not-yet-compacted records but skips
        everything at or below the snapshot frontier, so nothing
        double-applies.
        """
        async with self._snapshot_lock:
            started = self.engine.clock()
            async with self._apply_lock:
                frontiers = {
                    src: box.frontier for src, box in self.inboxes.items()
                }
                engine_state = await self.engine.checkpoint()
            body = {
                "site": self.name,
                "method": self.method,
                "frontiers": frontiers,
                "engine": engine_state,
            }
            size = self._snapshot_store.save(seal_snapshot(body))
            self._snapshot_frontiers = dict(frontiers)
            self._last_snapshot_at = self.engine.clock()
            dropped = self._compact_logs(frontiers) if compact else 0
            duration = self.engine.clock() - started
            self.m_snapshots.labels(kind=kind).inc()
            self.m_snapshot_bytes.observe(size)
            self.m_snapshot_seconds.observe(duration)
            self.trace.event(
                "snapshot",
                trigger=kind,
                bytes=size,
                compacted=dropped,
                duration=round(duration, 6),
            )
            return {
                "bytes": size,
                "frontiers": frontiers,
                "compacted": dropped,
                "duration": duration,
            }

    def _compact_logs(self, frontiers: Dict[str, int]) -> int:
        """Drop log records the persisted snapshot already covers.

        Inboxes compact through their snapshot frontier.  Outboxes
        (whose channel seqs mirror local tid seqs) compact through the
        *local* snapshot frontier — never past the peer's cumulative
        ack (``compact`` clamps), and never past what the snapshot can
        serve to a receiver that later regresses below the log's base.
        """
        total = 0
        local_floor = frontiers.get(LOCAL_CHANNEL, 0)
        logs = [
            ("inbox/%s" % src, box, int(frontiers.get(src, 0)))
            for src, box in self.inboxes.items()
        ] + [
            ("outbox/%s" % peer, box, local_floor)
            for peer, box in self.outboxes.items()
        ]
        for label, box, through in logs:
            dropped = box.compact(through)
            if dropped:
                total += dropped
                self.trace.event(
                    "compaction", log=label, through=through,
                    dropped=dropped,
                )
        return total

    async def _snapshot_loop(self) -> None:
        """Periodic snapshot + compaction driver."""
        while self._running:
            await asyncio.sleep(self.snapshot_interval)
            if not self._running or self._catching_up:
                continue
            try:
                await self.take_snapshot(kind="periodic")
            except (OSError, RuntimeError) as exc:
                # A failed snapshot never corrupts state (atomic
                # rename); log compaction just waits for the next one.
                self.m_frames_dropped.labels(reason="snapshot_error").inc()
                logger.warning(
                    "%s: periodic snapshot failed: %r", self.name, exc
                )

    # -- anti-entropy catch-up -------------------------------------------------

    async def _addr_request(
        self,
        addr: Tuple[str, int],
        verb: str,
        timeout: float = 5.0,
        label: str = "replica",
        **params: Any,
    ) -> Dict[str, Any]:
        """One out-of-band request/response exchange with an arbitrary
        replica address (a mesh peer, or a migration counterpart in a
        different group)."""
        reader, writer = await asyncio.open_connection(*addr)
        try:
            await write_frame(
                writer,
                {"type": "request", "id": 1, "verb": verb, **params},
            )
            reply = await asyncio.wait_for(
                read_frame(reader), timeout=timeout
            )
        finally:
            writer.close()
        if reply is None:
            raise ConnectionError(
                "%s closed during %s" % (label, verb)
            )
        if not reply.get("ok"):
            raise RuntimeError(
                "%s refused %s: %s"
                % (label, verb, reply.get("error", "unknown error"))
            )
        return reply

    async def _peer_request(
        self, peer: str, verb: str, timeout: float = 5.0, **params: Any
    ) -> Dict[str, Any]:
        """One out-of-band request/response exchange with a peer."""
        addr = self.peer_addrs.get(peer)
        if addr is None or self._link_severed(peer):
            raise ConnectionError("no route to peer %s" % peer)
        reply = await self._addr_request(
            addr, verb, timeout=timeout, label="peer %s" % peer, **params
        )
        self._note_peer_alive(peer)
        return reply

    async def _startup_probe(self) -> None:
        """Decide whether an empty boot is a fresh cluster or a wiped
        disk, by asking the peers what they remember about this site.

        Evidence of a former life: a peer's inbox frontier for this
        site above zero (it durably holds updates this site no longer
        has) or a peer's channel to this site with a nonzero ack high
        water (this site once acknowledged records it no longer has).
        Either one triggers snapshot catch-up; a clean no-evidence
        sweep of every peer means a genuinely fresh cluster.
        """
        deadline = self.engine.clock() + max(self.suspect_after * 4, 2.0)
        answered: Set[str] = set()
        evidence_from: Optional[str] = None
        while self._running and evidence_from is None:
            for peer in self.peer_names:
                if peer in answered:
                    continue
                try:
                    reply = await self._peer_request(
                        peer, "stats", timeout=2.0
                    )
                except (
                    OSError,
                    ConnectionError,
                    RuntimeError,
                    asyncio.TimeoutError,
                ):
                    continue
                stats = reply.get("stats", {})
                answered.add(peer)
                held = int(
                    stats.get("inbox_frontier", {}).get(self.name, 0)
                )
                acked = int(
                    stats.get("ack_high_water", {}).get(self.name, 0)
                )
                if held > 0 or acked > 0:
                    evidence_from = peer
                    break
            if len(answered) == len(self.peer_names):
                break
            if self.engine.clock() >= deadline:
                break
            if evidence_from is None:
                await asyncio.sleep(self.retry_base * 4)
        if evidence_from is None:
            logger.debug(
                "%s: startup probe found no prior state (%d/%d peers)",
                self.name, len(answered), len(self.peer_names),
            )
            return
        # Re-check emptiness: normal channel traffic may have landed
        # while the probe was out, in which case the channels are
        # already repairing us and a forced install is unnecessary.
        if self.engine.applied_count == 0 and all(
            box.frontier == 0 for box in self.inboxes.values()
        ):
            self._trigger_catchup("wiped-disk", preferred=evidence_from)

    def _trigger_catchup(
        self, reason: str, preferred: Optional[str] = None
    ) -> None:
        """Enter catch-up mode and start the install task (idempotent
        while one is already running)."""
        if not self.catchup_enabled or not self._running:
            return
        if self._catchup_task is not None and not self._catchup_task.done():
            return
        self._catching_up = True
        self.trace.event("catchup", phase="start", reason=reason)
        logger.info(
            "%s: snapshot catch-up triggered (%s, preferred=%s)",
            self.name, reason, preferred or "-",
        )
        self._catchup_task = asyncio.ensure_future(
            self._catchup(reason, preferred)
        )
        self._catchup_task.add_done_callback(self._note_task_crash)

    async def _catchup(
        self, reason: str, preferred: Optional[str]
    ) -> None:
        """Fetch and install a dominating peer snapshot, with retry.

        While this runs the replica is degraded: updates and strict
        queries are refused (typed errors), epsilon-bounded queries
        keep answering from the stale-but-bounded local state.
        """
        backoff = self.retry_base
        try:
            while self._running:
                try:
                    source = await self._catchup_round(preferred)
                except asyncio.CancelledError:
                    raise
                except (
                    OSError,
                    ConnectionError,
                    asyncio.TimeoutError,
                    ProtocolError,
                    SnapshotError,
                    RuntimeError,
                    ValueError,
                ) as exc:
                    self.m_catchup.labels(outcome="retry").inc()
                    logger.debug(
                        "%s: catch-up round failed (%r), retrying",
                        self.name, exc,
                    )
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, self.retry_max)
                    continue
                self.m_catchup.labels(outcome="installed").inc()
                self.trace.event(
                    "catchup", phase="installed", source=source,
                )
                logger.info(
                    "%s: catch-up complete (installed snapshot from %s)",
                    self.name, source,
                )
                return
        finally:
            self._catching_up = False
            self.trace.event("catchup", phase="done", reason=reason)
            self._kick_channels()
            await self._notify_drain()

    async def _catchup_round(self, preferred: Optional[str]) -> str:
        """One attempt: survey peers, fetch the best candidate's fresh
        snapshot, install it if it dominates.  Returns the source."""
        me = self.name
        surveys: Dict[str, Dict[str, Any]] = {}
        for peer in self.peer_names:
            try:
                reply = await self._peer_request(peer, "stats", timeout=2.0)
            except (
                OSError,
                ConnectionError,
                RuntimeError,
                asyncio.TimeoutError,
            ):
                continue
            surveys[peer] = reply.get("stats", {})
        if not surveys:
            raise ConnectionError("no reachable peer to catch up from")
        # The highest local tid any reachable peer has durably seen
        # from this site: the installed snapshot's local frontier must
        # reach it, or freshly assigned tids could collide with updates
        # of a former life still circulating in peers' logs.
        required_local = max(
            [
                int(s.get("inbox_frontier", {}).get(me, 0))
                for s in surveys.values()
            ]
            + [self.inboxes[LOCAL_CHANNEL].frontier]
        )

        def advance(peer: str) -> Tuple[int, int]:
            fr = surveys[peer].get("inbox_frontier", {})
            return (
                int(fr.get(me, 0)),
                sum(int(v) for v in fr.values()),
            )

        candidates = sorted(surveys, key=advance, reverse=True)
        if preferred in surveys:
            candidates.remove(preferred)
            candidates.insert(0, preferred)
        last_error: Optional[BaseException] = None
        for source in candidates:
            try:
                body = await self._fetch_snapshot(source)
                if body.get("method") != self.method:
                    raise SnapshotError(
                        "snapshot from %s is for method %r"
                        % (source, body.get("method"))
                    )
                if body.get("site") != source:
                    raise SnapshotError(
                        "snapshot from %s claims site %r"
                        % (source, body.get("site"))
                    )
                translated = self._translate_frontiers(
                    source, body["frontiers"]
                )
                if not self._dominates(translated, required_local):
                    raise RuntimeError(
                        "snapshot from %s does not dominate local state"
                        % source
                    )
            except (
                OSError,
                ConnectionError,
                asyncio.TimeoutError,
                ProtocolError,
                SnapshotError,
                RuntimeError,
                ValueError,
            ) as exc:
                last_error = exc
                continue
            await self._install_snapshot(body, translated)
            return source
        assert last_error is not None
        raise last_error

    async def _fetch_snapshot(self, source: str) -> Dict[str, Any]:
        """Pull one mesh peer's snapshot in chunks (rejoin path)."""
        addr = self.peer_addrs.get(source)
        if addr is None or self._link_severed(source):
            raise ConnectionError("no route to peer %s" % source)
        body = await self._fetch_snapshot_addr(
            addr, label="peer %s" % source
        )
        self._note_peer_alive(source)
        return body

    async def _fetch_snapshot_addr(
        self, addr: Tuple[str, int], label: str
    ) -> Dict[str, Any]:
        """Pull a replica's snapshot in chunks over the request verb.

        Address-based so it serves both rejoin (a mesh peer) and shard
        migration (the same-named counterpart in the retired owner
        group, which is *not* in this replica's peer set).

        ``fresh=True`` on the first chunk makes the source take a new
        snapshot before serving, so the image reflects its *current*
        frontiers — stale images would fail the dominance check."""
        chunks: List[str] = []
        offset = 0
        total: Optional[int] = None
        while True:
            reply = await self._addr_request(
                addr,
                "snapshot-fetch",
                timeout=15.0,
                label=label,
                offset=offset,
                fresh=(offset == 0),
            )
            data = str(reply.get("data", ""))
            chunks.append(data)
            offset += len(data)
            total = int(reply.get("total", 0))
            if reply.get("eof") or not data:
                break
        raw = "".join(chunks)
        if total is not None and len(raw) != total:
            raise SnapshotError(
                "snapshot fetch from %s truncated (%d of %d bytes)"
                % (label, len(raw), total)
            )
        return open_snapshot(json.loads(raw))

    def _translate_frontiers(
        self, source: str, frontiers: Dict[str, Any]
    ) -> Dict[str, int]:
        """Re-index a source snapshot's frontiers into this site's
        channel namespace.

        The source's ``_local`` channel is our inbound channel *from*
        the source; the source's channel *for us* carries our own
        updates, so it becomes our local frontier (and tid counter).
        Channels to third peers keep their names.
        """
        fr = {src: int(seq) for src, seq in frontiers.items()}
        translated: Dict[str, int] = {}
        for channel in self.inboxes:
            if channel == LOCAL_CHANNEL:
                translated[channel] = fr.get(self.name, 0)
            elif channel == source:
                translated[channel] = fr.get(LOCAL_CHANNEL, 0)
            else:
                translated[channel] = fr.get(channel, 0)
        return translated

    def _dominates(
        self, translated: Dict[str, int], required_local: int
    ) -> bool:
        """A snapshot is installable only if it is at or ahead of this
        site on *every* channel (installing would otherwise roll back
        applied state) and its local frontier covers every tid any
        reachable peer has seen from us (tid-collision protection)."""
        for channel, inbox in self.inboxes.items():
            if translated.get(channel, 0) < inbox.frontier:
                return False
        return translated.get(LOCAL_CHANNEL, 0) >= required_local

    async def _install_snapshot(
        self, body: Dict[str, Any], translated: Dict[str, int]
    ) -> None:
        """Adopt a peer snapshot as this site's new applied state.

        Persisting the re-sealed snapshot (atomic rename) is the
        commit point: a crash before it leaves the old state intact;
        a crash after it recovers into the installed image, with
        ``_recover`` aligning any log that missed its reset.  In-flight
        local commit futures are cancelled — their updates are either
        inside the snapshot (a former life this site no longer
        remembers acking) or refused.
        """
        async with self._snapshot_lock:
            async with self._apply_lock:
                mine = {
                    "site": self.name,
                    "method": self.method,
                    "frontiers": translated,
                    "engine": body["engine"],
                }
                size = self._snapshot_store.save(seal_snapshot(mine))
                self.m_snapshots.labels(kind="install").inc()
                self.m_snapshot_bytes.observe(size)
                for src, inbox in self.inboxes.items():
                    inbox.reset_to(translated.get(src, 0))
                local_floor = translated.get(LOCAL_CHANNEL, 0)
                for outbox in self.outboxes.values():
                    outbox.reset_to(local_floor)
                self._seq_tid.clear()
                self._unacked.clear()
                self._local_keys.clear()
                for fut in list(self._apply_futures.values()) + list(
                    self._full_ack_futures.values()
                ):
                    if not fut.done():
                        fut.cancel()
                self._apply_futures.clear()
                self._full_ack_futures.clear()
                await self.engine.restore(body["engine"])
                self._snapshot_frontiers = dict(translated)
                self._last_snapshot_at = self.engine.clock()
                self.catchup_installs += 1
            self.trace.event(
                "catchup",
                phase="install",
                source=body.get("site"),
                frontiers=dict(translated),
            )

    # -- request serving -------------------------------------------------------

    async def _serve_request(self, frame: Dict[str, Any], send) -> None:
        rid = frame.get("id")
        verb = frame.get("verb")
        try:
            attr = self._verb_handlers.get(verb)
            handler = getattr(self, attr) if attr is not None else None
            if handler is None:
                raise ValueError("unknown verb %r" % verb)
            body = await handler(frame)
            self.m_requests.labels(verb=str(verb), outcome="ok").inc()
            await send({"type": "response", "id": rid, "ok": True, **body})
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # surfaced to the client, not fatal
            self.m_requests.labels(verb=str(verb), outcome="error").inc()
            response = {
                "type": "response",
                "id": rid,
                "ok": False,
                "error": str(exc),
                "code": getattr(exc, "code", None) or type(exc).__name__,
            }
            # Typed errors may carry structured context (WRONG_SHARD
            # ships the newest shard map so the refusal itself is the
            # routing-table refresh).
            extra = getattr(exc, "extra", None)
            if isinstance(extra, dict):
                response.update(extra)
            try:
                await send(response)
            except (ConnectionError, OSError):
                pass

    async def _handle_ping(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"site": self.name, "method": self.engine.method_name}

    async def _handle_snapshot(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """On-demand snapshot + compaction (operator / CLI verb)."""
        if self._catching_up:
            raise Unavailable(
                "snapshot refused: replica is installing a peer snapshot"
            )
        result = await self.take_snapshot(kind="manual")
        return {
            "snapshot": {
                "bytes": result["bytes"],
                "frontiers": result["frontiers"],
                "compacted": result["compacted"],
            }
        }

    async def _handle_snapshot_fetch(
        self, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Serve one chunk of this site's snapshot to a catching-up
        peer.  ``fresh`` forces a new capture first; chunks are byte
        slices of the (pure-ASCII) serialized envelope."""
        if self._catching_up:
            raise Unavailable(
                "snapshot-fetch refused: this replica is itself catching up"
            )
        if bool(frame.get("fresh")) or not self._snapshot_store.exists():
            await self.take_snapshot(kind="serve")
        envelope = self._snapshot_store.load_envelope()
        if envelope is None:
            raise Unavailable("no valid snapshot available")
        data = snapshot_bytes(envelope)
        offset = max(0, int(frame.get("offset", 0)))
        chunk = data[offset:offset + SNAPSHOT_CHUNK]
        return {
            "total": len(data),
            "offset": offset,
            "data": chunk.decode("ascii"),
            "eof": offset + len(chunk) >= len(data),
        }

    # -- sharding --------------------------------------------------------------

    def _adopt_map(self, new_map: Dict[str, Any]) -> None:
        """Remember the newest shard map this replica has been shown.

        Epoch-monotonic: an older map never overwrites a newer one, so
        a straggling orchestration message cannot roll the fence back.
        """
        epoch = int(new_map.get("epoch", 0))
        if self._shard_map is not None and epoch < int(
            self._shard_map.get("epoch", 0)
        ):
            return
        self._shard_map = new_map
        self.shard_epoch = epoch

    async def _handle_shard_info(
        self, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Routing discovery: this group's shard state and newest map."""
        if self.shard_index is None:
            return {"shard": None, "map": None}
        return {
            "shard": {
                "index": self.shard_index,
                "count": self.shard_count,
                "epoch": self.shard_epoch,
                "accepting": self._shard_accepting,
                "retired": self._shard_retired,
            },
            "map": self._shard_map,
        }

    async def _handle_shard_retire(
        self, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Fence this replica out of its shard (migration step 1).

        From this response on, every update/query is refused with
        ``WRONG_SHARD`` carrying the epoch-bumped map — no acknowledged
        update can land behind the migration's back.  Idempotent.
        """
        if self.shard_index is None:
            raise ValueError("shard-retire on an unsharded replica")
        new_map = frame.get("map")
        if isinstance(new_map, dict):
            self._adopt_map(new_map)
        self._shard_retired = True
        self.trace.event(
            "shard",
            phase="retire",
            shard=self.shard_index,
            epoch=self.shard_epoch,
        )
        return {"retired": True, "shard": self.shard_index}

    async def _handle_shard_adopt(
        self, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Start accepting the shard at the new epoch (final step)."""
        if self.shard_index is None:
            raise ValueError("shard-adopt on an unsharded replica")
        new_map = frame.get("map")
        if isinstance(new_map, dict):
            self._adopt_map(new_map)
        self._shard_accepting = True
        self.trace.event(
            "shard",
            phase="adopt",
            shard=self.shard_index,
            epoch=self.shard_epoch,
        )
        return {
            "accepting": True,
            "shard": self.shard_index,
            "epoch": self.shard_epoch,
        }

    async def _handle_fetch_install(
        self, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Migration state transfer: pull a fresh snapshot from the
        named counterpart (same site name, old owner group) at
        ``host:port`` and install it.

        Frontier translation is the *identity* because a replacement
        group reuses the source group's site names — the counterpart's
        channel namespace is exactly ours, unlike the rejoin path where
        the source is a different site.  The drained source can only be
        at-or-ahead of a cold replacement on every channel, so the
        dominance rule degenerates to: install if ahead anywhere,
        report already-current otherwise.
        """
        if self._catching_up:
            raise Unavailable(
                "fetch-install refused: an install is already running"
            )
        if (
            self.shard_index is not None
            and self._shard_accepting
            and not self._shard_retired
        ):
            raise ValueError(
                "fetch-install refused: this replica is actively "
                "serving shard %d" % self.shard_index
            )
        host = str(frame.get("host", ""))
        port = int(frame.get("port", 0))
        site = str(frame.get("site", ""))
        if not host or not port:
            raise ValueError("fetch-install needs the source host/port")
        self._catching_up = True
        try:
            body = await self._fetch_snapshot_addr(
                (host, port),
                label="counterpart %s" % (site or host),
            )
            if body.get("method") != self.method:
                raise SnapshotError(
                    "counterpart snapshot is for method %r"
                    % body.get("method")
                )
            if site and body.get("site") != site:
                raise SnapshotError(
                    "counterpart snapshot claims site %r, wanted %r"
                    % (body.get("site"), site)
                )
            frontiers = {
                src: int(seq)
                for src, seq in body.get("frontiers", {}).items()
            }
            translated = {
                channel: frontiers.get(channel, 0)
                for channel in self.inboxes
            }
            dominates = all(
                translated[ch] >= box.frontier
                for ch, box in self.inboxes.items()
            )
            if not dominates:
                if all(
                    translated[ch] <= box.frontier
                    for ch, box in self.inboxes.items()
                ):
                    # Retried after a completed install: local state
                    # already covers the snapshot.  Never roll back.
                    return {"installed": False, "current": True}
                raise RuntimeError(
                    "counterpart snapshot and local state diverged; "
                    "refusing install"
                )
            await self._install_snapshot(body, translated)
            return {"installed": True, "frontiers": translated}
        finally:
            self._catching_up = False

    def _refresh_gauges(self) -> None:
        """Bring sampled (pull-model) series up to date for a scrape:
        backlog/staleness/liveness per peer, degraded state, unacked
        updates, and the durable logs' fsync/byte counters."""
        now = self.engine.clock()
        for peer in self.peer_names:
            outbox = self.outboxes.get(peer)
            if outbox is not None:
                self.m_channel_backlog.labels(peer=peer).set(
                    outbox.backlog
                )
            seen = self.peer_last_seen.get(peer)
            if seen is not None:
                self.m_peer_staleness.labels(peer=peer).set(now - seen)
            self.m_peer_alive.labels(peer=peer).set(
                1 if self.peer_alive(peer) else 0
            )
        self._check_degraded_transition()
        self.m_degraded.set(1 if self.degraded() else 0)
        self.m_unacked.set(len(self._unacked))
        logs = [
            ("outbox/%s" % peer, box)
            for peer, box in self.outboxes.items()
        ] + [
            ("inbox/%s" % src, box)
            for src, box in self.inboxes.items()
        ]
        for label, box in logs:
            self.m_log_fsync.labels(log=label).set_to(box.fsync_count)
            self.m_log_fsync_seconds.labels(log=label).set_to(
                box.fsync_seconds
            )
            self.m_log_bytes.labels(log=label).set_to(box.bytes_written)
            self.m_log_compactions.labels(log=label).set_to(
                box.compaction_count
            )
            self.m_log_compacted.labels(log=label).set_to(
                box.compacted_records
            )

    async def _handle_metrics(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Expose the registry: Prometheus text plus a JSON mirror.

        One verb serves both formats so a scrape is a single request;
        sampled gauges are refreshed first, so every scrape is a
        consistent point-in-time snapshot.
        """
        self._refresh_gauges()
        return {
            "site": self.name,
            "prometheus": self.registry.render_prometheus(),
            "metrics": self.registry.to_dict(),
            "trace_recorded": self.trace.recorded,
            "trace_dropped": self.trace.dropped,
        }

    async def _handle_values(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"values": self.engine.snapshot()}

    async def _handle_stats(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        now = self.engine.clock()
        peers: Dict[str, Dict[str, Any]] = {}
        for peer in self.peer_names:
            seen = self.peer_last_seen.get(peer)
            lats = self._ack_latencies.get(peer)
            peers[peer] = {
                "alive": self.peer_alive(peer),
                "staleness": (
                    None if seen is None else round(now - seen, 4)
                ),
                "backlog": self.outboxes[peer].backlog,
                "failures": self.channel_failures.get(peer, 0),
                "ack_high_water": self.outboxes[peer].frontier,
                "acked_msets": self.acked_msets.get(peer, 0),
                "ack_ms": (
                    round(sum(lats) / len(lats) * 1000.0, 3)
                    if lats
                    else None
                ),
                "wire": self._peer_wire.get(peer, WIRE_JSON),
            }
        stats = self.engine.stats()
        stats.update(
            site=self.name,
            wire=self.wire,
            peers=peers,
            degraded=self.degraded(),
            outbound_backlog={
                p: box.backlog for p, box in self.outboxes.items()
            },
            ack_high_water={
                p: box.frontier for p, box in self.outboxes.items()
            },
            inbox_frontier={
                src: box.frontier for src, box in self.inboxes.items()
            },
            unacked_updates=len(self._unacked),
            drained=self._drained(),
            catching_up=self._catching_up,
            catchup_installs=self.catchup_installs,
            backlog_limit=self.backlog_limit,
            snapshot={
                "exists": self._snapshot_store.exists(),
                "frontiers": dict(self._snapshot_frontiers),
                "age": (
                    None
                    if self._last_snapshot_at is None
                    else round(now - self._last_snapshot_at, 4)
                ),
            },
            log_bases={
                "inbox": {
                    src: box.base for src, box in self.inboxes.items()
                },
                "outbox": {
                    p: box.base for p, box in self.outboxes.items()
                },
            },
        )
        if self.shard_index is not None:
            stats["shard"] = {
                "index": self.shard_index,
                "count": self.shard_count,
                "epoch": self.shard_epoch,
                "accepting": self._shard_accepting,
                "retired": self._shard_retired,
            }
        election = dict(self.election.wire())
        election["order_site"] = self.current_leader()
        election["synced"] = self._epoch_synced
        stats["election"] = election
        stats["membership"] = self.membership.wire()
        return {"stats": stats}

    async def _handle_settle(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Block until this site is drained (or ``wait`` seconds pass).

        This is the poll-free replacement for clients hammering the
        ``stats`` verb: waiters sleep on the drain condition and are
        woken by the ack/apply/commit paths, with a short safety
        re-check cap in case a wake-up is missed across a restart.
        """
        timeout = float(frame.get("wait", 30.0))
        deadline = self.engine.clock() + timeout
        waited = False
        async with self._drain_cond:
            while not self._drained():
                waited = True
                remaining = deadline - self.engine.clock()
                if remaining <= 0:
                    raise TimeoutError(
                        "settle timed out after %.1fs: backlog %r"
                        % (
                            timeout,
                            {
                                p: box.backlog
                                for p, box in self.outboxes.items()
                            },
                        )
                    )
                try:
                    await asyncio.wait_for(
                        self._drain_cond.wait(), min(remaining, 0.25)
                    )
                except asyncio.TimeoutError:
                    pass
        self.trace.event("drain", waited=waited)
        return {
            "drained": True,
            "waited": waited,
            "ack_high_water": {
                p: self.outboxes[p].frontier for p in self.peer_names
            },
        }

    async def _handle_order(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self._check_order_authority()
        return {"order": list(self._grant_order())}

    async def _handle_elect(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Vote request (or pure epoch read at ``epoch=0``) from a
        candidate.  A promise is durable before the reply leaves this
        process — a crash cannot un-promise — and carries the max
        durable order sequence this replica has seen, from which the
        winner computes its resume base."""
        epoch = int(frame.get("epoch", 0))
        candidate = str(frame.get("candidate", ""))
        granted = self.election.promise(epoch) if epoch > 0 else False
        if granted:
            self.trace.event(
                "election", phase="promise", epoch=epoch,
                candidate=candidate,
            )
        max_seen = getattr(self.engine, "max_order_seen", None)
        return {
            "promised": granted,
            "promised_epoch": self.election.promised,
            "epoch": self.election.epoch,
            "leader": self.election.leader,
            "base": self.election.base,
            "frontier": max_seen() if max_seen is not None else 0,
        }

    def _grant_order(self) -> Tuple[int, int]:
        """Issue the next gap-free global order token (durable),
        stamped with the granting leader's epoch."""
        self._order_counter += 1
        self._order_path.write_text(
            json.dumps(
                {"next": self._order_counter, "epoch": self.election.epoch}
            )
        )
        return (self._order_counter, self.election.epoch)

    async def _acquire_order(self) -> Tuple[int, int]:
        """Get a token from the cluster's order authority, with retry.

        Re-resolves the current leader on every attempt, so an
        election mid-retry redirects the request instead of hammering
        the dead sequencer; a local lease refusal (leader fenced or
        not yet synced) backs off the same way."""
        backoff = self.retry_base
        while self._running:
            leader = self.current_leader()
            if leader == self.name:
                try:
                    self._check_order_authority()
                    return self._grant_order()
                except (Unavailable, ValueError):
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, self.retry_max)
                    continue
            try:
                if self._link_severed(leader):
                    raise ConnectionError(
                        "link to order site %s severed" % leader
                    )
                async with self._order_lock:
                    if self._order_conn is None or self._order_target != leader:
                        if self._order_conn is not None:
                            self._order_conn[1].close()
                            self._order_conn = None
                        addr = self.peer_addrs.get(
                            leader
                        ) or self.membership.address(leader)
                        if addr is None:
                            raise ConnectionError("no address for order site")
                        self._order_conn = await asyncio.open_connection(
                            *addr
                        )
                        self._order_target = leader
                    reader, writer = self._order_conn
                    await write_frame(
                        writer,
                        {"type": "request", "id": 0, "verb": "order"},
                    )
                    reply = await asyncio.wait_for(
                        read_frame(reader), timeout=5.0
                    )
                if reply is None or not reply.get("ok"):
                    raise ConnectionError(
                        "order request failed: %s"
                        % (reply or {}).get("error", "connection lost")
                    )
                order = reply["order"]
                self._note_peer_alive(leader)
                if len(order) > 1:
                    return (int(order[0]), int(order[1]))
                return (int(order[0]), 0)
            except (OSError, ConnectionError, asyncio.TimeoutError):
                if self._order_conn is not None:
                    self._order_conn[1].close()
                    self._order_conn = None
                    self._order_target = None
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max)
        raise ConnectionError("server stopping")

    def _check_shard(self, keys: Sequence[str]) -> None:
        """Refuse work this replica's group does not own.

        A retired group (fenced out by a migration) refuses everything;
        an owning group refuses keys that hash elsewhere; a migration
        target that has not adopted the shard yet refuses with
        ``UNAVAILABLE`` so routers hold their (safe-to-retry) requests
        until the cutover completes.  Unsharded replicas skip all of
        this — ``shard=None`` means the whole keyspace is local.
        """
        if self.shard_index is None:
            return
        if self._shard_retired:
            raise WrongShard(
                "shard %d was migrated away from this group (epoch %d)"
                % (self.shard_index, self.shard_epoch),
                self._shard_map,
            )
        if not self._shard_accepting:
            raise Unavailable(
                "shard %d is migrating onto this group; retry shortly"
                % self.shard_index
            )
        for key in keys:
            owner = key_shard(key, self.shard_count)
            if owner != self.shard_index:
                raise WrongShard(
                    "key %r belongs to shard %d, not %d"
                    % (key, owner, self.shard_index),
                    self._shard_map,
                )

    async def _handle_update(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        ops = decode_ops(frame.get("ops", ()))
        if not ops:
            raise ValueError("update without operations")
        if not any(is_write(op) for op in ops):
            raise ValueError("update ET must contain a write (use query)")
        self._check_shard([op.key for op in ops])
        if self._catching_up:
            # Accepting an update mid-install would stamp it with a tid
            # the incoming snapshot is about to overwrite.
            self.m_updates_rejected.labels(reason="catchup").inc()
            raise Unavailable(
                "update refused: replica is installing a peer snapshot"
            )
        if self.backlog_limit:
            worst = max(
                (box.backlog for box in self.outboxes.values()), default=0
            )
            if worst >= self.backlog_limit:
                # Shed write load instead of growing the durable queues
                # without bound while a peer is slow or partitioned.
                self.m_updates_rejected.labels(reason="overloaded").inc()
                raise Overloaded(
                    "update refused: channel backlog %d >= limit %d"
                    % (worst, self.backlog_limit)
                )
        self.engine.validate_update(ops)
        writes = tuple(op for op in ops if is_write(op))
        read_keys = [op.key for op in ops if op.is_read_op]

        saga = frame.get("saga")
        abort = bool(frame.get("abort"))
        is_compe = hasattr(self.engine, "decision_of")
        if (saga is not None or abort) and not is_compe:
            raise ValueError(
                "saga/abort updates need the COMPE method (got %s)"
                % self.engine.method_name
            )
        if saga is not None and (not isinstance(saga, str) or not saga):
            raise ValueError("saga id must be a non-empty string")

        order = None
        if self.engine.needs_order:
            order = await self._acquire_order()

        # The tid-assign -> record -> append -> apply region runs under
        # the apply lock so a concurrent snapshot never captures a
        # frontier whose engine effects it lacks (commit waits happen
        # after release).
        async with self._apply_lock:
            if order is not None and hasattr(self.engine, "order_admissible"):
                if not self.engine.order_admissible(order):
                    # The granting leader was deposed between the grant
                    # and our durable record: refuse *before* any log
                    # append, so a fenced update is never client-acked.
                    self.m_updates_rejected.labels(reason="fenced").inc()
                    raise Unavailable(
                        "order token %r fenced by a newer leadership epoch"
                        % (list(order),)
                    )
            tid_seq = self.inboxes[LOCAL_CHANNEL].frontier + 1
            tid = "%s:%d" % (self.name, tid_seq)
            info_items = []
            if read_keys:
                info_items.append(("reads", read_keys))
            if saga is not None:
                info_items.append(("saga", saga))
            info = tuple(info_items)
            # The engine owns local MSet construction: RITU stamps the
            # writes with its Lamport clock here, RITU-MV additionally
            # turns the order token into the global transaction number.
            mset = self.engine.make_mset(tid, writes, order=order, info=info)
            payload = {"mset": encode_mset(mset)}
            # Encode the payload exactly once; the same bytes become
            # the local log line, every outbox log line, and (on a
            # binary channel) the relayed wire bytes.
            blob = payload_blob(payload)
            self.trace.event(
                "update-submit", tid=tid, keys=list(mset.keys)
            )

            # Durability before acknowledgement: the local log first,
            # then every outbound channel log.  Only then is the update
            # "in the stable queues" in the paper's sense.  ``sync()``
            # closes the ``fsync_interval`` window — nothing below may
            # be reported committed while its record is still unsynced.
            self.inboxes[LOCAL_CHANNEL].record(tid_seq, payload, blob=blob)
            self._local_keys[tid] = mset.keys
            if self.peer_names:
                self._unacked[tid] = set(self.peer_names)
                for peer in self.peer_names:
                    seq = self.outboxes[peer].append(payload, blob=blob)
                    self._seq_tid[(peer, seq)] = tid
            self.inboxes[LOCAL_CHANNEL].sync()
            for peer in self.peer_names:
                self.outboxes[peer].sync()

            loop = asyncio.get_event_loop()
            if self.engine.needs_order:
                self._apply_futures[tid] = loop.create_future()
            if self.engine.sync_commit and self.peer_names:
                self._full_ack_futures[tid] = loop.create_future()

            applied = await self.engine.accept(mset, local=True)
            self._resolve_applied(applied)
        self.trace.event(
            "update-apply", tid=tid, held=(mset not in applied)
        )
        self._kick_channels()

        if not self.peer_names:
            await self.engine.fully_acked(tid, self._local_keys.pop(tid, ()))

        if self.engine.needs_order:
            # Commit once the update executes at its origin in global
            # order (read-modify-report values are evaluated there).
            fut = self._apply_futures.get(tid)
            if fut is not None:
                await asyncio.wait_for(fut, timeout=self.commit_timeout)
        if self.engine.sync_commit and self.peer_names:
            # Synchronous baseline: wait for every peer's durable ack.
            fut = self._full_ack_futures.get(tid)
            if fut is not None:
                await asyncio.wait_for(fut, timeout=self.commit_timeout)
        decided: Optional[str] = None
        if is_compe:
            # COMPE commits optimistically; the *decision* is a separate
            # durable MSet.  Outside a saga the origin decides COMMIT
            # immediately; a saga step stays undecided until the saga's
            # ``decide`` verb; ``abort`` exercises backward recovery on
            # the spot (the validation-failure path of the paper).
            if abort:
                await self._emit_decision(tid, "abort")
                self.m_updates_rejected.labels(reason="compensated").inc()
                raise Compensated(
                    "update %s applied optimistically and undone by "
                    "backward recovery (abort requested)" % tid,
                    [tid],
                )
            if saga is None:
                await self._emit_decision(tid, "commit")
                decided = "commit"
        values = self.engine.pop_read_results(tid)
        await self._notify_drain()
        body = {"tid": tid, "values": values}
        if decided is not None:
            body["decided"] = decided
        if saga is not None:
            body["saga"] = saga
        return body

    async def _emit_decision(self, target: str, outcome: str) -> str:
        """Originate a durable decision MSet for ``target``.

        Decisions travel the same durable path as updates — local inbox
        record first, then every outbound channel log — but under a
        *fresh* tid with ``info=(("decides", target),)``: reusing the
        update's tid would corrupt the ack bookkeeping
        (``_seq_tid``/``_unacked``) that still tracks the update itself.
        The origin emits both the update and its decision on the same
        channels, so every replica sees update-before-decision and a
        decision can never arrive for an update it has not logged.
        """
        kind = MSetKind.ABORT if outcome == "abort" else MSetKind.COMMIT
        async with self._apply_lock:
            tid_seq = self.inboxes[LOCAL_CHANNEL].frontier + 1
            tid = "%s:%d" % (self.name, tid_seq)
            mset = MSet(
                tid,
                kind,
                (),
                origin=self.name,
                info=(("decides", target),),
            )
            payload = {"mset": encode_mset(mset)}
            blob = payload_blob(payload)
            self.trace.event(
                "decision-submit", tid=tid, decides=target, outcome=outcome
            )
            self.inboxes[LOCAL_CHANNEL].record(tid_seq, payload, blob=blob)
            self._local_keys[tid] = mset.keys
            if self.peer_names:
                self._unacked[tid] = set(self.peer_names)
                for peer in self.peer_names:
                    seq = self.outboxes[peer].append(payload, blob=blob)
                    self._seq_tid[(peer, seq)] = tid
            self.inboxes[LOCAL_CHANNEL].sync()
            for peer in self.peer_names:
                self.outboxes[peer].sync()
            applied = await self.engine.accept(mset, local=True)
            self._resolve_applied(applied)
        self._kick_channels()
        if not self.peer_names:
            await self.engine.fully_acked(tid, self._local_keys.pop(tid, ()))
        await self._notify_drain()
        return tid

    async def _handle_decide(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Decide a saga (or an explicit tid list) commit or abort.

        ``{"saga": S}`` resolves to the saga's member tids in submission
        order; an abort decides them in *reverse* submission order — the
        saga pattern's backward recovery.  Already-decided tids are
        skipped (the first decision is final), which makes retrying a
        partially delivered decide idempotent.
        """
        if not hasattr(self.engine, "decision_of"):
            raise ValueError(
                "decide needs the COMPE method (got %s)"
                % self.engine.method_name
            )
        outcome = frame.get("outcome")
        if outcome not in ("commit", "abort"):
            raise ValueError("decide outcome must be 'commit' or 'abort'")
        saga = frame.get("saga")
        tids = frame.get("tids")
        if saga is not None:
            targets = self.engine.saga_members(saga)
            if not targets:
                raise ValueError(
                    "unknown saga %r (no recorded steps here)" % (saga,)
                )
        elif tids:
            targets = [str(t) for t in tids]
        else:
            raise ValueError("decide needs a 'saga' id or a 'tids' list")
        if outcome == "abort":
            targets = list(reversed(targets))
        decided: List[str] = []
        skipped: List[Dict[str, Any]] = []
        for target in targets:
            prior = self.engine.decision_of(target)
            if prior is not None:
                skipped.append({"tid": target, "outcome": prior})
                continue
            await self._emit_decision(target, outcome)
            decided.append(target)
        body: Dict[str, Any] = {
            "outcome": outcome,
            "decided": decided,
            "skipped": skipped,
        }
        if outcome == "abort":
            body["compensated"] = list(decided)
        if saga is not None:
            body["saga"] = saga
        return body

    def _applied_frontiers(self) -> Dict[str, int]:
        """Per-site applied frontier vector, with the local channel
        published under this site's own name (the wire/session-token
        namespace — ``_local`` is a private disk-layout detail)."""
        return {
            (self.name if src == LOCAL_CHANNEL else src): box.frontier
            for src, box in self.inboxes.items()
        }

    def _check_session(self, token: Any) -> None:
        """Refuse a session read this replica cannot serve honestly.

        The token carries per-site frontiers; every site this replica
        replicates (itself or a peer channel) must have caught up to
        its entry.  Sites the replica does not know (another shard's
        group, under the router) are not its partition to check and
        are skipped — their owning group checks them.
        """
        if not isinstance(token, dict) or not token:
            return
        frontiers = self._applied_frontiers()
        lagging: Dict[str, int] = {}
        for site, seq in token.items():
            try:
                need = int(seq)
            except (TypeError, ValueError):
                continue
            have = frontiers.get(str(site))
            if have is not None and have < need:
                lagging[str(site)] = need - have
        if lagging:
            self.m_session_stale.inc()
            self.trace.event("session-stale", lagging=lagging)
            raise SessionStale(
                "session read refused: applied frontiers lag the token by %r"
                % (lagging,),
                frontiers,
            )

    async def _handle_query(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        keys = frame.get("keys")
        if not keys or not all(isinstance(k, str) for k in keys):
            raise ValueError("query needs a list of string keys")
        self._check_shard(keys)
        spec = decode_spec(frame.get("spec"))
        self._check_session(frame.get("session"))
        self.trace.event(
            "read",
            keys=len(keys),
            strict=spec.is_strict,
            session=bool(frame.get("session")),
        )
        if spec.is_strict and self.peer_names:
            outcome = await self._strict_query_guarded(keys, spec)
        else:
            try:
                outcome = await self.engine.query(
                    keys, spec, timeout=self.query_timeout
                )
            except QueryTimeout as exc:
                raise QueryTimeout(str(exc)) from None
        self.engine.note_query_outcome(outcome, spec)
        frontiers = self._applied_frontiers()
        return {
            "values": outcome.values,
            "inconsistency": outcome.inconsistency,
            "overlap": list(outcome.overlap),
            "waits": outcome.waits,
            "degraded": self.degraded(),
            "served_by": self.name,
            "frontiers": frontiers,
            # How far behind the group this replica can prove it is,
            # in update counts (gossiped own-update frontiers vs what
            # has actually been received here).
            "staleness": self.membership.frontier_lag(frontiers),
        }

    async def _strict_query_guarded(self, keys, spec):
        """Serve an ``epsilon = 0`` query with degraded-mode fail-fast.

        A strict query must reflect full replica agreement; while a
        peer is suspected that agreement cannot be reached (COMMU's
        lock counters stay raised, ORDUP's order stream may be ahead
        elsewhere), so the honest answer is a typed ``UNAVAILABLE``
        within a bounded time — not a silent hang until the query
        timeout.  The guard also trips for queries already in flight
        when the partition starts.
        """
        if self._catching_up:
            raise Unavailable(
                "epsilon=0 query refused: replica is installing a peer"
                " snapshot"
            )
        if self.degraded():
            raise Unavailable(
                "epsilon=0 query refused: peers %s suspected"
                % ",".join(self.suspected_peers())
            )
        query_task = asyncio.ensure_future(
            self.engine.query(keys, spec, timeout=self.query_timeout)
        )
        watcher = asyncio.ensure_future(self._until_degraded())
        try:
            done, _ = await asyncio.wait(
                {query_task, watcher},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for task in (query_task, watcher):
                if not task.done():
                    task.cancel()
        if query_task in done:
            watcher.cancel()
            return query_task.result()  # raises QueryTimeout if it lost
        raise Unavailable(
            "epsilon=0 query aborted: peers %s became unreachable"
            % ",".join(self.suspected_peers())
        )

    async def _until_degraded(self) -> None:
        """Resolve when the server enters degraded mode."""
        while not self.degraded():
            await asyncio.sleep(self.heartbeat_interval / 2)
