"""Asyncio TCP replica server: one site of a live replicated system.

A :class:`ReplicaServer` hosts a site's store and divergence-control
engine (:mod:`repro.live.engine`) and speaks the length-prefixed JSON
protocol (:mod:`repro.live.protocol`) on a single listening socket,
serving two kinds of connections:

* **clients** submit epsilon-transactions — ``update`` and ``query``
  verbs plus introspection (``values``, ``stats``, ``ping``);
* **peers** deliver update MSets over per-channel durable queues and
  receive acknowledgements.

Durability contract (the paper's stable queues, live): an update ET is
acknowledged to its client only after its MSet has been appended to the
site's local durable log *and* every outbound channel log.  A replica
killed and restarted replays its inbound logs through the engine and
resumes its outbound channels, so acknowledged updates are never lost
and peers' retries are deduplicated by channel sequence number.

Propagation hot path (batched + pipelined): each peer channel drains
its backlog into multi-MSet ``mset-batch`` frames (up to ``batch_size``
MSets each, written as one buffered burst) and keeps up to ``window``
batches in flight instead of stop-and-waiting on each acknowledgement.
Acks are *cumulative* — ``ack.seq`` covers every channel sequence
number ``<= seq`` — so one reply retires a whole window and the
outbox truncates in one step.  The receive side records a batch with
one group-commit append (single write + fsync) and applies it under
one engine-lock acquisition; backpressure is structural: a receiver
does not read the next frame from a connection until the current
batch is durable and applied, so a fast sender fills TCP flow control
(bounded by ``window`` batches) instead of the receiver's memory.

Failure detection and graceful degradation: channel loops double as a
heartbeat path — any acknowledgement or heartbeat reply marks the peer
*alive*; a peer silent for longer than ``suspect_after`` seconds is
*suspected*, the server enters **degraded mode**, and ``epsilon = 0``
queries fail fast with a typed :class:`Unavailable` error instead of
blocking until their timeout.  Epsilon-bounded queries keep answering
throughout (the paper's availability claim), with their inconsistency
accounting intact.  Peer health, per-peer staleness, and outbound
backlog are exposed via the ``stats`` verb.

Fault injection (:mod:`repro.live.faults`) plugs into the channel
loops: an installed :class:`~repro.live.faults.FaultPlan` can drop,
delay, duplicate, and reorder outbound peer frames or sever directed
links entirely, without touching the wire format.
"""

from __future__ import annotations

import asyncio
import json
import logging
import pathlib
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import is_write
from ..obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    Registry,
)
from ..obs.trace import TraceRecorder
from ..replica.mset import MSet, MSetKind
from .durable_queue import DurableInbox, DurableOutbox
from .engine import LiveEngine, QueryTimeout, make_engine
from .faults import FaultPlan
from .protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_batch_frame,
    decode_mset,
    decode_ops,
    decode_spec,
    encode_batch_frame,
    encode_mset,
    read_frame,
    write_frame,
    write_frames,
)

__all__ = ["ReplicaServer", "Unavailable", "LOCAL_CHANNEL"]

logger = logging.getLogger(__name__)

#: inbox channel name for the site's own updates.
LOCAL_CHANNEL = "_local"


class Unavailable(RuntimeError):
    """A request that needs full replica agreement cannot be served
    because one or more peers are unreachable (degraded mode).

    Carried to clients as error code ``UNAVAILABLE`` so they can
    distinguish honest refusal from transient failures and retry
    elsewhere or relax their epsilon budget.
    """

    code = "UNAVAILABLE"


class ReplicaServer:
    """One live replica site serving ESR protocols over TCP."""

    def __init__(
        self,
        name: str,
        peers: Sequence[str],
        data_dir: pathlib.Path,
        method: str = "commu",
        fsync: bool = False,
        retry_base: float = 0.05,
        retry_max: float = 1.0,
        query_timeout: float = 30.0,
        commit_timeout: float = 30.0,
        heartbeat_interval: float = 0.25,
        suspect_after: float = 0.75,
        ack_timeout: float = 2.0,
        batch_size: int = 32,
        window: int = 4,
        fsync_interval: float = 0.0,
        faults: Optional[FaultPlan] = None,
        observability: bool = True,
        registry: Optional[Registry] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.name = name
        self.peer_names = tuple(sorted(p for p in peers if p != name))
        self.data_dir = pathlib.Path(data_dir)
        self.method = method
        self.fsync = fsync
        #: max MSets coalesced into one mset-batch frame.
        self.batch_size = max(1, int(batch_size))
        #: max batch frames in flight per channel before waiting on acks.
        self.window = max(1, int(window))
        #: min seconds between fsyncs on each durable log (0 = every
        #: group append) — only meaningful with ``fsync=True``.
        self.fsync_interval = fsync_interval
        self.retry_base = retry_base
        self.retry_max = retry_max
        self.query_timeout = query_timeout
        self.commit_timeout = commit_timeout
        self.heartbeat_interval = heartbeat_interval
        self.suspect_after = suspect_after
        self.ack_timeout = ack_timeout
        self.faults = faults
        #: one metrics registry + trace recorder per replica.  The
        #: registry takes the live runtime's single lock; ``site`` is
        #: stamped on every sample so scrapes across a cluster merge
        #: cleanly.  ``observability=False`` swaps in no-op instruments
        #: (the benchmark's metrics-off baseline).
        if registry is not None:
            self.registry = registry
        elif observability:
            self.registry = Registry(
                threadsafe=True, const_labels={"site": name}
            )
        else:
            self.registry = NULL_REGISTRY
        if trace is not None:
            self.trace = trace
        else:
            self.trace = TraceRecorder(site=name, enabled=observability)
        self.engine: LiveEngine = make_engine(method, name, self.peer_names)
        self.engine.bind_observability(self.registry, self.trace)
        self._init_instruments()
        #: the site hosting the central order server (ORDUP).
        self.order_site = sorted((name,) + self.peer_names)[0]
        self.peer_addrs: Dict[str, Tuple[str, int]] = {}
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._running = False
        self.outboxes: Dict[str, DurableOutbox] = {}
        self.inboxes: Dict[str, DurableInbox] = {}
        self._outbox_events: Dict[str, asyncio.Event] = {}
        self._channel_tasks: List[asyncio.Task] = []
        self._conn_tasks: Set[asyncio.Task] = set()
        #: peer -> monotonic instant of last evidence it is alive.
        self.peer_last_seen: Dict[str, float] = {}
        #: peer -> consecutive channel connect/send failures.
        self.channel_failures: Dict[str, int] = {}
        #: peer -> rolling batch-acknowledgement latencies (seconds).
        self._ack_latencies: Dict[str, Deque[float]] = {}
        #: peer -> total MSets cumulatively acknowledged since boot.
        self.acked_msets: Dict[str, int] = {}
        #: notified whenever the drain condition may have changed; the
        #: ``settle`` verb waits here instead of clients busy-polling.
        self._drain_cond = asyncio.Condition()
        #: (peer, channel seq) -> local update tid, for ack tracking.
        self._seq_tid: Dict[Tuple[str, int], Any] = {}
        #: local update tid -> peers whose durable ack is outstanding.
        self._unacked: Dict[Any, Set[str]] = {}
        #: local update tid -> written keys (lock-counter release).
        self._local_keys: Dict[Any, Tuple[str, ...]] = {}
        #: tid -> future resolved when the MSet applies locally (ORDUP).
        self._apply_futures: Dict[Any, asyncio.Future] = {}
        #: tid -> future resolved when all peers acked (sync commit).
        self._full_ack_futures: Dict[Any, asyncio.Future] = {}
        self._order_conn: Optional[
            Tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = None
        self._order_lock = asyncio.Lock()
        self._order_counter = 0
        self._order_path = self.data_dir / "order.json"
        self._monitor_task: Optional[asyncio.Task] = None
        #: last degraded() value the monitor observed (gauge flips).
        self._last_degraded = False

    def _init_instruments(self) -> None:
        """Register this replica's metric families (see OBSERVABILITY.md)."""
        reg = self.registry
        self.m_channel_backlog = reg.gauge(
            "channel_backlog",
            "unacknowledged MSets queued on one outbound peer channel",
            labels=("peer",),
        )
        self.m_peer_staleness = reg.gauge(
            "peer_staleness_seconds",
            "seconds since the last evidence a peer is alive",
            labels=("peer",),
        )
        self.m_peer_alive = reg.gauge(
            "peer_alive",
            "1 while the peer passes the heartbeat deadline, else 0",
            labels=("peer",),
        )
        self.m_acked_msets = reg.counter(
            "channel_acked_msets_total",
            "MSets cumulatively acknowledged by one peer since boot",
            labels=("peer",),
        )
        self.m_ack_latency = reg.histogram(
            "ack_latency_seconds",
            "batch send-to-cumulative-ack latency per peer channel",
            labels=("peer",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.m_batch_msets = reg.histogram(
            "batch_msets",
            "MSets coalesced into each outbound propagation frame",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self.m_channel_errors = reg.counter(
            "channel_errors_total",
            "peer channel sessions ended by a transport/protocol error",
            labels=("peer",),
        )
        self.m_frames_dropped = reg.counter(
            "frames_dropped_total",
            "inbound frames dropped instead of processed",
            labels=("reason",),
        )
        self.m_degraded = reg.gauge(
            "degraded",
            "1 while any peer is suspected (degraded mode), else 0",
        )
        self.m_degraded_transitions = reg.counter(
            "degraded_transitions_total",
            "times this replica entered or left degraded mode",
        )
        self.m_unacked = reg.gauge(
            "unacked_updates",
            "local updates whose peer acknowledgements are outstanding",
        )
        self.m_log_fsync = reg.counter(
            "log_fsync_total",
            "fsyncs performed on one durable channel log",
            labels=("log",),
        )
        self.m_log_fsync_seconds = reg.counter(
            "log_fsync_seconds_total",
            "cumulative fsync latency on one durable channel log",
            labels=("log",),
        )
        self.m_log_bytes = reg.counter(
            "log_bytes_total",
            "bytes appended to one durable channel log",
            labels=("log",),
        )
        self.m_requests = reg.counter(
            "requests_total",
            "client requests served, by verb and outcome",
            labels=("verb", "outcome"),
        )

    # -- lifecycle -----------------------------------------------------------

    async def bind(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Open logs, recover state, and start listening.

        Returns the bound port (useful with ``port=0``).  Channels to
        peers start separately (:meth:`start_channels`) once peer
        addresses are known.
        """
        self.data_dir.mkdir(parents=True, exist_ok=True)
        for peer in self.peer_names:
            self.outboxes[peer] = DurableOutbox(
                self.data_dir / "outbox" / ("%s.log" % peer),
                self.fsync,
                self.fsync_interval,
            )
            self.inboxes[peer] = DurableInbox(
                self.data_dir / "inbox" / ("%s.log" % peer),
                self.fsync,
                self.fsync_interval,
            )
        self.inboxes[LOCAL_CHANNEL] = DurableInbox(
            self.data_dir / "inbox" / ("%s.log" % LOCAL_CHANNEL),
            self.fsync,
            self.fsync_interval,
        )
        if self._order_path.exists():
            try:
                self._order_counter = int(
                    json.loads(self._order_path.read_text())["next"]
                )
            except (ValueError, KeyError, json.JSONDecodeError):
                self._order_counter = 0
        await self._recover()
        self._running = True
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )
        self.host = host
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _recover(self) -> None:
        """Replay durable logs through the engine after a restart."""
        for src, inbox in sorted(self.inboxes.items()):
            for _seq, payload in inbox.replay():
                mset = decode_mset(payload["mset"])
                await self.engine.accept(mset, local=(src == LOCAL_CHANNEL))
        # Rebuild ack tracking from the outbound backlogs.
        acked_local: Set[Any] = set()
        keys_of: Dict[Any, Tuple[str, ...]] = {}
        for _seq, payload in self.inboxes[LOCAL_CHANNEL].replay():
            tid = payload["mset"]["tid"]
            acked_local.add(tid)
            keys_of[tid] = tuple(
                {op["key"] for op in payload["mset"]["ops"]}
            )
        for peer, outbox in self.outboxes.items():
            for seq, payload in outbox.pending():
                tid = payload["mset"]["tid"]
                self._seq_tid[(peer, seq)] = tid
                self._unacked.setdefault(tid, set()).add(peer)
                self._local_keys[tid] = keys_of.get(
                    tid,
                    tuple({op["key"] for op in payload["mset"]["ops"]}),
                )
                acked_local.discard(tid)
        # Local updates already acked by every peer before the crash:
        # release their lock-counters (replay re-raised them).
        for tid in acked_local:
            await self.engine.fully_acked(tid, keys_of.get(tid, ()))

    def set_peers(self, addrs: Dict[str, Tuple[str, int]]) -> None:
        """Install (or update) peer addresses for the channel loops."""
        for peer, addr in addrs.items():
            if peer != self.name:
                self.peer_addrs[peer] = tuple(addr)
        self._order_conn = None  # re-resolve on next order request

    def start_channels(self) -> None:
        """Launch one durable sender loop per peer channel."""
        if self._channel_tasks:
            return
        now = self.engine.clock()
        for peer in self.peer_names:
            # Grace period: a freshly booted cluster is not "degraded"
            # before the first heartbeat round had a chance to land.
            self.peer_last_seen.setdefault(peer, now)
            self._outbox_events[peer] = asyncio.Event()
            self._outbox_events[peer].set()
            task = asyncio.ensure_future(self._channel_loop(peer))
            task.add_done_callback(self._note_task_crash)
            self._channel_tasks.append(task)
        if self._monitor_task is None:
            self._monitor_task = asyncio.ensure_future(
                self._degraded_monitor()
            )

    async def stop(self) -> None:
        """Stop serving.  Durable state is already on disk (the
        stable queues write through), so stop doubles as a crash."""
        self._running = False
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (OSError, ConnectionError) as exc:
                logger.debug(
                    "%s: listener close raised %r", self.name, exc
                )
            self._server = None
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            self._channel_tasks.append(self._monitor_task)
            self._monitor_task = None
        for task in self._channel_tasks + list(self._conn_tasks):
            task.cancel()
        for task in self._channel_tasks + list(self._conn_tasks):
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception as exc:
                # A task that died with a real error before the cancel
                # landed: teardown proceeds, but the error is counted
                # and logged instead of silently eaten.
                self.m_frames_dropped.labels(reason="stop_error").inc()
                logger.debug(
                    "%s: task %r raised during stop: %r",
                    self.name, task, exc,
                )
        self._channel_tasks = []
        self._conn_tasks.clear()
        if self._order_conn is not None:
            self._order_conn[1].close()
            self._order_conn = None
        for box in list(self.outboxes.values()) + list(self.inboxes.values()):
            box.close()
        for fut in list(self._apply_futures.values()) + list(
            self._full_ack_futures.values()
        ):
            if not fut.done():
                fut.cancel()
        self._apply_futures.clear()
        self._full_ack_futures.clear()

    def _note_task_crash(self, task: asyncio.Task) -> None:
        """A long-lived task died of an *unexpected* error: make it
        loud (counted + warned) instead of silently unretrieved."""
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.m_frames_dropped.labels(reason="task_crash").inc()
            logger.warning(
                "%s: background task crashed: %r", self.name, exc
            )

    # -- peer health ---------------------------------------------------------

    def _note_peer_alive(self, peer: str) -> None:
        if peer in self.outboxes or peer in self.inboxes:
            self.peer_last_seen[peer] = self.engine.clock()
            self.channel_failures[peer] = 0

    def peer_alive(self, peer: str) -> bool:
        """True while we have recent evidence the peer is reachable."""
        seen = self.peer_last_seen.get(peer)
        if seen is None:
            return False
        return self.engine.clock() - seen < self.suspect_after

    def suspected_peers(self) -> Tuple[str, ...]:
        """Peers currently failing the heartbeat deadline."""
        return tuple(
            p for p in self.peer_names if not self.peer_alive(p)
        )

    def degraded(self) -> bool:
        """True when any peer is suspected: full agreement is off the
        table, only epsilon-bounded service remains."""
        return bool(self.suspected_peers())

    async def _degraded_monitor(self) -> None:
        """Watch the degraded predicate and publish its transitions as
        gauge flips plus trace events — an operator watching the
        ``degraded`` gauge sees exactly when partial service began and
        ended, not just the current instant."""
        while self._running:
            self._check_degraded_transition()
            await asyncio.sleep(self.heartbeat_interval / 2)

    def _check_degraded_transition(self) -> None:
        now_degraded = self.degraded()
        if now_degraded != self._last_degraded:
            self._last_degraded = now_degraded
            self.m_degraded.set(1 if now_degraded else 0)
            self.m_degraded_transitions.inc()
            self.trace.event(
                "degraded",
                value=1 if now_degraded else 0,
                suspected=list(self.suspected_peers()),
            )
            logger.debug(
                "%s: degraded -> %s (suspected: %s)",
                self.name, now_degraded,
                ",".join(self.suspected_peers()) or "-",
            )

    # -- channel sender loops ------------------------------------------------

    def _kick_channels(self) -> None:
        for event in self._outbox_events.values():
            event.set()

    def _link_severed(self, dst: str) -> bool:
        return self.faults is not None and self.faults.is_severed(
            self.name, dst
        )

    async def _channel_loop(self, peer: str) -> None:
        """Persistently (re)connect one peer channel and run a
        pipelined delivery session over each connection."""
        backoff = self.retry_base
        while self._running:
            addr = self.peer_addrs.get(peer)
            if addr is None or self._link_severed(peer):
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max)
                continue
            writer = None
            try:
                reader, writer = await asyncio.open_connection(*addr)
                await write_frame(
                    writer, {"type": "peer-hello", "src": self.name}
                )
                backoff = self.retry_base
                await self._channel_session(peer, reader, writer)
            except (
                OSError,
                ConnectionError,
                asyncio.TimeoutError,
                ProtocolError,
            ) as exc:
                self.channel_failures[peer] = (
                    self.channel_failures.get(peer, 0) + 1
                )
                self.m_channel_errors.labels(peer=peer).inc()
                logger.debug(
                    "%s: channel to %s failed (%s), retrying in %.3fs",
                    self.name, peer, exc, backoff,
                )
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max)
            finally:
                if writer is not None:
                    writer.close()

    async def _channel_session(
        self,
        peer: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One connected session: a windowed batch sender pipelined
        against a cumulative-ack reader.

        ``state`` is shared between the two halves: ``sent_hi`` is the
        highest channel seq handed to this connection, ``inflight`` the
        (last_seq, sent_at, n_msets) record of each un-retired batch.
        """
        state = {
            "sent_hi": self.outboxes[peer].frontier,
            "inflight": deque(),
        }
        sender = asyncio.ensure_future(
            self._channel_sender(peer, writer, state)
        )
        ack_reader = asyncio.ensure_future(
            self._channel_ack_reader(peer, reader, state)
        )
        try:
            done, _ = await asyncio.wait(
                {sender, ack_reader}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (sender, ack_reader):
                if not task.done():
                    task.cancel()
            for task in (sender, ack_reader):
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                except (
                    OSError,
                    ConnectionError,
                    asyncio.TimeoutError,
                    ProtocolError,
                ) as exc:
                    # The losing half died of the same connection —
                    # expected; the winner's error (below) is the one
                    # that drives the retry.
                    logger.debug(
                        "%s: channel %s teardown raised %r",
                        self.name, peer, exc,
                    )
        for task in done:
            exc = task.exception()
            if exc is not None:
                raise exc

    async def _channel_sender(
        self, peer: str, writer: asyncio.StreamWriter, state: Dict[str, Any]
    ) -> None:
        """Drain the outbox as batch frames, keeping up to ``window``
        batches in flight; heartbeat while idle.

        Under fault injection frames are dropped, delayed, duplicated,
        or reordered; whatever stays unacknowledged past ``ack_timeout``
        is simply re-sent from the cumulative-ack frontier — the
        durable queue's at-least-once discipline does the recovery, no
        special cases."""
        outbox = self.outboxes[peer]
        event = self._outbox_events[peer]
        inflight: Deque[Tuple[int, float, int]] = state["inflight"]
        while self._running:
            if self._link_severed(peer):
                raise ConnectionResetError(
                    "link %s->%s severed" % (self.name, peer)
                )
            # Clear-before-check: an ack or new append landing during
            # the scan re-sets the event, so the wait below returns
            # immediately instead of stalling a heartbeat interval.
            event.clear()
            now = self.engine.clock()
            if inflight and now - inflight[0][1] > self.ack_timeout:
                # Stalled pipeline (dropped/reordered frames or a dead
                # peer): fall back to the durable frontier and re-send.
                inflight.clear()
                state["sent_hi"] = outbox.frontier
                await asyncio.sleep(self.retry_base)
                continue
            fresh = [
                (seq, payload)
                for seq, payload in outbox.pending()
                if seq > state["sent_hi"]
            ]
            room = self.window - len(inflight)
            if fresh and room > 0:
                await self._send_batches(peer, writer, state, fresh, room)
                continue
            if not inflight and outbox.drained():
                await self._heartbeat_probe(peer, writer)
            timeout = self.heartbeat_interval
            if inflight:
                # Wake in time for the stall deadline of the oldest
                # in-flight batch.
                timeout = min(
                    timeout,
                    max(
                        self.retry_base,
                        self.ack_timeout - (now - inflight[0][1]),
                    ),
                )
            try:
                await asyncio.wait_for(event.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass

    async def _send_batches(
        self,
        peer: str,
        writer: asyncio.StreamWriter,
        state: Dict[str, Any],
        entries: List[Tuple[int, Any]],
        room: int,
    ) -> None:
        """Chunk ``entries`` into at most ``room`` batch frames and
        write them as one buffered burst."""
        if self.faults is not None:
            entries = self.faults.reorder_batch(self.name, peer, entries)
        now = self.engine.clock()
        frames: List[Dict[str, Any]] = []
        for batch in self._plan_batches(entries)[:room]:
            last_seq = max(seq for seq, _ in batch)
            state["sent_hi"] = max(state["sent_hi"], last_seq)
            state["inflight"].append((last_seq, now, len(batch)))
            self.m_batch_msets.observe(len(batch))
            if len(batch) == 1:
                # Single-MSet batches ride the legacy frame so an
                # older peer interoperates without knowing mset-batch.
                seq, payload = batch[0]
                frame = {
                    "type": "mset",
                    "src": self.name,
                    "seq": seq,
                    "mset": payload["mset"],
                }
            else:
                frame = encode_batch_frame(
                    self.name,
                    [(seq, payload["mset"]) for seq, payload in batch],
                )
            copies = 1
            if self.faults is not None:
                fate = self.faults.frame_fate(self.name, peer)
                if fate.delay:
                    # A link delay holds up everything behind it too:
                    # flush what is already queued, then stall.
                    await write_frames(writer, frames)
                    frames = []
                    await asyncio.sleep(fate.delay)
                if fate.drop:
                    continue  # stays inflight; the stall path re-sends
                if fate.duplicate:
                    copies = 2
            frames.extend([frame] * copies)
        await write_frames(writer, frames)

    def _plan_batches(
        self, entries: List[Tuple[int, Any]]
    ) -> List[List[Tuple[int, Any]]]:
        """Split pending entries into frames of at most ``batch_size``
        MSets, cutting early when a frame approaches MAX_FRAME."""
        batches: List[List[Tuple[int, Any]]] = []
        current: List[Tuple[int, Any]] = []
        current_bytes = 0
        budget = MAX_FRAME // 2
        for seq, payload in entries:
            size = len(json.dumps(payload, separators=(",", ":")))
            if current and (
                len(current) >= self.batch_size
                or current_bytes + size > budget
            ):
                batches.append(current)
                current = []
                current_bytes = 0
            current.append((seq, payload))
            current_bytes += size
        if current:
            batches.append(current)
        return batches

    async def _heartbeat_probe(
        self, peer: str, writer: asyncio.StreamWriter
    ) -> None:
        """One idle-channel liveness probe.  The reply (if any) is
        consumed by the ack reader; a lost probe is not an error — the
        peer just stays un-refreshed and ages toward suspicion."""
        if self.faults is not None:
            fate = self.faults.frame_fate(self.name, peer)
            if fate.delay:
                await asyncio.sleep(fate.delay)
            if fate.drop:
                return
        await write_frame(writer, {"type": "hb", "src": self.name})

    async def _channel_ack_reader(
        self, peer: str, reader: asyncio.StreamReader, state: Dict[str, Any]
    ) -> None:
        """Consume cumulative acks (and heartbeat replies) for one
        connection, retiring in-flight batches and freeing the send
        window without ever blocking the sender."""
        event = self._outbox_events[peer]
        inflight: Deque[Tuple[int, float, int]] = state["inflight"]
        while self._running:
            frame = await read_frame(reader)
            if frame is None:
                raise ConnectionResetError("peer closed")
            kind = frame.get("type")
            if kind == "ack":
                self._note_peer_alive(peer)
                seq = int(frame["seq"])
                now = self.engine.clock()
                while inflight and inflight[0][0] <= seq:
                    _, sent_at, count = inflight.popleft()
                    self._record_ack_latency(peer, now - sent_at, count)
                await self._on_peer_ack(peer, seq)
                event.set()  # window freed: wake the sender
            elif kind == "hb-ack":
                self._note_peer_alive(peer)

    def _record_ack_latency(
        self, peer: str, latency: float, n_msets: int
    ) -> None:
        lats = self._ack_latencies.get(peer)
        if lats is None:
            lats = self._ack_latencies[peer] = deque(maxlen=512)
        lats.append(latency)
        self.acked_msets[peer] = self.acked_msets.get(peer, 0) + n_msets
        self.m_ack_latency.labels(peer=peer).observe(latency)
        self.m_acked_msets.labels(peer=peer).set_to(
            self.acked_msets[peer]
        )

    async def _on_peer_ack(self, peer: str, seq: int) -> None:
        """A peer durably holds every channel message ``<= seq``
        (cumulative acknowledgement)."""
        covered = self.outboxes[peer].ack_through(seq)
        for acked_seq in covered:
            tid = self._seq_tid.pop((peer, acked_seq), None)
            if tid is None:
                continue
            waiting = self._unacked.get(tid)
            if waiting is None:
                continue
            waiting.discard(peer)
            if not waiting:
                del self._unacked[tid]
                keys = self._local_keys.pop(tid, ())
                await self.engine.fully_acked(tid, keys)
                self.trace.event("update-ack", tid=tid)
                fut = self._full_ack_futures.pop(tid, None)
                if fut is not None and not fut.done():
                    fut.set_result(True)
        if covered:
            await self._notify_drain()

    # -- connection handling ---------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()

        async def send(obj: Dict[str, Any]) -> None:
            async with write_lock:
                await write_frame(writer, obj)

        try:
            while self._running:
                try:
                    frame = await read_frame(reader)
                except ProtocolError:
                    break
                if frame is None:
                    break
                kind = frame.get("type")
                if kind in ("mset", "mset-batch"):
                    try:
                        await self._on_mset_batch_frame(frame, send)
                    except ProtocolError:
                        break
                elif kind == "request":
                    # Requests may block on divergence control or
                    # commit acknowledgements: serve them concurrently.
                    req_task = asyncio.ensure_future(
                        self._serve_request(frame, send)
                    )
                    self._conn_tasks.add(req_task)
                    req_task.add_done_callback(self._conn_tasks.discard)
                elif kind == "hb":
                    self._note_peer_alive(str(frame.get("src", "")))
                    await send({"type": "hb-ack", "src": self.name})
                elif kind in ("peer-hello", "client-hello"):
                    src = frame.get("src")
                    if src:
                        self._note_peer_alive(str(src))
                    continue
                else:
                    await send(
                        {"type": "error", "error": "unknown frame %r" % kind}
                    )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    async def _on_mset_batch_frame(self, frame: Dict[str, Any], send) -> None:
        """Receive one ``mset`` or ``mset-batch`` frame from a peer.

        The contiguous fresh prefix of the batch is durably recorded
        with one group-commit append and applied under one engine-lock
        acquisition, then acknowledged *cumulatively* with the inbox
        frontier — covering this batch, any duplicates, and anything
        earlier the sender may not know was acked.  Because the frame
        is processed inline (the connection reads no further frames
        until this one is durable and applied), a fast sender fills
        TCP flow control rather than the receiver's memory.
        """
        src = frame.get("src", "")
        inbox = self.inboxes.get(src)
        if inbox is None:
            # Unknown peer: the drop is counted and logged, not silent.
            self.m_frames_dropped.labels(reason="unknown_peer").inc()
            logger.debug(
                "%s: dropped mset frame from unknown peer %r",
                self.name, src,
            )
            return
        self._note_peer_alive(src)
        entries = decode_batch_frame(frame)
        fresh: List[Tuple[int, Any]] = []
        expected = inbox.frontier + 1
        for seq, encoded in entries:
            if seq < expected:
                continue  # duplicate: the cumulative ack re-covers it
            if seq > expected:
                break  # gap (reordered/dropped frame): ack the frontier
            fresh.append((seq, {"mset": encoded}))
            expected += 1
        if fresh:
            inbox.record_many(fresh)
            msets = [decode_mset(payload["mset"]) for _, payload in fresh]
            applied = await self.engine.accept_batch(msets, local=False)
            self._resolve_applied(applied)
            await self._notify_drain()
        # The cumulative ack is a durability claim over everything
        # <= frontier: the sender will truncate its outbox on receipt.
        # Records written inside the fsync_interval window must be
        # fsynced before that claim leaves this process, or a crash
        # here would lose them from both ends of the channel.
        inbox.sync()
        await send({"type": "ack", "seq": inbox.frontier})

    def _resolve_applied(self, applied: List[MSet]) -> None:
        """Applying remote MSets can release held-back local ones."""
        for mset in applied:
            fut = self._apply_futures.pop(mset.tid, None)
            if fut is not None and not fut.done():
                fut.set_result(True)

    # -- drain / settle --------------------------------------------------------

    def _drained(self) -> bool:
        """True when this site has nothing left to propagate or apply:
        every outbound channel is empty, the engine holds no buffered
        or locked work, and no local update awaits a peer ack."""
        return (
            all(box.drained() for box in self.outboxes.values())
            and self.engine.quiescent()
            and not self._unacked
        )

    async def _notify_drain(self) -> None:
        """Wake any ``settle`` waiters; called whenever acks, applies,
        or local commits may have changed the drain condition."""
        async with self._drain_cond:
            self._drain_cond.notify_all()

    # -- request serving -------------------------------------------------------

    async def _serve_request(self, frame: Dict[str, Any], send) -> None:
        rid = frame.get("id")
        verb = frame.get("verb")
        try:
            handler = {
                "update": self._handle_update,
                "query": self._handle_query,
                "values": self._handle_values,
                "stats": self._handle_stats,
                "settle": self._handle_settle,
                "order": self._handle_order,
                "ping": self._handle_ping,
                "metrics": self._handle_metrics,
            }.get(verb)
            if handler is None:
                raise ValueError("unknown verb %r" % verb)
            body = await handler(frame)
            self.m_requests.labels(verb=str(verb), outcome="ok").inc()
            await send({"type": "response", "id": rid, "ok": True, **body})
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # surfaced to the client, not fatal
            self.m_requests.labels(verb=str(verb), outcome="error").inc()
            try:
                await send(
                    {
                        "type": "response",
                        "id": rid,
                        "ok": False,
                        "error": str(exc),
                        "code": getattr(exc, "code", None)
                        or type(exc).__name__,
                    }
                )
            except (ConnectionError, OSError):
                pass

    async def _handle_ping(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"site": self.name, "method": self.engine.method_name}

    def _refresh_gauges(self) -> None:
        """Bring sampled (pull-model) series up to date for a scrape:
        backlog/staleness/liveness per peer, degraded state, unacked
        updates, and the durable logs' fsync/byte counters."""
        now = self.engine.clock()
        for peer in self.peer_names:
            outbox = self.outboxes.get(peer)
            if outbox is not None:
                self.m_channel_backlog.labels(peer=peer).set(
                    outbox.backlog
                )
            seen = self.peer_last_seen.get(peer)
            if seen is not None:
                self.m_peer_staleness.labels(peer=peer).set(now - seen)
            self.m_peer_alive.labels(peer=peer).set(
                1 if self.peer_alive(peer) else 0
            )
        self._check_degraded_transition()
        self.m_degraded.set(1 if self.degraded() else 0)
        self.m_unacked.set(len(self._unacked))
        logs = [
            ("outbox/%s" % peer, box)
            for peer, box in self.outboxes.items()
        ] + [
            ("inbox/%s" % src, box)
            for src, box in self.inboxes.items()
        ]
        for label, box in logs:
            self.m_log_fsync.labels(log=label).set_to(box.fsync_count)
            self.m_log_fsync_seconds.labels(log=label).set_to(
                box.fsync_seconds
            )
            self.m_log_bytes.labels(log=label).set_to(box.bytes_written)

    async def _handle_metrics(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Expose the registry: Prometheus text plus a JSON mirror.

        One verb serves both formats so a scrape is a single request;
        sampled gauges are refreshed first, so every scrape is a
        consistent point-in-time snapshot.
        """
        self._refresh_gauges()
        return {
            "site": self.name,
            "prometheus": self.registry.render_prometheus(),
            "metrics": self.registry.to_dict(),
            "trace_recorded": self.trace.recorded,
            "trace_dropped": self.trace.dropped,
        }

    async def _handle_values(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"values": self.engine.snapshot()}

    async def _handle_stats(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        now = self.engine.clock()
        peers: Dict[str, Dict[str, Any]] = {}
        for peer in self.peer_names:
            seen = self.peer_last_seen.get(peer)
            lats = self._ack_latencies.get(peer)
            peers[peer] = {
                "alive": self.peer_alive(peer),
                "staleness": (
                    None if seen is None else round(now - seen, 4)
                ),
                "backlog": self.outboxes[peer].backlog,
                "failures": self.channel_failures.get(peer, 0),
                "ack_high_water": self.outboxes[peer].frontier,
                "acked_msets": self.acked_msets.get(peer, 0),
                "ack_ms": (
                    round(sum(lats) / len(lats) * 1000.0, 3)
                    if lats
                    else None
                ),
            }
        stats = self.engine.stats()
        stats.update(
            site=self.name,
            peers=peers,
            degraded=self.degraded(),
            outbound_backlog={
                p: box.backlog for p, box in self.outboxes.items()
            },
            ack_high_water={
                p: box.frontier for p, box in self.outboxes.items()
            },
            inbox_frontier={
                src: box.frontier for src, box in self.inboxes.items()
            },
            unacked_updates=len(self._unacked),
            drained=self._drained(),
        )
        return {"stats": stats}

    async def _handle_settle(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Block until this site is drained (or ``wait`` seconds pass).

        This is the poll-free replacement for clients hammering the
        ``stats`` verb: waiters sleep on the drain condition and are
        woken by the ack/apply/commit paths, with a short safety
        re-check cap in case a wake-up is missed across a restart.
        """
        timeout = float(frame.get("wait", 30.0))
        deadline = self.engine.clock() + timeout
        waited = False
        async with self._drain_cond:
            while not self._drained():
                waited = True
                remaining = deadline - self.engine.clock()
                if remaining <= 0:
                    raise TimeoutError(
                        "settle timed out after %.1fs: backlog %r"
                        % (
                            timeout,
                            {
                                p: box.backlog
                                for p, box in self.outboxes.items()
                            },
                        )
                    )
                try:
                    await asyncio.wait_for(
                        self._drain_cond.wait(), min(remaining, 0.25)
                    )
                except asyncio.TimeoutError:
                    pass
        self.trace.event("drain", waited=waited)
        return {
            "drained": True,
            "waited": waited,
            "ack_high_water": {
                p: self.outboxes[p].frontier for p in self.peer_names
            },
        }

    async def _handle_order(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self.name != self.order_site:
            raise ValueError(
                "order tokens are issued by %s" % self.order_site
            )
        return {"order": list(self._grant_order())}

    def _grant_order(self) -> Tuple[int, int]:
        """Issue the next gap-free global order token (durable)."""
        self._order_counter += 1
        self._order_path.write_text(
            json.dumps({"next": self._order_counter})
        )
        return (self._order_counter, 0)

    async def _acquire_order(self) -> Tuple[int, int]:
        """Get a token from the cluster's order server, with retry."""
        if self.name == self.order_site:
            return self._grant_order()
        backoff = self.retry_base
        while self._running:
            try:
                if self._link_severed(self.order_site):
                    raise ConnectionError(
                        "link to order site %s severed" % self.order_site
                    )
                async with self._order_lock:
                    if self._order_conn is None:
                        addr = self.peer_addrs.get(self.order_site)
                        if addr is None:
                            raise ConnectionError("no address for order site")
                        self._order_conn = await asyncio.open_connection(
                            *addr
                        )
                    reader, writer = self._order_conn
                    await write_frame(
                        writer,
                        {"type": "request", "id": 0, "verb": "order"},
                    )
                    reply = await asyncio.wait_for(
                        read_frame(reader), timeout=5.0
                    )
                if reply is None or not reply.get("ok"):
                    raise ConnectionError("order request failed")
                order = reply["order"]
                self._note_peer_alive(self.order_site)
                return (int(order[0]), int(order[1]))
            except (OSError, ConnectionError, asyncio.TimeoutError):
                if self._order_conn is not None:
                    self._order_conn[1].close()
                    self._order_conn = None
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max)
        raise ConnectionError("server stopping")

    async def _handle_update(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        ops = decode_ops(frame.get("ops", ()))
        if not ops:
            raise ValueError("update without operations")
        if not any(is_write(op) for op in ops):
            raise ValueError("update ET must contain a write (use query)")
        self.engine.validate_update(ops)
        writes = tuple(op for op in ops if is_write(op))
        read_keys = [op.key for op in ops if op.is_read_op]

        order = None
        if self.engine.needs_order:
            order = await self._acquire_order()

        tid_seq = self.inboxes[LOCAL_CHANNEL].frontier + 1
        tid = "%s:%d" % (self.name, tid_seq)
        info = (("reads", read_keys),) if read_keys else ()
        mset = MSet(
            tid,
            MSetKind.UPDATE,
            writes,
            origin=self.name,
            order=order,
            info=info,
        )
        payload = {"mset": encode_mset(mset)}
        self.trace.event(
            "update-submit", tid=tid, keys=list(mset.keys)
        )

        # Durability before acknowledgement: the local log first, then
        # every outbound channel log.  Only then is the update "in the
        # stable queues" in the paper's sense.  ``sync()`` closes the
        # ``fsync_interval`` window — nothing below may be reported
        # committed while its log record is still unsynced.
        self.inboxes[LOCAL_CHANNEL].record(tid_seq, payload)
        self._local_keys[tid] = mset.keys
        if self.peer_names:
            self._unacked[tid] = set(self.peer_names)
            for peer in self.peer_names:
                seq = self.outboxes[peer].append(payload)
                self._seq_tid[(peer, seq)] = tid
        self.inboxes[LOCAL_CHANNEL].sync()
        for peer in self.peer_names:
            self.outboxes[peer].sync()

        loop = asyncio.get_event_loop()
        if self.engine.needs_order:
            self._apply_futures[tid] = loop.create_future()
        if self.engine.sync_commit and self.peer_names:
            self._full_ack_futures[tid] = loop.create_future()

        applied = await self.engine.accept(mset, local=True)
        self._resolve_applied(applied)
        self.trace.event(
            "update-apply", tid=tid, held=(mset not in applied)
        )
        self._kick_channels()

        if not self.peer_names:
            await self.engine.fully_acked(tid, self._local_keys.pop(tid, ()))

        if self.engine.needs_order:
            # Commit once the update executes at its origin in global
            # order (read-modify-report values are evaluated there).
            fut = self._apply_futures.get(tid)
            if fut is not None:
                await asyncio.wait_for(fut, timeout=self.commit_timeout)
        if self.engine.sync_commit and self.peer_names:
            # Synchronous baseline: wait for every peer's durable ack.
            fut = self._full_ack_futures.get(tid)
            if fut is not None:
                await asyncio.wait_for(fut, timeout=self.commit_timeout)
        values = self.engine.pop_read_results(tid)
        await self._notify_drain()
        return {"tid": tid, "values": values}

    async def _handle_query(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        keys = frame.get("keys")
        if not keys or not all(isinstance(k, str) for k in keys):
            raise ValueError("query needs a list of string keys")
        spec = decode_spec(frame.get("spec"))
        if spec.is_strict and self.peer_names:
            outcome = await self._strict_query_guarded(keys, spec)
        else:
            try:
                outcome = await self.engine.query(
                    keys, spec, timeout=self.query_timeout
                )
            except QueryTimeout as exc:
                raise QueryTimeout(str(exc)) from None
        self.engine.note_query_outcome(outcome, spec)
        return {
            "values": outcome.values,
            "inconsistency": outcome.inconsistency,
            "overlap": list(outcome.overlap),
            "waits": outcome.waits,
            "degraded": self.degraded(),
        }

    async def _strict_query_guarded(self, keys, spec):
        """Serve an ``epsilon = 0`` query with degraded-mode fail-fast.

        A strict query must reflect full replica agreement; while a
        peer is suspected that agreement cannot be reached (COMMU's
        lock counters stay raised, ORDUP's order stream may be ahead
        elsewhere), so the honest answer is a typed ``UNAVAILABLE``
        within a bounded time — not a silent hang until the query
        timeout.  The guard also trips for queries already in flight
        when the partition starts.
        """
        if self.degraded():
            raise Unavailable(
                "epsilon=0 query refused: peers %s suspected"
                % ",".join(self.suspected_peers())
            )
        query_task = asyncio.ensure_future(
            self.engine.query(keys, spec, timeout=self.query_timeout)
        )
        watcher = asyncio.ensure_future(self._until_degraded())
        try:
            done, _ = await asyncio.wait(
                {query_task, watcher},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for task in (query_task, watcher):
                if not task.done():
                    task.cancel()
        if query_task in done:
            watcher.cancel()
            return query_task.result()  # raises QueryTimeout if it lost
        raise Unavailable(
            "epsilon=0 query aborted: peers %s became unreachable"
            % ",".join(self.suspected_peers())
        )

    async def _until_degraded(self) -> None:
        """Resolve when the server enters degraded mode."""
        while not self.degraded():
            await asyncio.sleep(self.heartbeat_interval / 2)
