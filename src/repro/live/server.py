"""Asyncio TCP replica server: one site of a live replicated system.

A :class:`ReplicaServer` hosts a site's store and divergence-control
engine (:mod:`repro.live.engine`) and speaks the length-prefixed JSON
protocol (:mod:`repro.live.protocol`) on a single listening socket,
serving two kinds of connections:

* **clients** submit epsilon-transactions — ``update`` and ``query``
  verbs plus introspection (``values``, ``stats``, ``ping``);
* **peers** deliver update MSets over per-channel durable queues and
  receive acknowledgements.

Durability contract (the paper's stable queues, live): an update ET is
acknowledged to its client only after its MSet has been appended to the
site's local durable log *and* every outbound channel log.  A replica
killed and restarted replays its inbound logs through the engine and
resumes its outbound channels, so acknowledged updates are never lost
and peers' retries are deduplicated by channel sequence number.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import is_write
from ..replica.mset import MSet, MSetKind
from .durable_queue import DurableInbox, DurableOutbox
from .engine import LiveEngine, QueryTimeout, make_engine
from .protocol import (
    ProtocolError,
    decode_mset,
    decode_ops,
    decode_spec,
    encode_mset,
    read_frame,
    write_frame,
)

__all__ = ["ReplicaServer", "LOCAL_CHANNEL"]

#: inbox channel name for the site's own updates.
LOCAL_CHANNEL = "_local"


class ReplicaServer:
    """One live replica site serving ESR protocols over TCP."""

    def __init__(
        self,
        name: str,
        peers: Sequence[str],
        data_dir: pathlib.Path,
        method: str = "commu",
        fsync: bool = False,
        retry_base: float = 0.05,
        retry_max: float = 1.0,
        query_timeout: float = 30.0,
        commit_timeout: float = 30.0,
    ) -> None:
        self.name = name
        self.peer_names = tuple(sorted(p for p in peers if p != name))
        self.data_dir = pathlib.Path(data_dir)
        self.method = method
        self.fsync = fsync
        self.retry_base = retry_base
        self.retry_max = retry_max
        self.query_timeout = query_timeout
        self.commit_timeout = commit_timeout
        self.engine: LiveEngine = make_engine(method, name, self.peer_names)
        #: the site hosting the central order server (ORDUP).
        self.order_site = sorted((name,) + self.peer_names)[0]
        self.peer_addrs: Dict[str, Tuple[str, int]] = {}
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._running = False
        self.outboxes: Dict[str, DurableOutbox] = {}
        self.inboxes: Dict[str, DurableInbox] = {}
        self._outbox_events: Dict[str, asyncio.Event] = {}
        self._channel_tasks: List[asyncio.Task] = []
        self._conn_tasks: Set[asyncio.Task] = set()
        #: (peer, channel seq) -> local update tid, for ack tracking.
        self._seq_tid: Dict[Tuple[str, int], Any] = {}
        #: local update tid -> peers whose durable ack is outstanding.
        self._unacked: Dict[Any, Set[str]] = {}
        #: local update tid -> written keys (lock-counter release).
        self._local_keys: Dict[Any, Tuple[str, ...]] = {}
        #: tid -> future resolved when the MSet applies locally (ORDUP).
        self._apply_futures: Dict[Any, asyncio.Future] = {}
        #: tid -> future resolved when all peers acked (sync commit).
        self._full_ack_futures: Dict[Any, asyncio.Future] = {}
        self._order_conn: Optional[
            Tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = None
        self._order_lock = asyncio.Lock()
        self._order_counter = 0
        self._order_path = self.data_dir / "order.json"

    # -- lifecycle -----------------------------------------------------------

    async def bind(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Open logs, recover state, and start listening.

        Returns the bound port (useful with ``port=0``).  Channels to
        peers start separately (:meth:`start_channels`) once peer
        addresses are known.
        """
        self.data_dir.mkdir(parents=True, exist_ok=True)
        for peer in self.peer_names:
            self.outboxes[peer] = DurableOutbox(
                self.data_dir / "outbox" / ("%s.log" % peer), self.fsync
            )
            self.inboxes[peer] = DurableInbox(
                self.data_dir / "inbox" / ("%s.log" % peer), self.fsync
            )
        self.inboxes[LOCAL_CHANNEL] = DurableInbox(
            self.data_dir / "inbox" / ("%s.log" % LOCAL_CHANNEL), self.fsync
        )
        if self._order_path.exists():
            try:
                self._order_counter = int(
                    json.loads(self._order_path.read_text())["next"]
                )
            except (ValueError, KeyError, json.JSONDecodeError):
                self._order_counter = 0
        await self._recover()
        self._running = True
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )
        self.host = host
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _recover(self) -> None:
        """Replay durable logs through the engine after a restart."""
        for src, inbox in sorted(self.inboxes.items()):
            for _seq, payload in inbox.replay():
                mset = decode_mset(payload["mset"])
                await self.engine.accept(mset, local=(src == LOCAL_CHANNEL))
        # Rebuild ack tracking from the outbound backlogs.
        acked_local: Set[Any] = set()
        keys_of: Dict[Any, Tuple[str, ...]] = {}
        for _seq, payload in self.inboxes[LOCAL_CHANNEL].replay():
            tid = payload["mset"]["tid"]
            acked_local.add(tid)
            keys_of[tid] = tuple(
                {op["key"] for op in payload["mset"]["ops"]}
            )
        for peer, outbox in self.outboxes.items():
            for seq, payload in outbox.pending():
                tid = payload["mset"]["tid"]
                self._seq_tid[(peer, seq)] = tid
                self._unacked.setdefault(tid, set()).add(peer)
                self._local_keys[tid] = keys_of.get(
                    tid,
                    tuple({op["key"] for op in payload["mset"]["ops"]}),
                )
                acked_local.discard(tid)
        # Local updates already acked by every peer before the crash:
        # release their lock-counters (replay re-raised them).
        for tid in acked_local:
            await self.engine.fully_acked(tid, keys_of.get(tid, ()))

    def set_peers(self, addrs: Dict[str, Tuple[str, int]]) -> None:
        """Install (or update) peer addresses for the channel loops."""
        for peer, addr in addrs.items():
            if peer != self.name:
                self.peer_addrs[peer] = tuple(addr)
        self._order_conn = None  # re-resolve on next order request

    def start_channels(self) -> None:
        """Launch one durable sender loop per peer channel."""
        if self._channel_tasks:
            return
        for peer in self.peer_names:
            self._outbox_events[peer] = asyncio.Event()
            self._outbox_events[peer].set()
            self._channel_tasks.append(
                asyncio.ensure_future(self._channel_loop(peer))
            )

    async def stop(self) -> None:
        """Stop serving.  Durable state is already on disk (the
        stable queues write through), so stop doubles as a crash."""
        self._running = False
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            self._server = None
        for task in self._channel_tasks + list(self._conn_tasks):
            task.cancel()
        for task in self._channel_tasks + list(self._conn_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._channel_tasks = []
        self._conn_tasks.clear()
        if self._order_conn is not None:
            self._order_conn[1].close()
            self._order_conn = None
        for box in list(self.outboxes.values()) + list(self.inboxes.values()):
            box.close()
        for fut in list(self._apply_futures.values()) + list(
            self._full_ack_futures.values()
        ):
            if not fut.done():
                fut.cancel()
        self._apply_futures.clear()
        self._full_ack_futures.clear()

    # -- channel sender loops ------------------------------------------------

    def _kick_channels(self) -> None:
        for event in self._outbox_events.values():
            event.set()

    async def _channel_loop(self, peer: str) -> None:
        """Persistently retry delivery of this channel's backlog."""
        outbox = self.outboxes[peer]
        event = self._outbox_events[peer]
        backoff = self.retry_base
        while self._running:
            if outbox.drained():
                event.clear()
                try:
                    await asyncio.wait_for(event.wait(), timeout=0.5)
                except asyncio.TimeoutError:
                    pass
                continue
            addr = self.peer_addrs.get(peer)
            if addr is None:
                await asyncio.sleep(backoff)
                continue
            writer = None
            try:
                reader, writer = await asyncio.open_connection(*addr)
                await write_frame(
                    writer, {"type": "peer-hello", "src": self.name}
                )
                backoff = self.retry_base
                while self._running:
                    pending = outbox.pending()
                    if not pending:
                        event.clear()
                        try:
                            await asyncio.wait_for(event.wait(), timeout=0.5)
                        except asyncio.TimeoutError:
                            pass
                        continue
                    for seq, payload in pending:
                        await write_frame(
                            writer,
                            {
                                "type": "mset",
                                "src": self.name,
                                "seq": seq,
                                "mset": payload["mset"],
                            },
                        )
                    for _ in pending:
                        frame = await asyncio.wait_for(
                            read_frame(reader), timeout=5.0
                        )
                        if frame is None:
                            raise ConnectionResetError("peer closed")
                        if frame.get("type") == "ack":
                            await self._on_peer_ack(peer, int(frame["seq"]))
            except (
                OSError,
                ConnectionError,
                asyncio.TimeoutError,
                ProtocolError,
            ):
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max)
            finally:
                if writer is not None:
                    writer.close()

    async def _on_peer_ack(self, peer: str, seq: int) -> None:
        """A peer durably holds channel message ``seq``."""
        self.outboxes[peer].ack(seq)
        tid = self._seq_tid.pop((peer, seq), None)
        if tid is None:
            return
        waiting = self._unacked.get(tid)
        if waiting is None:
            return
        waiting.discard(peer)
        if not waiting:
            del self._unacked[tid]
            keys = self._local_keys.pop(tid, ())
            await self.engine.fully_acked(tid, keys)
            fut = self._full_ack_futures.pop(tid, None)
            if fut is not None and not fut.done():
                fut.set_result(True)

    # -- connection handling ---------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()

        async def send(obj: Dict[str, Any]) -> None:
            async with write_lock:
                await write_frame(writer, obj)

        try:
            while self._running:
                try:
                    frame = await read_frame(reader)
                except ProtocolError:
                    break
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == "mset":
                    await self._on_mset_frame(frame, send)
                elif kind == "request":
                    # Requests may block on divergence control or
                    # commit acknowledgements: serve them concurrently.
                    req_task = asyncio.ensure_future(
                        self._serve_request(frame, send)
                    )
                    self._conn_tasks.add(req_task)
                    req_task.add_done_callback(self._conn_tasks.discard)
                elif kind in ("peer-hello", "client-hello"):
                    continue
                else:
                    await send(
                        {"type": "error", "error": "unknown frame %r" % kind}
                    )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    async def _on_mset_frame(self, frame: Dict[str, Any], send) -> None:
        src = frame.get("src", "")
        seq = int(frame.get("seq", 0))
        inbox = self.inboxes.get(src)
        if inbox is None:
            return  # unknown peer: drop silently
        if inbox.duplicate(seq):
            await send({"type": "ack", "seq": seq})
            return
        if not inbox.record(seq, {"mset": frame["mset"]}):
            return  # out-of-order gap: no ack, the sender re-sends
        mset = decode_mset(frame["mset"])
        applied = await self.engine.accept(mset, local=False)
        self._resolve_applied(applied)
        await send({"type": "ack", "seq": seq})

    def _resolve_applied(self, applied: List[MSet]) -> None:
        """Applying remote MSets can release held-back local ones."""
        for mset in applied:
            fut = self._apply_futures.pop(mset.tid, None)
            if fut is not None and not fut.done():
                fut.set_result(True)

    # -- request serving -------------------------------------------------------

    async def _serve_request(self, frame: Dict[str, Any], send) -> None:
        rid = frame.get("id")
        verb = frame.get("verb")
        try:
            handler = {
                "update": self._handle_update,
                "query": self._handle_query,
                "values": self._handle_values,
                "stats": self._handle_stats,
                "order": self._handle_order,
                "ping": self._handle_ping,
            }.get(verb)
            if handler is None:
                raise ValueError("unknown verb %r" % verb)
            body = await handler(frame)
            await send({"type": "response", "id": rid, "ok": True, **body})
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # surfaced to the client, not fatal
            try:
                await send(
                    {
                        "type": "response",
                        "id": rid,
                        "ok": False,
                        "error": str(exc),
                        "code": type(exc).__name__,
                    }
                )
            except (ConnectionError, OSError):
                pass

    async def _handle_ping(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"site": self.name, "method": self.engine.method_name}

    async def _handle_values(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"values": self.engine.snapshot()}

    async def _handle_stats(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        backlog = {p: box.backlog for p, box in self.outboxes.items()}
        stats = self.engine.stats()
        stats.update(
            site=self.name,
            outbound_backlog=backlog,
            unacked_updates=len(self._unacked),
            drained=(
                all(box.drained() for box in self.outboxes.values())
                and self.engine.quiescent()
                and not self._unacked
            ),
        )
        return {"stats": stats}

    async def _handle_order(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self.name != self.order_site:
            raise ValueError(
                "order tokens are issued by %s" % self.order_site
            )
        return {"order": list(self._grant_order())}

    def _grant_order(self) -> Tuple[int, int]:
        """Issue the next gap-free global order token (durable)."""
        self._order_counter += 1
        self._order_path.write_text(
            json.dumps({"next": self._order_counter})
        )
        return (self._order_counter, 0)

    async def _acquire_order(self) -> Tuple[int, int]:
        """Get a token from the cluster's order server, with retry."""
        if self.name == self.order_site:
            return self._grant_order()
        backoff = self.retry_base
        while self._running:
            try:
                async with self._order_lock:
                    if self._order_conn is None:
                        addr = self.peer_addrs.get(self.order_site)
                        if addr is None:
                            raise ConnectionError("no address for order site")
                        self._order_conn = await asyncio.open_connection(
                            *addr
                        )
                    reader, writer = self._order_conn
                    await write_frame(
                        writer,
                        {"type": "request", "id": 0, "verb": "order"},
                    )
                    reply = await asyncio.wait_for(
                        read_frame(reader), timeout=5.0
                    )
                if reply is None or not reply.get("ok"):
                    raise ConnectionError("order request failed")
                order = reply["order"]
                return (int(order[0]), int(order[1]))
            except (OSError, ConnectionError, asyncio.TimeoutError):
                if self._order_conn is not None:
                    self._order_conn[1].close()
                    self._order_conn = None
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max)
        raise ConnectionError("server stopping")

    async def _handle_update(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        ops = decode_ops(frame.get("ops", ()))
        if not ops:
            raise ValueError("update without operations")
        if not any(is_write(op) for op in ops):
            raise ValueError("update ET must contain a write (use query)")
        self.engine.validate_update(ops)
        writes = tuple(op for op in ops if is_write(op))
        read_keys = [op.key for op in ops if op.is_read_op]

        order = None
        if self.engine.needs_order:
            order = await self._acquire_order()

        tid_seq = self.inboxes[LOCAL_CHANNEL].frontier + 1
        tid = "%s:%d" % (self.name, tid_seq)
        info = (("reads", read_keys),) if read_keys else ()
        mset = MSet(
            tid,
            MSetKind.UPDATE,
            writes,
            origin=self.name,
            order=order,
            info=info,
        )
        payload = {"mset": encode_mset(mset)}

        # Durability before acknowledgement: the local log first, then
        # every outbound channel log.  Only then is the update "in the
        # stable queues" in the paper's sense.
        self.inboxes[LOCAL_CHANNEL].record(tid_seq, payload)
        self._local_keys[tid] = mset.keys
        if self.peer_names:
            self._unacked[tid] = set(self.peer_names)
            for peer in self.peer_names:
                seq = self.outboxes[peer].append(payload)
                self._seq_tid[(peer, seq)] = tid

        loop = asyncio.get_event_loop()
        if self.engine.needs_order:
            self._apply_futures[tid] = loop.create_future()
        if self.engine.sync_commit and self.peer_names:
            self._full_ack_futures[tid] = loop.create_future()

        applied = await self.engine.accept(mset, local=True)
        self._resolve_applied(applied)
        self._kick_channels()

        if not self.peer_names:
            await self.engine.fully_acked(tid, self._local_keys.pop(tid, ()))

        if self.engine.needs_order:
            # Commit once the update executes at its origin in global
            # order (read-modify-report values are evaluated there).
            fut = self._apply_futures.get(tid)
            if fut is not None:
                await asyncio.wait_for(fut, timeout=self.commit_timeout)
        if self.engine.sync_commit and self.peer_names:
            # Synchronous baseline: wait for every peer's durable ack.
            fut = self._full_ack_futures.get(tid)
            if fut is not None:
                await asyncio.wait_for(fut, timeout=self.commit_timeout)
        values = self.engine.pop_read_results(tid)
        return {"tid": tid, "values": values}

    async def _handle_query(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        keys = frame.get("keys")
        if not keys or not all(isinstance(k, str) for k in keys):
            raise ValueError("query needs a list of string keys")
        spec = decode_spec(frame.get("spec"))
        try:
            outcome = await self.engine.query(
                keys, spec, timeout=self.query_timeout
            )
        except QueryTimeout as exc:
            raise QueryTimeout(str(exc)) from None
        return {
            "values": outcome.values,
            "inconsistency": outcome.inconsistency,
            "overlap": list(outcome.overlap),
            "waits": outcome.waits,
        }
