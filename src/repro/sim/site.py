"""Replica sites: local state, local execution, crash/recovery.

A :class:`Site` owns the local storage substrate (plain store,
multiversion store, operation log), the local history recording, the
overlap tracker, and the lock-counter table.  Replica control methods
drive sites through small primitives — sites know nothing about any
particular method, matching the paper's framework split between "MSet
delivery" and "MSet processing" (section 2.4).

Crash model: a crashed site loses its volatile in-progress work but
its store and stable queues survive (stable storage); recovery resumes
queue processing.  This matches the paper's factoring: "we factor out
the problem of internal system consistency due to site failures by
encapsulating it in the local message processing".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.history import History
from ..core.inconsistency import LockCounterTable
from ..core.operations import Operation
from ..core.overlap import OverlapTracker
from ..core.transactions import EpsilonTransaction, TransactionID
from ..obs.registry import NULL_REGISTRY, Registry
from ..storage.kv import KeyValueStore
from ..storage.mvstore import MultiVersionStore
from ..storage.oplog import OperationLog
from .events import Simulator

__all__ = ["Site", "SiteConfig"]


@dataclass(frozen=True)
class SiteConfig:
    """Local execution timing (simulated time units).

    The absolute values are arbitrary; only their ratio to network
    latency matters for the benchmark shapes, as DESIGN.md notes.
    """

    #: time to apply one update operation from an MSet.
    apply_time: float = 0.1
    #: time for one query read operation.
    read_time: float = 0.5
    #: default value materialized for missing keys.
    default_value: Any = 0


class Site:
    """One replica site."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        config: Optional[SiteConfig] = None,
        registry: Optional[Registry] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.config = config or SiteConfig()
        #: metrics registry shared with the hosting system; defaults to
        #: the no-op registry so a standalone site costs nothing.
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._m_applied = self.registry.counter(
            "site_ops_applied_total",
            "update operations applied at one site",
            labels=("site",),
        )
        self._m_reads = self.registry.counter(
            "site_reads_total",
            "query read operations served at one site",
            labels=("site",),
        )
        self._m_crashes = self.registry.counter(
            "site_crashes_total",
            "fail-stop crashes injected at one site",
            labels=("site",),
        )
        self.store = KeyValueStore()
        self.mvstore = MultiVersionStore()
        self.oplog = OperationLog(self.store, default=self.config.default_value)
        self.history = History()
        self.tracker = OverlapTracker()
        self.lock_counters = LockCounterTable()
        self.crashed = False
        #: hooks a replica control method installs (crash interruption).
        self.on_crash: List[Callable[[], None]] = []
        self.on_recover: List[Callable[[], None]] = []

    # -- local execution primitives -------------------------------------------

    def apply_op(
        self,
        tid: TransactionID,
        op: Operation,
        et: Optional[EpsilonTransaction] = None,
        logged: bool = False,
    ) -> Any:
        """Apply one operation locally and record it in the history.

        ``logged=True`` routes through the operation log so the action
        is compensatable (COMPE); otherwise it applies directly.
        """
        if self.crashed:
            raise RuntimeError("site %s is crashed" % self.name)
        if logged:
            result = self.oplog.execute(tid, op)
        else:
            result = self.store.apply(op, default=self.config.default_value)
        self.history.record(tid, op, self.name, self.sim.now, et)
        self._m_applied.labels(site=self.name).inc()
        return result

    def read(self, tid: TransactionID, key: str) -> Any:
        """Read a key's current value without recording history.

        Methods record the read themselves once they decide which value
        (current vs VTNC-visible) the query actually observed.
        """
        if self.crashed:
            raise RuntimeError("site %s is crashed" % self.name)
        self._m_reads.labels(site=self.name).inc()
        return self.store.get(key, self.config.default_value)

    def values(self) -> Dict[str, Any]:
        """Current store contents (convergence assertions)."""
        return self.store.as_dict()

    # -- failure model -----------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: volatile work is interrupted; storage survives."""
        if self.crashed:
            return
        self.crashed = True
        self._m_crashes.labels(site=self.name).inc()
        for hook in list(self.on_crash):
            hook()

    def recover(self) -> None:
        if not self.crashed:
            return
        self.crashed = False
        for hook in list(self.on_recover):
            hook()
