"""Stable queues: persistent, retrying message channels.

Paper section 2.2: "we factor out the problem of message losses by
encapsulating it in stable queues which persistently retry message
delivery until successful", citing recoverable queues [5] and
persistent pipes [17].  Each MSet is an element of a stable queue.

The queue provides an **at-least-once, eventually-delivered** contract
over the lossy, partitionable network: every enqueued message is
retried until the receiver acknowledges it.  Receivers deduplicate via
per-channel sequence numbers, so the application-visible contract is
exactly-once.  Delivery order is *not* guaranteed unless ``fifo=True``
— ORDUP explicitly tolerates out-of-order delivery ("a 'later' MSet can
be delivered before an 'earlier' MSet", section 3.1), while the FIFO
mode models site-sequential channels.

Queue contents survive site crashes (they are stable storage): a
crashed receiver simply acknowledges nothing until it recovers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .events import Simulator
from .network import Network

__all__ = ["StableQueue", "QueueStats", "Envelope"]


@dataclass(frozen=True)
class Envelope:
    """A queued message with its channel sequence number."""

    src: str
    dst: str
    seqno: int
    payload: Any


@dataclass
class QueueStats:
    enqueued: int = 0
    delivered: int = 0
    retries: int = 0
    duplicates_suppressed: int = 0


class StableQueue:
    """One outbound stable queue per (source, destination) channel."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        src: str,
        dst: str,
        deliver: Callable[[Any], None],
        retry_interval: float = 5.0,
        fifo: bool = False,
        jitter: float = 0.0,
        size_of: Optional[Callable[[Any], float]] = None,
    ) -> None:
        """Args:
            deliver: receiver-side handler invoked exactly once per
                payload (after deduplication).
            retry_interval: base delay before re-sending an
                unacknowledged message.
            fifo: when True, hold back message *n+1* until *n* has been
                acknowledged (site-sequential channel).
            jitter: +/- fraction of retry_interval randomized per retry
                to avoid lockstep retries in large fleets.
            size_of: message-size estimator for bandwidth-limited
                networks (default: every message is 1 unit).
        """
        self.sim = sim
        self.network = network
        self.src = src
        self.dst = dst
        self._deliver = deliver
        self.retry_interval = retry_interval
        self.fifo = fifo
        self.jitter = jitter
        self.size_of = size_of or (lambda payload: 1.0)
        self.stats = QueueStats()
        self._seq = itertools.count(1)
        #: messages awaiting acknowledgement, by seqno.
        self._pending: Dict[int, Envelope] = {}
        #: seqnos already applied at the receiver (dedup filter).
        self._acked: Set[int] = set()
        self._receiver_seen: Set[int] = set()
        #: next seqno the FIFO channel may transmit.
        self._fifo_frontier = 1
        #: paused while the *sender* site is crashed.
        self._paused = False

    # -- sending ----------------------------------------------------------------

    def enqueue(self, payload: Any) -> Envelope:
        """Persistently queue ``payload`` for delivery to ``dst``."""
        envelope = Envelope(self.src, self.dst, next(self._seq), payload)
        self._pending[envelope.seqno] = envelope
        self.stats.enqueued += 1
        self._transmit(envelope)
        return envelope

    def pause(self) -> None:
        """Sender crashed: stop transmitting (queue content survives)."""
        self._paused = True

    def resume(self) -> None:
        """Sender recovered: resume retrying everything still pending."""
        self._paused = False
        for envelope in sorted(self._pending.values(), key=lambda e: e.seqno):
            self._transmit(envelope)

    def _transmit(self, envelope: Envelope) -> None:
        if self._paused or envelope.seqno not in self._pending:
            return
        if self.fifo and envelope.seqno != self._fifo_frontier:
            return  # held back until predecessors are acknowledged
        self.network.send(
            self.src,
            self.dst,
            envelope,
            on_deliver=self._on_receive,
            on_drop=self._on_drop,
            size=self.size_of(envelope.payload),
        )

    def _on_drop(self, envelope: Envelope) -> None:
        self._schedule_retry(envelope)

    def _schedule_retry(self, envelope: Envelope) -> None:
        if envelope.seqno not in self._pending:
            return
        delay = self.retry_interval
        if self.jitter:
            spread = self.retry_interval * self.jitter
            delay += self.sim.rng.uniform(-spread, spread)
        self.stats.retries += 1
        self.sim.schedule(max(delay, 0.001), lambda: self._transmit(envelope))

    # -- receiving ---------------------------------------------------------------

    def _on_receive(self, envelope: Envelope) -> None:
        if envelope.seqno in self._receiver_seen:
            self.stats.duplicates_suppressed += 1
            self._ack(envelope.seqno)
            return
        self._receiver_seen.add(envelope.seqno)
        self.stats.delivered += 1
        self._deliver(envelope.payload)
        self._ack(envelope.seqno)

    def _ack(self, seqno: int) -> None:
        """Acknowledgement travels back over the network too."""

        def apply_ack(_: Any) -> None:
            self._pending.pop(seqno, None)
            self._acked.add(seqno)
            if self.fifo:
                while self._fifo_frontier in self._acked:
                    self._fifo_frontier += 1
                nxt = self._pending.get(self._fifo_frontier)
                if nxt is not None:
                    self._transmit(nxt)

        def ack_lost(_: Any) -> None:
            # The sender never learned of the delivery; retry the
            # original message — receiver-side dedup absorbs the
            # duplicate and triggers a fresh ack attempt.
            envelope = self._pending.get(seqno)
            if envelope is not None:
                self._schedule_retry(envelope)

        self.network.send(
            self.dst, self.src, seqno, on_deliver=apply_ack, on_drop=ack_lost
        )

    # -- monitoring ----------------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Messages enqueued but not yet acknowledged."""
        return len(self._pending)

    def drained(self) -> bool:
        """True when everything enqueued has been delivered and acked."""
        return not self._pending

    def kick(self) -> None:
        """Force an immediate retry of all pending messages.

        Called after a partition heals so the benchmarks need not wait
        for the next retry tick (the paper's reconnection processing).
        """
        for envelope in sorted(self._pending.values(), key=lambda e: e.seqno):
            self._transmit(envelope)
