"""Failure injection: crash/recovery and partition schedules.

Benchmarks E4/E8/E9 exercise the paper's robustness claims ("robust in
face of very slow links, network partitions, and site failures") by
injecting deterministic or randomized failure schedules into a running
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .events import Simulator
from .network import Network
from .site import Site

__all__ = ["FailureInjector", "PartitionEvent", "CrashEvent"]


@dataclass(frozen=True)
class CrashEvent:
    """Crash ``site`` at ``at`` and recover it ``duration`` later."""

    site: str
    at: float
    duration: float


@dataclass(frozen=True)
class PartitionEvent:
    """Partition the network into ``groups`` at ``at``, heal later."""

    groups: Tuple[Tuple[str, ...], ...]
    at: float
    duration: float


class FailureInjector:
    """Applies failure schedules to sites and the network."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        sites: Dict[str, Site],
        on_heal: Optional[Callable[[], None]] = None,
    ) -> None:
        """``on_heal`` runs after each partition heals — replica systems
        hook their stable-queue ``kick`` here so the reconnection
        catch-up the paper describes happens promptly."""
        self.sim = sim
        self.network = network
        self.sites = sites
        self.on_heal = on_heal
        self.crash_count = 0
        self.partition_count = 0

    # -- explicit schedules -------------------------------------------------

    def schedule_crash(self, event: CrashEvent) -> None:
        site = self.sites[event.site]

        def crash() -> None:
            self.crash_count += 1
            self.network.site_down(site.name)
            site.crash()

        def recover() -> None:
            site.recover()
            self.network.site_up(site.name)

        self.sim.schedule_at(event.at, crash)
        self.sim.schedule_at(event.at + event.duration, recover)

    def schedule_partition(self, event: PartitionEvent) -> None:
        def split() -> None:
            self.partition_count += 1
            self.network.partition(event.groups)

        def heal() -> None:
            self.network.heal()
            if self.on_heal is not None:
                self.on_heal()

        self.sim.schedule_at(event.at, split)
        self.sim.schedule_at(event.at + event.duration, heal)

    def apply_schedule(
        self, events: Iterable[object]
    ) -> None:
        """Schedule a mixed list of crash and partition events."""
        for event in events:
            if isinstance(event, CrashEvent):
                self.schedule_crash(event)
            elif isinstance(event, PartitionEvent):
                self.schedule_partition(event)
            else:
                raise TypeError("unknown failure event %r" % (event,))

    # -- randomized schedules ----------------------------------------------------

    def random_crashes(
        self,
        horizon: float,
        rate_per_site: float,
        mean_downtime: float,
    ) -> List[CrashEvent]:
        """Generate (and schedule) Poisson-ish crash events per site."""
        events: List[CrashEvent] = []
        for name in sorted(self.sites):
            t = self.sim.rng.expovariate(rate_per_site) if rate_per_site else horizon
            while t < horizon:
                duration = self.sim.rng.expovariate(1.0 / mean_downtime)
                event = CrashEvent(name, t, duration)
                events.append(event)
                self.schedule_crash(event)
                t += duration + self.sim.rng.expovariate(rate_per_site)
        return events
