"""Simulated network: latency, loss, bandwidth, and partitions.

The paper's model (section 2.2): "a number of sites connected by a
network, where both individual sites and network links may fail";
replica control must be "robust in face of very slow links, network
partitions, and site failures".  This module supplies those hazards:

* per-link latency models (constant, uniform, exponential-ish),
* independent per-message loss probability,
* partitions: site groups that cannot exchange messages until healed.

Message delivery is fire-and-forget at this layer; reliability is the
stable queue's job (:mod:`repro.sim.stable_queue`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .events import Simulator

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "Network",
    "NetworkStats",
]


class LatencyModel:
    """Strategy object producing per-message latencies."""

    def sample(self, sim: Simulator) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Fixed one-way delay."""

    delay: float = 1.0

    def sample(self, sim: Simulator) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform delay in [low, high]."""

    low: float = 0.5
    high: float = 1.5

    def sample(self, sim: Simulator) -> float:
        return sim.rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """Exponential delay with the given mean, plus a fixed floor.

    The floor models propagation delay; the exponential tail models
    queueing — a reasonable stand-in for the "moderately high latency"
    links of paper section 2.4.
    """

    mean: float = 1.0
    floor: float = 0.1

    def sample(self, sim: Simulator) -> float:
        return self.floor + sim.rng.expovariate(1.0 / self.mean)


@dataclass
class NetworkStats:
    """Counters the benchmarks report."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    blocked_by_partition: int = 0


class Network:
    """Message fabric between named sites."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        bandwidth: Optional[float] = None,
    ) -> None:
        """Args:
            bandwidth: per-directed-link capacity in message-units per
                simulated time unit (``None`` = infinite).  Messages
                carry a ``size`` (default 1.0); each link serializes
                its traffic, so a busy link adds queueing delay on top
                of propagation latency — the paper's "very low
                bandwidth" handicap (section 2.4).
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.default_latency = latency or ConstantLatency(1.0)
        self.loss_rate = loss_rate
        self.bandwidth = bandwidth
        self.stats = NetworkStats()
        self._link_latency: Dict[Tuple[str, str], LatencyModel] = {}
        #: per-directed-link transmitter availability time (queueing).
        self._link_free_at: Dict[Tuple[str, str], float] = {}
        #: current partition: site -> group id.  Empty = fully connected.
        self._partition_of: Dict[str, int] = {}
        self._down_sites: Set[str] = set()

    # -- topology ------------------------------------------------------------

    def set_link_latency(
        self, src: str, dst: str, latency: LatencyModel, symmetric: bool = True
    ) -> None:
        """Override latency for one directed (or symmetric) link."""
        self._link_latency[(src, dst)] = latency
        if symmetric:
            self._link_latency[(dst, src)] = latency

    def _latency_for(self, src: str, dst: str) -> LatencyModel:
        return self._link_latency.get((src, dst), self.default_latency)

    # -- partitions -----------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split sites into isolated groups.

        Sites not named in any group remain in an implicit group of
        their own that can still reach each other only if *no* groups
        are active for them; to be explicit, name every site.
        """
        self._partition_of = {}
        for gid, group in enumerate(groups):
            for site in group:
                self._partition_of[site] = gid

    def heal(self) -> None:
        """Remove all partitions (paper's reconnection instant)."""
        self._partition_of = {}

    def is_partitioned(self, src: str, dst: str) -> bool:
        if not self._partition_of:
            return False
        return self._partition_of.get(src) != self._partition_of.get(dst)

    # -- site failures ----------------------------------------------------------

    def site_down(self, site: str) -> None:
        """Mark a site crashed: messages to it are dropped on arrival."""
        self._down_sites.add(site)

    def site_up(self, site: str) -> None:
        self._down_sites.discard(site)

    def is_reachable(self, src: str, dst: str) -> bool:
        """True when a message sent now would be deliverable."""
        return (
            not self.is_partitioned(src, dst)
            and src not in self._down_sites
            and dst not in self._down_sites
        )

    # -- messaging ---------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        on_deliver: Callable[[Any], None],
        on_drop: Optional[Callable[[Any], None]] = None,
        size: float = 1.0,
    ) -> bool:
        """Attempt delivery of ``payload`` from ``src`` to ``dst``.

        Returns True when the message was put on the wire (it may still
        be lost probabilistically).  Partitioned or crashed endpoints
        drop immediately; ``on_drop`` (if given) is invoked either way a
        message dies, letting stable queues schedule retries.  ``size``
        matters only on bandwidth-limited networks, where it determines
        serialization time (and therefore queueing behind earlier
        traffic on the same directed link).
        """
        self.stats.sent += 1
        if self.is_partitioned(src, dst) or src in self._down_sites:
            self.stats.blocked_by_partition += 1
            if on_drop is not None:
                self.sim.call_now(lambda: on_drop(payload))
            return False
        if self.loss_rate and self.sim.rng.random() < self.loss_rate:
            self.stats.lost += 1
            if on_drop is not None:
                self.sim.call_now(lambda: on_drop(payload))
            return False
        delay = self._latency_for(src, dst).sample(self.sim)
        if self.bandwidth is not None:
            # Serialize behind whatever is already on this link's
            # transmitter, then add our own transmission time.
            link = (src, dst)
            free_at = max(
                self._link_free_at.get(link, 0.0), self.sim.now
            )
            transmit = size / self.bandwidth
            done_at = free_at + transmit
            self._link_free_at[link] = done_at
            delay += done_at - self.sim.now

        def deliver() -> None:
            # The destination may have crashed or partitioned away while
            # the message was in flight.
            if dst in self._down_sites or self.is_partitioned(src, dst):
                self.stats.blocked_by_partition += 1
                if on_drop is not None:
                    on_drop(payload)
                return
            self.stats.delivered += 1
            on_deliver(payload)

        self.sim.schedule(delay, deliver)
        return True
