"""Distributed-system substrate: events, network, queues, sites, failures."""

from .events import EventHandle, SimulationError, Simulator
from .network import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    Network,
    NetworkStats,
    UniformLatency,
)
from .stable_queue import Envelope, QueueStats, StableQueue
from .clocks import CentralOrderServer, GlobalOrder, LamportClock
from .site import Site, SiteConfig
from .failures import CrashEvent, FailureInjector, PartitionEvent

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "ConstantLatency",
    "ExponentialLatency",
    "LatencyModel",
    "Network",
    "NetworkStats",
    "UniformLatency",
    "Envelope",
    "QueueStats",
    "StableQueue",
    "CentralOrderServer",
    "GlobalOrder",
    "LamportClock",
    "Site",
    "SiteConfig",
    "CrashEvent",
    "FailureInjector",
    "PartitionEvent",
]
