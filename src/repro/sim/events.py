"""Deterministic discrete-event simulation engine.

All experiments in this reproduction run on simulated time: events are
callbacks scheduled at future instants, executed in timestamp order
with deterministic tie-breaking (insertion order).  Randomness flows
from a single seeded :class:`random.Random`, so every run is exactly
reproducible — the substitution for the paper's real distributed
testbed documented in DESIGN.md section 3.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "EventHandle", "SimulationError"]


class SimulationError(Exception):
    """Raised on scheduling misuse (e.g. scheduling in the past)."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass
class EventHandle:
    """Token returned by ``schedule``; allows cancellation."""

    _event: _ScheduledEvent

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        self._event.cancelled = True


class Simulator:
    """Event loop over simulated time.

    Attributes:
        now: current simulated time.
        rng: the simulation-wide seeded random source.  Components must
            draw randomness only from here to preserve determinism.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._executed = 0

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError("cannot schedule with negative delay")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                "cannot schedule at %s, now is %s" % (time, self.now)
            )
        event = _ScheduledEvent(time, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_now(self, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at the current instant, after pending work."""
        return self.schedule(0.0, callback)

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self._executed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain the event queue.

        Args:
            until: stop once the next event lies beyond this time (the
                clock is advanced to ``until``).
            max_events: safety valve against runaway schedules.

        Returns:
            Number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self.now = max(self.now, until)
                return executed
            if self.step():
                executed += 1
        if until is not None:
            self.now = max(self.now, until)
        return executed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def executed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._executed

    def is_quiescent(self) -> bool:
        """True when no events remain — the paper's quiescent state."""
        return self.pending == 0
