"""Ordering services: Lamport clocks and a central order server.

ORDUP (paper section 3.1) needs a global execution order for update
MSets.  "Such ordering can be generated easily by a centralized order
server, sometimes true distributed control is desired.  In those cases
we may use a Lamport-style global timestamp to mark the ordering."

Both are provided; they produce the same kind of token — a totally
ordered, hashable sequence identifier — so ORDUP can be configured with
either.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Tuple

__all__ = ["LamportClock", "CentralOrderServer", "GlobalOrder"]

#: A total-order token: (logical time, site tiebreak index).
GlobalOrder = Tuple[int, int]


class LamportClock:
    """Per-site logical clock (Lamport 1978).

    ``tick()`` stamps local events; ``witness()`` merges a remote stamp
    on message receipt.  Stamps are made totally ordered by pairing the
    counter with a stable per-site index.
    """

    def __init__(self, site_index: int) -> None:
        if site_index < 0:
            raise ValueError("site_index must be non-negative")
        self.site_index = site_index
        self._counter = 0

    @property
    def time(self) -> int:
        return self._counter

    def tick(self) -> GlobalOrder:
        """Advance for a local event; return its global stamp."""
        self._counter += 1
        return (self._counter, self.site_index)

    def witness(self, stamp: GlobalOrder) -> GlobalOrder:
        """Merge an incoming stamp (receive rule) and tick."""
        remote_time, _ = stamp
        self._counter = max(self._counter, remote_time) + 1
        return (self._counter, self.site_index)


class CentralOrderServer:
    """Globally unique, gap-free sequence numbers.

    Gap-freedom is what lets ORDUP sites "simply wait for the next MSet
    in the execution sequence to show up" — with Lamport stamps a site
    cannot know whether a slightly earlier stamp is still in flight, so
    the hold-back logic differs (see :mod:`repro.replica.ordup`).
    """

    def __init__(self) -> None:
        self._seq = itertools.count(1)
        self._issued = 0

    def next_order(self) -> GlobalOrder:
        """Issue the next global sequence token."""
        self._issued = next(self._seq)
        return (self._issued, 0)

    @property
    def issued(self) -> int:
        """Highest sequence number issued so far."""
        return self._issued
