"""Local storage substrate: versioned KV, multiversion store, op log."""

from .kv import KeyNotFound, KeyValueStore, StoreSnapshot
from .mvstore import MultiVersionStore, NoVisibleVersion, Version
from .oplog import CompensationError, LogRecord, OperationLog

__all__ = [
    "KeyNotFound",
    "KeyValueStore",
    "StoreSnapshot",
    "MultiVersionStore",
    "NoVisibleVersion",
    "Version",
    "CompensationError",
    "LogRecord",
    "OperationLog",
]
