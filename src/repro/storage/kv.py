"""Versioned in-memory object store — one per replica site.

This is the local storage substrate the paper assumes each site has
("each site is capable of maintaining local consistency", section 2.2).
It supports:

* plain get/put with apply-through for the operation algebra,
* per-key access timestamps for the basic-timestamp divergence engine,
* Thomas-write-rule application for RITU single-version overwrites,
* snapshots and restores for crash simulation and convergence checks.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from ..core.operations import Operation, OperationError, TimestampedWriteOp

__all__ = ["KeyValueStore", "StoreSnapshot", "KeyNotFound"]


class KeyNotFound(KeyError):
    """Raised when reading a key with no value and no default."""


@dataclass
class _Cell:
    """Storage cell for one key."""

    value: Any = None
    present: bool = False
    #: Timestamp of the newest timestamped (RITU) write applied.
    write_stamp: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class StoreSnapshot:
    """An immutable copy of a store's contents at one instant."""

    values: Mapping[str, Any]
    stamps: Mapping[str, Optional[Tuple[int, int]]]


class KeyValueStore:
    """Dictionary-of-cells store with operation-algebra application."""

    def __init__(self, initial: Optional[Mapping[str, Any]] = None) -> None:
        self._cells: Dict[str, _Cell] = {}
        if initial:
            for key, value in initial.items():
                self.put(key, value)

    # -- basic access --------------------------------------------------------

    def get(self, key: str, default: Any = KeyNotFound) -> Any:
        cell = self._cells.get(key)
        if cell is None or not cell.present:
            if default is KeyNotFound:
                raise KeyNotFound(key)
            return default
        return cell.value

    def put(self, key: str, value: Any) -> None:
        cell = self._cells.setdefault(key, _Cell())
        cell.value = value
        cell.present = True

    def delete(self, key: str) -> None:
        self._cells.pop(key, None)

    def __contains__(self, key: str) -> bool:
        cell = self._cells.get(key)
        return cell is not None and cell.present

    def keys(self) -> Iterator[str]:
        return (k for k, c in self._cells.items() if c.present)

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- operation application -------------------------------------------------

    def apply(self, op: Operation, default: Any = 0) -> Any:
        """Apply one operation and return the (new or read) value.

        Timestamped writes go through the Thomas write rule: an update
        carrying an older timestamp than the installed one is ignored
        (paper section 3.3: 'An RITU update trying to overwrite a newer
        version is ignored').  Missing keys are materialized with
        ``default`` so commutative arithmetic has an identity to act on.
        """
        cell = self._cells.get(key := op.key)
        if cell is None:
            # Not setdefault: that would construct (and usually throw
            # away) a _Cell per applied operation on the hot path.
            cell = self._cells[key] = _Cell()
        if not cell.present:
            cell.value = copy.copy(op.initial_value(default))
            cell.present = True
        if isinstance(op, TimestampedWriteOp):
            current = (
                (cell.write_stamp, cell.value)
                if cell.write_stamp is not None
                else None
            )
            stamp, value = op.apply_timestamped(current)
            cell.write_stamp = stamp
            cell.value = value
            return value
        new_value = op.apply(cell.value)
        if op.is_write_op:
            cell.value = new_value
        return new_value

    def stamp_of(self, key: str) -> Optional[Tuple[int, int]]:
        """Timestamp of the newest RITU write on ``key``, if any."""
        cell = self._cells.get(key)
        return cell.write_stamp if cell else None

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> StoreSnapshot:
        """Deep-copied snapshot (crash simulation / convergence checks)."""
        return StoreSnapshot(
            values={k: copy.deepcopy(c.value) for k, c in self._cells.items() if c.present},
            stamps={k: c.write_stamp for k, c in self._cells.items() if c.present},
        )

    def restore(self, snapshot: StoreSnapshot) -> None:
        """Replace contents with a snapshot (crash recovery)."""
        self._cells.clear()
        for key, value in snapshot.values.items():
            self.put(key, copy.deepcopy(value))
            self._cells[key].write_stamp = snapshot.stamps.get(key)

    def as_dict(self) -> Dict[str, Any]:
        """Plain mapping of present keys to values (for assertions)."""
        return {k: self.get(k) for k in self.keys()}
