"""Multiversion store with VTNC visibility (Modular Synchronization).

RITU's multiversion variant (paper section 3.3) appends immutable
versions tagged with transaction numbers and controls visibility with a
**visible transaction number counter (VTNC)**: versions at or below the
VTNC are stable — "no smaller version can be created by any active or
future transaction" — so queries reading at the VTNC are serializable.
Queries may opt to read newer (unstable) versions at the cost of one
inconsistency unit per read, which is exactly what
:class:`repro.core.divergence.VTNCDC` accounts for.

Compensation support (paper section 4.2): a version can be superseded
"by adding another version with the same timestamp but bearing the
previous value", or deleted outright.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.transactions import TransactionID

__all__ = ["Version", "MultiVersionStore", "NoVisibleVersion"]


class NoVisibleVersion(LookupError):
    """Raised when a key has no version visible at the requested bound."""


@dataclass(frozen=True)
class Version:
    """One immutable version of an object.

    ``txn_number`` is the global transaction number of the writer;
    ``sequence`` disambiguates compensations installed at the same
    number (the later sequence wins).
    """

    txn_number: int
    value: Any
    writer: Optional[TransactionID] = None
    sequence: int = 0


class MultiVersionStore:
    """Append-only versioned store with VTNC visibility control."""

    def __init__(self) -> None:
        self._versions: Dict[str, List[Version]] = {}
        self._vtnc = 0
        self._sequence = 0

    # -- VTNC -----------------------------------------------------------------

    @property
    def vtnc(self) -> int:
        return self._vtnc

    def advance_vtnc(self, txn_number: int) -> None:
        """Raise the VTNC; refuses to move backwards."""
        if txn_number > self._vtnc:
            self._vtnc = txn_number

    # -- writes ----------------------------------------------------------------

    def install(
        self,
        key: str,
        value: Any,
        txn_number: int,
        writer: Optional[TransactionID] = None,
    ) -> Version:
        """Append a version of ``key`` produced by ``txn_number``.

        Installation order is free (RITU updates commute); versions are
        kept sorted by (txn_number, sequence) so reads can binary-search
        the visibility bound.
        """
        self._sequence += 1
        version = Version(txn_number, value, writer, self._sequence)
        versions = self._versions.setdefault(key, [])
        bisect.insort(
            versions, version, key=lambda v: (v.txn_number, v.sequence)
        )
        return version

    def compensate(
        self,
        key: str,
        txn_number: int,
        prior_value: Any,
        writer: Optional[TransactionID] = None,
    ) -> Version:
        """Install a compensation version at the same transaction number.

        Paper section 4.2: 'Multiple versions can support compensation
        by ... adding another version with the same timestamp but
        bearing the previous value.'  The higher sequence number makes
        the compensation shadow the compensated version.
        """
        return self.install(key, prior_value, txn_number, writer)

    def delete_version(self, key: str, txn_number: int) -> bool:
        """Delete the newest version of ``key`` at ``txn_number``.

        The alternative compensation strategy of section 4.2.  Returns
        True when a version was removed.
        """
        versions = self._versions.get(key, [])
        for i in range(len(versions) - 1, -1, -1):
            if versions[i].txn_number == txn_number:
                del versions[i]
                return True
        return False

    # -- reads -----------------------------------------------------------------

    def read_at(self, key: str, bound: int) -> Version:
        """Newest version with ``txn_number <= bound``.

        Raises :class:`NoVisibleVersion` when nothing qualifies.
        """
        versions = self._versions.get(key, [])
        best: Optional[Version] = None
        for version in versions:
            if version.txn_number <= bound:
                best = version  # sorted ascending; keep the last match
            else:
                break
        if best is None:
            raise NoVisibleVersion(key)
        return best

    def read_visible(self, key: str) -> Version:
        """Newest VTNC-visible (stable, SR) version."""
        return self.read_at(key, self._vtnc)

    def read_latest(self, key: str) -> Version:
        """Newest version regardless of visibility (may be unstable)."""
        versions = self._versions.get(key, [])
        if not versions:
            raise NoVisibleVersion(key)
        return versions[-1]

    def versions_of(self, key: str) -> List[Version]:
        return list(self._versions.get(key, ()))

    def unstable_versions(self, key: str) -> List[Version]:
        """Versions newer than the VTNC (inconsistency sources)."""
        return [
            v for v in self._versions.get(key, ()) if v.txn_number > self._vtnc
        ]

    def keys(self) -> Iterator[str]:
        return (k for k, v in self._versions.items() if v)

    def latest_values(self) -> Dict[str, Any]:
        """key -> newest value (for convergence comparison)."""
        return {key: self.read_latest(key).value for key in self.keys()}

    # -- persistence -----------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every version plus the VTNC.

        The live runtime's snapshot/checkpoint machinery persists this
        verbatim; :meth:`from_state` rebuilds an equivalent store
        (including the sequence counter, so compensations installed
        after a restore keep shadowing correctly).
        """
        return {
            "vtnc": self._vtnc,
            "sequence": self._sequence,
            "versions": {
                key: [
                    [v.txn_number, v.value, v.writer, v.sequence]
                    for v in versions
                ]
                for key, versions in self._versions.items()
                if versions
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "MultiVersionStore":
        store = cls()
        store._vtnc = int(state.get("vtnc", 0))
        store._sequence = int(state.get("sequence", 0))
        for key, versions in dict(state.get("versions", {})).items():
            store._versions[key] = [
                Version(int(t), value, writer, int(seq))
                for t, value, writer, seq in versions
            ]
        return store
