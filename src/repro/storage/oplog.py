"""Operation log with undo and replay — the COMPE substrate.

Backward replica control (paper section 4) needs each site to remember
executed MSets "until there is no risk of rollback", together with the
information required to compensate them:

* the operation itself,
* its inverse (compensation) operation, built against the value the
  object held *before* the operation ran — required for overwrites
  (section 4.2: 'to rollback RITU with overwrite we must also record
  the value being overwritten on the log').

Two rollback strategies, matching the paper's analysis in section 4.1:

* :meth:`OperationLog.compensate_directly` — legal only when every
  logged operation after the target commutes with the compensation;
  used for COMMU/RITU logs.
* :meth:`OperationLog.rollback_and_replay` — the general Time-Warp-like
  strategy: undo the suffix in reverse order, drop the target, replay
  the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.operations import Operation, commutes
from ..core.transactions import TransactionID
from .kv import KeyValueStore

__all__ = ["LogRecord", "OperationLog", "CompensationError"]


class CompensationError(Exception):
    """Raised when a requested compensation cannot be performed."""


@dataclass
class LogRecord:
    """One executed operation with its undo information."""

    tid: TransactionID
    op: Operation
    prior_value: Any
    inverse: Optional[Operation]
    #: monotonically increasing position in this site's log.
    lsn: int = 0


class OperationLog:
    """Executed-operation log bound to one site's value store."""

    def __init__(self, store: KeyValueStore, default: Any = 0) -> None:
        self._store = store
        self._default = default
        self._records: List[LogRecord] = []
        self._next_lsn = 1

    # -- execution ---------------------------------------------------------

    def execute(self, tid: TransactionID, op: Operation) -> Any:
        """Apply ``op`` through the store, logging undo information."""
        prior = self._store.get(op.key, self._default)
        result = self._store.apply(op, default=self._default)
        inverse = op.inverse(prior) if op.is_write_op else None
        record = LogRecord(tid, op, prior, inverse, self._next_lsn)
        self._next_lsn += 1
        self._records.append(record)
        return result

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[LogRecord, ...]:
        return tuple(self._records)

    def records_of(self, tid: TransactionID) -> List[LogRecord]:
        return [r for r in self._records if r.tid == tid]

    def truncate_before(self, lsn: int) -> int:
        """Forget records older than ``lsn`` (no rollback risk remains).

        Returns the number of records dropped.  COMPE calls this once a
        global update is known committed everywhere.
        """
        kept = [r for r in self._records if r.lsn >= lsn]
        dropped = len(self._records) - len(kept)
        self._records = kept
        return dropped

    def low_water_mark(self, tids: Iterable[TransactionID]) -> int:
        """Lowest LSN any of ``tids`` owns (``next_lsn`` when none do).

        Rollback-and-replay of transaction T undoes the whole suffix
        from T's first record, so records *before every possibly-
        rolled-back transaction's first record* are dead weight; this
        is the safe truncation point for :meth:`truncate_before`.
        """
        watch = set(tids)
        marks = [r.lsn for r in self._records if r.tid in watch]
        return min(marks) if marks else self._next_lsn

    # -- compensation strategies ------------------------------------------------

    def can_compensate_directly(self, tid: TransactionID) -> bool:
        """True when every later operation commutes with the undo.

        Section 4.1: 'if all the operations on an object are commutative
        then rollback of entire log is not necessary.'  We check the
        actual suffix rather than assuming method-wide commutativity, so
        mixed logs degrade safely to rollback-and-replay.
        """
        targets = self.records_of(tid)
        if not targets:
            return False
        for target in targets:
            if target.inverse is None:
                continue
            for record in self._records:
                if record.tid == tid or record.lsn <= target.lsn:
                    continue
                if not commutes(record.op, target.inverse):
                    return False
        return True

    def compensate_directly(self, tid: TransactionID) -> int:
        """Apply inverses of ``tid``'s operations in place.

        Returns the number of compensating operations applied.  Raises
        :class:`CompensationError` when direct compensation is illegal
        for this log (callers should use :meth:`rollback_and_replay`).
        """
        if not self.can_compensate_directly(tid):
            raise CompensationError(
                "log suffix does not commute with undo of %s" % tid
            )
        applied = 0
        for record in reversed(self.records_of(tid)):
            if record.inverse is None:
                continue
            self._store.apply(record.inverse, default=self._default)
            applied += 1
        self._records = [r for r in self._records if r.tid != tid]
        return applied

    def rollback_and_replay(self, tid: TransactionID) -> Tuple[int, int]:
        """General compensation: undo suffix, drop ``tid``, replay rest.

        This is the paper's worked example made executable::

            Inc(x,10) . Mul(x,2) . Div(x,2) . Dec(x,10) . Mul(x,2)
                == Mul(x,2)

        Returns ``(undone, replayed)`` operation counts — the cost
        metric benchmark E8 reports.
        """
        targets = self.records_of(tid)
        if not targets:
            raise CompensationError("transaction %s not in log" % tid)
        first_lsn = targets[0].lsn
        prefix = [r for r in self._records if r.lsn < first_lsn]
        suffix = [r for r in self._records if r.lsn >= first_lsn]

        undone = 0
        for record in reversed(suffix):
            if record.inverse is not None:
                self._store.apply(record.inverse, default=self._default)
            undone += 1

        replayed = 0
        self._records = prefix
        survivors = [r for r in suffix if r.tid != tid]
        for record in survivors:
            self.execute(record.tid, record.op)
            replayed += 1
        return undone, replayed
