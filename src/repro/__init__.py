"""repro — Asynchronous replica control under epsilon-serializability.

A from-scratch reproduction of Pu & Leff, "Replica Control in
Distributed Systems: An Asynchronous Approach" (SIGMOD 1991 / Columbia
TR CUCS-053-90).

Public API layers:

* :mod:`repro.core` — ESR theory: operations, epsilon-transactions,
  histories, serializability checkers, divergence control.
* :mod:`repro.replica` — the paper's four replica control methods
  (ORDUP, COMMU, RITU, COMPE) plus synchronous 1SR baselines, all
  running on a deterministic simulated distributed system.
* :mod:`repro.sim` — the substrate: event loop, network, stable
  queues, sites, failure injection.
* :mod:`repro.storage` — versioned stores and the compensation log.
* :mod:`repro.workload` / :mod:`repro.metrics` / :mod:`repro.harness`
  — experiment machinery reproducing the paper's tables and claims.

Quickstart::

    from repro import (
        CommutativeOperations, ReplicatedSystem, SystemConfig,
        UpdateET, QueryET, IncrementOp, ReadOp, EpsilonSpec,
    )

    system = ReplicatedSystem(CommutativeOperations(),
                              SystemConfig(n_sites=3, seed=7))
    system.submit(UpdateET([IncrementOp("balance", 100)]), "site0")
    system.submit(QueryET([ReadOp("balance")],
                          EpsilonSpec(import_limit=2)), "site1")
    system.run_to_quiescence()
    assert system.converged()
"""

from .core import (
    AppendOp,
    CLASSIC_2PL,
    COMMU_TABLE,
    DecrementOp,
    DivideOp,
    EpsilonSpec,
    EpsilonTransaction,
    ETResult,
    ETStatus,
    Event,
    History,
    IncrementOp,
    MultiplyOp,
    Operation,
    ORDUP_TABLE,
    QueryET,
    ReadOp,
    TimestampedWriteOp,
    UNLIMITED,
    UpdateET,
    WriteOp,
    commutes,
    conflicts,
    is_epsilon_serial,
    is_esr,
    is_one_copy_serializable,
    is_serializable,
    make_et,
    query_overlaps,
    replicas_converged,
)
from .replica import (
    CommutativeOperations,
    CompensationBased,
    OrderedUpdates,
    PrimaryCopy,
    QuorumConsensus,
    ReadIndependentUpdates,
    ReadOneWriteAll2PC,
    ReplicatedSystem,
    SystemConfig,
)
from .sim import (
    ConstantLatency,
    ExponentialLatency,
    Simulator,
    UniformLatency,
)
from .workload import WorkloadGenerator, WorkloadSpec, drive
from .metrics import RunMetrics, divergence_of, summarize
from .harness import AuditReport, audit
from .client import Client, ClientSession, ETFailed
from .consistency import (
    Consistency,
    ReadOptions,
    SessionToken,
    resolve_read_options,
)
from .errors import (
    ABORTED,
    COMPENSATED,
    EPSILON_EXCEEDED,
    ETError,
    OVERLOADED,
    SESSION_STALE,
    UNAVAILABLE,
)

def _detect_version() -> str:
    """Single-source the version from package metadata (pyproject)."""
    from importlib import metadata

    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        pass
    # Uninstalled source tree: fall back to parsing pyproject.toml.
    import pathlib
    import re

    pyproject = pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
    if pyproject.exists():
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        if match:
            return match.group(1)
    return "0.0.0+unknown"


__version__ = _detect_version()

__all__ = [
    # core
    "AppendOp", "CLASSIC_2PL", "COMMU_TABLE", "DecrementOp", "DivideOp",
    "EpsilonSpec", "EpsilonTransaction", "ETResult", "ETStatus", "Event",
    "History", "IncrementOp", "MultiplyOp", "Operation", "ORDUP_TABLE",
    "QueryET", "ReadOp", "TimestampedWriteOp", "UNLIMITED", "UpdateET",
    "WriteOp", "commutes", "conflicts", "is_epsilon_serial", "is_esr",
    "is_one_copy_serializable", "is_serializable", "make_et",
    "query_overlaps", "replicas_converged",
    # replica
    "CommutativeOperations", "CompensationBased", "OrderedUpdates",
    "PrimaryCopy", "QuorumConsensus", "ReadIndependentUpdates",
    "ReadOneWriteAll2PC", "ReplicatedSystem", "SystemConfig",
    # sim
    "ConstantLatency", "ExponentialLatency", "Simulator", "UniformLatency",
    # workload / metrics / audit
    "WorkloadGenerator", "WorkloadSpec", "drive",
    "RunMetrics", "divergence_of", "summarize",
    "AuditReport", "audit",
    "Client", "ClientSession", "ETFailed",
    # typed consistency surface
    "Consistency", "ReadOptions", "SessionToken", "resolve_read_options",
    # shared failure taxonomy (sim + live)
    "ABORTED", "COMPENSATED", "EPSILON_EXCEEDED", "ETError", "OVERLOADED",
    "SESSION_STALE", "UNAVAILABLE",
    "__version__",
]
