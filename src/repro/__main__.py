"""Command-line entry point: experiments and the live runtime.

Usage::

    python -m repro list                 # show experiment ids
    python -m repro run T1 E3            # run selected experiments
    python -m repro run all              # run everything (takes ~10 s)
    python -m repro run all -o results/  # also save one .txt per id

    python -m repro serve --name site0 --port 7000 \\
        --peers site1=127.0.0.1:7001,site2=127.0.0.1:7002 \\
        --data /var/lib/repro/site0 --method commu

    python -m repro serve --shards 4 --replicas 3 --admin-port 7100
        # sharded: 4 replica groups + an admin endpoint for migrate

    python -m repro live-demo            # 3-replica cluster demo
    python -m repro chaos --seed 7       # seeded fault-injection run
    python -m repro chaos --seed 7 --artifacts out/  # + metrics/trace
    python -m repro chaos --scenario rejoin --seed 7 # disk-wipe rejoin
    python -m repro chaos --scenario migrate --seed 7  # live shard move
    python -m repro chaos --scenario elect --seed 7    # sequencer failover
    python -m repro chaos --scenario wan --seed 7      # region partition
    python -m repro chaos --scenario saga --seed 7     # COMPE saga storm
    python -m repro migrate --admin-port 7100 --shard 1  # move shard 1
    python -m repro metrics-dump --port 7000         # scrape one replica
    python -m repro snapshot --port 7000             # checkpoint + compact
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import traceback
from typing import Dict, List, Optional, Tuple

from .harness.experiments import EXPERIMENTS

_DESCRIPTIONS = {
    "T1": "Table 1: replica-control method characteristics",
    "T2": "Table 2: 2PL compatibility for ORDUP ETs",
    "T3": "Table 3: 2PL compatibility for COMMU ETs",
    "E1": "worked example log (1): epsilon-serial but not SR",
    "E2": "update latency vs number of replicas (async vs sync)",
    "E3": "query error vs epsilon limit",
    "E4": "divergence over time; convergence at quiescence",
    "E5": "ORDUP free vs global-order queries",
    "E6": "COMMU lock-counter limits",
    "E7": "RITU overwrite vs multiversion (VTNC)",
    "E8": "COMPE compensation strategy costs",
    "E9": "availability during a partition",
    "E10": "commit latency vs link latency",
}


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for eid in EXPERIMENTS:
        print("%-*s  %s" % (width, eid, _DESCRIPTIONS.get(eid, "")))
    return 0


def _cmd_run(ids: List[str], out_dir: Optional[str] = None) -> int:
    if ids == ["all"]:
        ids = list(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown),
              file=sys.stderr)
        print("use 'python -m repro list' to see the registry",
              file=sys.stderr)
        return 2
    destination = None
    if out_dir is not None:
        destination = pathlib.Path(out_dir)
        destination.mkdir(parents=True, exist_ok=True)
    failed = False
    for eid in ids:
        try:
            text, _ = EXPERIMENTS[eid]()
        except Exception:
            print("experiment %s raised:" % eid, file=sys.stderr)
            traceback.print_exc()
            failed = True
            continue
        print(text)
        print()
        if destination is not None:
            (destination / ("%s.txt" % eid)).write_text(text + "\n")
    return 1 if failed else 0


def _parse_peers(spec: str) -> Dict[str, Tuple[str, int]]:
    """Parse ``name=host:port,name=host:port`` peer listings."""
    peers: Dict[str, Tuple[str, int]] = {}
    if not spec:
        return peers
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            name, addr = part.split("=", 1)
            host, port = addr.rsplit(":", 1)
            peers[name.strip()] = (host.strip(), int(port))
        except ValueError:
            raise SystemExit("malformed peer %r (want name=host:port)" % part)
    return peers


def _cmd_serve_shards(args: argparse.Namespace) -> int:
    """Boot a sharded deployment in one process: ``--shards`` replica
    groups plus a tiny admin endpoint (same frame protocol) answering
    ``ping`` / ``shard-map`` / ``settle`` / ``migrate`` / ``stats`` —
    the ``migrate`` subcommand talks to it."""
    import asyncio

    from .live.cluster import ShardedCluster
    from .live.protocol import read_frame, write_frame

    async def main() -> int:
        cluster = ShardedCluster(
            n_shards=args.shards,
            replicas=args.replicas,
            method=args.method,
            data_dir=pathlib.Path(args.data) if args.data else None,
            host=args.host,
            fsync=args.fsync,
        )
        await cluster.start()

        async def admin(reader, writer) -> None:
            try:
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        return
                    rid = frame.get("id")
                    verb = frame.get("verb")
                    try:
                        if verb == "ping":
                            body = {
                                "shards": cluster.n_shards,
                                "epoch": cluster.map.epoch,
                            }
                        elif verb == "shard-map":
                            body = {"map": cluster.map.to_dict()}
                        elif verb == "settle":
                            await cluster.settle(
                                timeout=float(frame.get("wait", 30.0))
                            )
                            body = {"drained": True}
                        elif verb == "migrate":
                            new_map = await cluster.migrate(
                                int(frame.get("shard", 0))
                            )
                            body = {"map": new_map.to_dict()}
                        elif verb == "stats":
                            body = {"stats": await cluster.shard_stats()}
                        else:
                            raise ValueError("unknown admin verb %r" % verb)
                        await write_frame(
                            writer,
                            {"type": "response", "id": rid, "ok": True,
                             **body},
                        )
                    except (ConnectionError, OSError):
                        raise
                    except Exception as exc:
                        await write_frame(
                            writer,
                            {
                                "type": "response",
                                "id": rid,
                                "ok": False,
                                "error": str(exc),
                                "code": type(exc).__name__,
                            },
                        )
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()

        admin_server = await asyncio.start_server(
            admin, args.host, args.admin_port
        )
        admin_port = admin_server.sockets[0].getsockname()[1]
        print(
            "sharded %s cluster: %d shards x %d replicas, admin on %s:%d"
            % (
                args.method,
                args.shards,
                args.replicas,
                args.host,
                admin_port,
            )
        )
        for shard, group in enumerate(cluster.groups):
            print(
                "  shard %d: %s"
                % (
                    shard,
                    ", ".join(
                        "%s=%s:%d" % (n, h, p)
                        for n, (h, p) in sorted(group.addrs.items())
                    ),
                )
            )
        try:
            while True:
                await asyncio.sleep(3600)
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            admin_server.close()
            await cluster.stop()
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .live.server import ReplicaServer

    if args.shards:
        return _cmd_serve_shards(args)
    if not args.name or not args.data:
        raise SystemExit(
            "serve needs --name and --data (or --shards N for the "
            "sharded in-process deployment)"
        )
    peers = _parse_peers(args.peers)

    if getattr(args, "uvloop", False):
        # uvloop is optional: fall back to the default loop when the
        # environment doesn't ship it (never auto-installed).
        try:
            import uvloop

            uvloop.install()
            print("event loop: uvloop")
        except ImportError:
            print(
                "warning: --uvloop requested but uvloop is not "
                "installed; using the default event loop"
            )

    async def main() -> int:
        server = ReplicaServer(
            args.name,
            peers=list(peers) + [args.name],
            data_dir=pathlib.Path(args.data),
            method=args.method,
            fsync=args.fsync,
            batch_size=args.batch_size,
            window=args.window,
            wire=args.wire,
            fsync_interval=args.fsync_interval,
            snapshot_interval=args.snapshot_interval,
            backlog_limit=args.backlog_limit,
            catchup=not args.no_catchup,
            catchup_lag=args.catchup_lag,
            heartbeat_interval=args.heartbeat_interval,
            suspect_after=args.suspect_after,
        )
        port = await server.bind(args.host, args.port)
        server.set_peers(peers)
        server.start_channels()
        print(
            "replica %s (%s) serving on %s:%d, data in %s"
            % (args.name, args.method, args.host, port, args.data)
        )
        try:
            while True:
                await asyncio.sleep(3600)
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return 0


def _cmd_live_demo(args: argparse.Namespace) -> int:
    import asyncio
    import time

    from .live.cluster import LiveCluster

    async def main() -> int:
        cluster = LiveCluster(n_sites=args.sites, method=args.method)
        await cluster.start()
        print(
            "booted %d-replica %s cluster on localhost: %s"
            % (
                args.sites,
                args.method.upper(),
                ", ".join(
                    "%s=%s:%d" % (n, h, p)
                    for n, (h, p) in sorted(cluster.addrs.items())
                ),
            )
        )
        clients = [await cluster.client(name) for name in cluster.names]
        # RITU admits only read-independent (blind) writes; every other
        # method gets the commutative increment workload.
        if args.method in ("ritu", "ritu-mv"):
            submit = lambda c, i: c.write("account%d" % (i % 4), i)
        else:
            submit = lambda c, i: c.increment("account%d" % (i % 4), 1)
        t0 = time.monotonic()
        await asyncio.gather(
            *(
                submit(clients[i % len(clients)], i)
                for i in range(args.updates)
            )
        )
        elapsed = time.monotonic() - t0
        print(
            "%d concurrent update ETs committed in %.3fs (%.0f ET/s)"
            % (args.updates, elapsed, args.updates / max(elapsed, 1e-9))
        )
        bounded = await clients[1].query(["account0", "account1"])
        print(
            "bounded query at site1: values=%r inconsistency=%d"
            % (bounded["values"], bounded["inconsistency"])
        )
        await cluster.settle()
        converged = await cluster.converged()
        values = (await cluster.site_values())[cluster.names[0]]
        print("settled; converged=%s, state=%r" % (converged, values))
        await cluster.stop()
        return 0 if converged else 1

    return asyncio.run(main())


def _cmd_chaos(args: argparse.Namespace) -> int:
    artifacts_dir = (
        pathlib.Path(args.artifacts) if args.artifacts else None
    )
    if args.scenario == "migrate":
        from .live.chaos import MigrateConfig, run_migrate_sync

        migrate_config = MigrateConfig(
            seed=args.seed,
            n_shards=args.shards,
            method=args.method,
            crash_during=not args.no_crash,
        )
        migrate_report = run_migrate_sync(
            migrate_config, artifacts_dir=artifacts_dir
        )
        print(migrate_report.render())
        return 0 if migrate_report.ok else 1
    if args.scenario == "elect":
        from .live.chaos import ElectConfig, run_elect_sync

        elect_config = ElectConfig(
            seed=args.seed,
            n_sites=args.sites,
            n_updates_during=args.updates,
        )
        elect_report = run_elect_sync(
            elect_config, artifacts_dir=artifacts_dir
        )
        print(elect_report.render())
        return 0 if elect_report.ok else 1
    if args.scenario == "wan":
        from .live.chaos import WanConfig, run_wan_sync

        wan_config = WanConfig(
            seed=args.seed,
            method=args.method,
            n_updates_before=args.updates,
        )
        wan_report = run_wan_sync(
            wan_config, artifacts_dir=artifacts_dir
        )
        print(wan_report.render())
        return 0 if wan_report.ok else 1
    if args.scenario == "saga":
        from .live.chaos import SagaConfig, run_saga_sync

        saga_config = SagaConfig(
            seed=args.seed,
            n_sites=args.sites,
            n_sagas=args.sagas,
            steps_per_saga=args.saga_steps,
            crash=not args.no_crash,
            wipe=not args.no_wipe,
        )
        saga_report = run_saga_sync(
            saga_config, artifacts_dir=artifacts_dir
        )
        print(saga_report.render())
        return 0 if saga_report.ok else 1
    if args.scenario == "rejoin":
        from .live.chaos import RejoinConfig, run_rejoin_sync

        rejoin_config = RejoinConfig(
            seed=args.seed,
            n_sites=args.sites,
            method=args.method,
            wipe=not args.no_wipe,
            n_updates_before=args.updates,
            n_updates_during=args.updates,
        )
        rejoin_report = run_rejoin_sync(
            rejoin_config, artifacts_dir=artifacts_dir
        )
        print(rejoin_report.render())
        return 0 if rejoin_report.ok else 1
    from .live.chaos import ChaosConfig, run_chaos_sync

    config = ChaosConfig(
        seed=args.seed,
        n_sites=args.sites,
        method=args.method,
        n_updates=args.updates,
        n_queries=args.queries,
        workload_duration=args.duration,
        crash=not args.no_crash,
        batch_size=args.batch_size,
        window=args.window,
    )
    report = run_chaos_sync(config, artifacts_dir=artifacts_dir)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_migrate(args: argparse.Namespace) -> int:
    """Ask a sharded deployment's admin endpoint to live-migrate one
    shard onto a fresh replica group; prints the new shard map."""
    import asyncio
    import json as json_mod

    from .live.shard import shard_admin_request

    async def main() -> int:
        reply = await shard_admin_request(
            (args.host, args.admin_port),
            "migrate",
            timeout=args.timeout,
            shard=args.shard,
        )
        print(json_mod.dumps(reply["map"], indent=2, sort_keys=True))
        return 0

    return asyncio.run(main())


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Ask one live replica to checkpoint + compact, via the
    ``snapshot`` verb."""
    import asyncio
    import json as json_mod

    from .live.client import LiveClient

    async def main() -> int:
        client = await LiveClient.connect(
            args.host, args.port, reconnect=False, request_timeout=60.0
        )
        try:
            result = await client.snapshot()
        finally:
            await client.close()
        print(json_mod.dumps(result, indent=2, sort_keys=True))
        return 0

    return asyncio.run(main())


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop zipfian load against a live deployment (or an
    in-process cluster booted for the run)."""
    import json as json_mod

    from .workload.loadgen import LoadgenConfig, run_loadgen_sync

    addrs = None
    if args.addr:
        addrs = []
        for item in args.addr:
            host, _, port = item.rpartition(":")
            addrs.append((host or "127.0.0.1", int(port)))
    config = LoadgenConfig(
        users=args.users,
        think_time=args.think_time,
        duration=args.duration,
        rate=args.rate,
        keys=args.keys,
        zipf_s=args.zipf,
        write_fraction=args.write_fraction,
        epsilon=args.epsilon,
        connections=args.connections,
        session_pool=args.sessions,
        seed=args.seed,
        sites=args.sites,
        method=args.method,
        addrs=addrs,
    )
    report = run_loadgen_sync(config)
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json_mod.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        print("wrote %s" % args.json)
    return 0


def _cmd_metrics_dump(args: argparse.Namespace) -> int:
    """Scrape one live replica's ``metrics`` verb and print it."""
    import asyncio
    import json as json_mod

    from .live.client import LiveClient

    async def main() -> int:
        client = await LiveClient.connect(
            args.host, args.port, reconnect=False, request_timeout=10.0
        )
        try:
            scrape = await client.metrics()
        finally:
            await client.close()
        if args.format == "prom":
            sys.stdout.write(scrape["prometheus"])
        else:
            print(
                json_mod.dumps(
                    {
                        "site": scrape["site"],
                        "metrics": scrape["metrics"],
                        "trace_recorded": scrape["trace_recorded"],
                        "trace_dropped": scrape["trace_dropped"],
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        return 0

    return asyncio.run(main())


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the experiments of Pu & Leff (SIGMOD 1991).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run experiments by id (or 'all')")
    run.add_argument("ids", nargs="+", metavar="ID")
    run.add_argument(
        "-o", "--out", metavar="DIR", default=None,
        help="also save each experiment's table to DIR/<ID>.txt",
    )
    serve = sub.add_parser(
        "serve", help="run one live replica server (asyncio TCP)"
    )
    serve.add_argument(
        "--name", default=None,
        help="this site's name (single-replica mode)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument(
        "--peers", default="",
        help="comma-separated name=host:port peer listing",
    )
    serve.add_argument(
        "--data", default=None,
        help="durable queue / log directory (required unless --shards)",
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help="boot a sharded deployment instead: N replica groups in "
        "this process, plus an admin endpoint for live migration",
    )
    serve.add_argument(
        "--replicas", type=int, default=3,
        help="replicas per shard group (sharded mode)",
    )
    serve.add_argument(
        "--admin-port", type=int, default=0,
        help="admin endpoint port in sharded mode (0 = ephemeral)",
    )
    serve.add_argument(
        "--method", default="commu", choices=("commu", "ordup", "rowa", "ritu", "ritu-mv", "compe")
    )
    serve.add_argument(
        "--fsync", action="store_true",
        help="fsync durable logs on every append",
    )
    serve.add_argument(
        "--batch-size", type=int, default=32,
        help="max MSets coalesced into one propagation frame",
    )
    serve.add_argument(
        "--window", type=int, default=4,
        help="max batch frames in flight per peer channel",
    )
    serve.add_argument(
        "--wire", default="bin1", choices=("bin1", "json"),
        help="preferred wire codec for peer channels; binary is "
        "negotiated per connection, with transparent JSON fallback "
        "for peers that don't speak it (json = never advertise)",
    )
    serve.add_argument(
        "--uvloop", action="store_true",
        help="use uvloop for the event loop when available "
        "(falls back to the default loop with a warning)",
    )
    serve.add_argument(
        "--fsync-interval", type=float, default=0.0,
        help="min seconds between fsyncs (0 = every group append; "
        "only meaningful with --fsync)",
    )
    serve.add_argument(
        "--snapshot-interval", type=float, default=0.0,
        help="seconds between automatic snapshots + log compaction "
        "(0 = manual only, via the snapshot verb)",
    )
    serve.add_argument(
        "--backlog-limit", type=int, default=0,
        help="per-channel durable backlog above which client updates "
        "are refused with OVERLOADED (0 = unlimited)",
    )
    serve.add_argument(
        "--no-catchup", action="store_true",
        help="disable anti-entropy snapshot catch-up (recover by "
        "channel redelivery / full log replay only)",
    )
    serve.add_argument(
        "--catchup-lag", type=int, default=0,
        help="receiver lag (records) past which a sender prefers "
        "snapshot catch-up over channel resend (0 = only when the "
        "log cannot serve)",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=0.25,
        help="seconds between peer heartbeats (jittered +/-25%% "
        "per site)",
    )
    serve.add_argument(
        "--suspect-after", type=float, default=0.75,
        help="floor on the adaptive failure-detector timeout: a peer "
        "silent this long (or longer, on jittery links) is suspected",
    )
    demo = sub.add_parser(
        "live-demo", help="boot an in-process live cluster and drive it"
    )
    demo.add_argument("--sites", type=int, default=3)
    demo.add_argument(
        "--method", default="commu", choices=("commu", "ordup", "rowa", "ritu", "ritu-mv", "compe")
    )
    demo.add_argument("--updates", type=int, default=200)
    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection run asserting the ESR invariants",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--sites", type=int, default=3)
    chaos.add_argument(
        "--scenario", default="faults",
        choices=("faults", "rejoin", "migrate", "elect", "wan", "saga"),
        help="'faults' = drops/partition/crash (default); 'rejoin' = "
        "snapshot + compaction + disk-wipe anti-entropy rejoin; "
        "'migrate' = live shard cutover under routed write load "
        "(crash mid-migration unless --no-crash); 'elect' = kill the "
        "ORDUP sequencer, measure the failover blackout, fence the "
        "resurrected stale leader; 'wan' = two modeled WAN regions, "
        "full region partition, epsilon-bounded availability on both "
        "sides; 'saga' = COMPE compensation storm with a disk-wipe "
        "crash of one replica mid-storm (exact-convergence check)",
    )
    chaos.add_argument(
        "--sagas", type=int, default=10,
        help="saga scenario only: number of sagas submitted",
    )
    chaos.add_argument(
        "--saga-steps", type=int, default=3,
        help="saga scenario only: update steps per saga",
    )
    chaos.add_argument(
        "--shards", type=int, default=3,
        help="migrate scenario only: number of shards",
    )
    chaos.add_argument(
        "--no-wipe", action="store_true",
        help="rejoin/saga scenarios: keep the victim's disk (long "
        "downtime instead of disk loss)",
    )
    chaos.add_argument(
        "--method", default="commu", choices=("commu", "ordup", "rowa", "ritu", "ritu-mv", "compe")
    )
    chaos.add_argument("--updates", type=int, default=120)
    chaos.add_argument("--queries", type=int, default=36)
    chaos.add_argument(
        "--duration", type=float, default=4.0,
        help="seconds the workload is paced to span",
    )
    chaos.add_argument(
        "--no-crash", action="store_true",
        help="skip the crash/restart phase (keep drops/partition)",
    )
    chaos.add_argument(
        "--batch-size", type=int, default=32,
        help="propagation batch size for the cluster under test",
    )
    chaos.add_argument(
        "--window", type=int, default=4,
        help="in-flight batch window for the cluster under test",
    )
    chaos.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="persist per-site metrics (.prom, metrics.json) and the "
        "merged lifecycle trace (trace.jsonl) under DIR",
    )
    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop zipfian load driver: simulate 10^5-10^6 "
        "thinking users against a live replica group and report "
        "p50/p95/p99 latency and throughput",
    )
    loadgen.add_argument(
        "--users", type=int, default=100_000,
        help="simulated concurrent user population (sets the offered "
        "rate: users / think-time requests per second)",
    )
    loadgen.add_argument(
        "--think-time", type=float, default=50.0,
        help="mean seconds a user thinks between requests",
    )
    loadgen.add_argument(
        "--duration", type=float, default=4.0,
        help="seconds of offered load",
    )
    loadgen.add_argument(
        "--rate", type=float, default=None,
        help="override the offered rate (req/s) directly",
    )
    loadgen.add_argument("--keys", type=int, default=512)
    loadgen.add_argument(
        "--zipf", type=float, default=1.1, help="zipf skew of key access"
    )
    loadgen.add_argument(
        "--write-fraction", type=float, default=0.10,
        help="fraction of requests that are increments",
    )
    loadgen.add_argument(
        "--epsilon", type=float, default=8.0,
        help="inconsistency budget of bounded reads",
    )
    loadgen.add_argument(
        "--connections", type=int, default=8,
        help="pipelined client connections sharing the load",
    )
    loadgen.add_argument(
        "--sessions", type=int, default=10_000,
        help="sticky session-token pool bound",
    )
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument(
        "--sites", type=int, default=3,
        help="in-process cluster size (ignored with --addr)",
    )
    loadgen.add_argument(
        "--method", default="commu", choices=("commu", "ordup", "rowa", "ritu", "ritu-mv", "compe")
    )
    loadgen.add_argument(
        "--addr", action="append", default=None, metavar="HOST:PORT",
        help="connect to an existing deployment instead of booting an "
        "in-process cluster (repeat for failover addresses)",
    )
    loadgen.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the full report as JSON",
    )
    metrics_dump = sub.add_parser(
        "metrics-dump",
        help="scrape one live replica's metrics verb and print it",
    )
    metrics_dump.add_argument("--host", default="127.0.0.1")
    metrics_dump.add_argument("--port", type=int, required=True)
    metrics_dump.add_argument(
        "--format", default="prom", choices=("prom", "json"),
        help="Prometheus text (default) or the JSON mirror",
    )
    snapshot = sub.add_parser(
        "snapshot",
        help="make one live replica checkpoint + compact its logs now",
    )
    snapshot.add_argument("--host", default="127.0.0.1")
    snapshot.add_argument("--port", type=int, required=True)
    migrate = sub.add_parser(
        "migrate",
        help="live-migrate one shard of a sharded deployment onto a "
        "fresh replica group (epoch-fenced cutover)",
    )
    migrate.add_argument("--host", default="127.0.0.1")
    migrate.add_argument(
        "--admin-port", type=int, required=True,
        help="the sharded deployment's admin endpoint port",
    )
    migrate.add_argument(
        "--shard", type=int, required=True, help="shard index to move"
    )
    migrate.add_argument(
        "--timeout", type=float, default=120.0,
        help="cutover wall-clock budget in seconds",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "live-demo":
        return _cmd_live_demo(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "metrics-dump":
        return _cmd_metrics_dump(args)
    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "migrate":
        return _cmd_migrate(args)
    return _cmd_run(args.ids, args.out)


if __name__ == "__main__":
    sys.exit(main())
