"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro list                 # show experiment ids
    python -m repro run T1 E3            # run selected experiments
    python -m repro run all              # run everything (takes ~10 s)
    python -m repro run all -o results/  # also save one .txt per id
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .harness.experiments import EXPERIMENTS

_DESCRIPTIONS = {
    "T1": "Table 1: replica-control method characteristics",
    "T2": "Table 2: 2PL compatibility for ORDUP ETs",
    "T3": "Table 3: 2PL compatibility for COMMU ETs",
    "E1": "worked example log (1): epsilon-serial but not SR",
    "E2": "update latency vs number of replicas (async vs sync)",
    "E3": "query error vs epsilon limit",
    "E4": "divergence over time; convergence at quiescence",
    "E5": "ORDUP free vs global-order queries",
    "E6": "COMMU lock-counter limits",
    "E7": "RITU overwrite vs multiversion (VTNC)",
    "E8": "COMPE compensation strategy costs",
    "E9": "availability during a partition",
    "E10": "commit latency vs link latency",
}


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for eid in EXPERIMENTS:
        print("%-*s  %s" % (width, eid, _DESCRIPTIONS.get(eid, "")))
    return 0


def _cmd_run(ids: List[str], out_dir: Optional[str] = None) -> int:
    if ids == ["all"]:
        ids = list(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown),
              file=sys.stderr)
        print("use 'python -m repro list' to see the registry",
              file=sys.stderr)
        return 2
    destination = None
    if out_dir is not None:
        destination = pathlib.Path(out_dir)
        destination.mkdir(parents=True, exist_ok=True)
    for eid in ids:
        text, _ = EXPERIMENTS[eid]()
        print(text)
        print()
        if destination is not None:
            (destination / ("%s.txt" % eid)).write_text(text + "\n")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the experiments of Pu & Leff (SIGMOD 1991).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run experiments by id (or 'all')")
    run.add_argument("ids", nargs="+", metavar="ID")
    run.add_argument(
        "-o", "--out", metavar="DIR", default=None,
        help="also save each experiment's table to DIR/<ID>.txt",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args.ids, args.out)


if __name__ == "__main__":
    sys.exit(main())
