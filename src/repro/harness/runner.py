"""Experiment runner: assemble a system, drive a workload, summarize.

One :func:`run_experiment` call is one cell of a parameter sweep; the
benchmarks compose sweeps out of these.  Everything is deterministic in
``(method, config, spec, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.serializability import query_overlaps
from ..core.transactions import reset_tid_counter
from ..metrics.collector import RunMetrics, divergence_of, summarize
from ..replica.base import ReplicaControlMethod, ReplicatedSystem, SystemConfig
from ..replica.compe import CompensationBased
from ..workload.generator import WorkloadGenerator, WorkloadSpec, drive

__all__ = ["ExperimentResult", "run_experiment", "divergence_trace"]


@dataclass
class ExperimentResult:
    """Everything a benchmark needs from one run."""

    metrics: RunMetrics
    quiescence_time: float
    converged: bool
    one_copy_serializable: bool
    epsilon_serial: bool
    #: query tid -> measured inconsistency counter.
    query_inconsistency: Dict[int, int] = field(default_factory=dict)
    #: query tid -> size of its overlap as tracked online over full ET
    #: lifetimes (the paper's bound; the post-hoc log analysis in
    #: ``query_overlaps`` underestimates lifetimes and is reported
    #: separately in ``query_overlap_posthoc``).
    query_overlap_bound: Dict[int, int] = field(default_factory=dict)
    #: query tid -> overlap size recomputed from the merged history.
    query_overlap_posthoc: Dict[int, int] = field(default_factory=dict)
    system: Optional[ReplicatedSystem] = None

    @property
    def error_within_overlap(self) -> bool:
        """The paper's bound: measured error <= overlap, per query."""
        for tid, error in self.query_inconsistency.items():
            if error > self.query_overlap_bound.get(tid, 0):
                return False
        return True


def run_experiment(
    method_factory: Callable[[], ReplicaControlMethod],
    config: SystemConfig,
    spec: WorkloadSpec,
    workload_seed: int = 1,
    failures: Optional[Callable[[ReplicatedSystem], None]] = None,
    keep_system: bool = False,
) -> ExperimentResult:
    """Run one experiment cell to quiescence and summarize it.

    Args:
        method_factory: builds a fresh replica control method.
        config: system assembly parameters.
        spec: workload shape.
        workload_seed: RNG seed of the ET stream (distinct from the
            simulator seed in ``config``).
        failures: optional hook that schedules failure events against
            the freshly built system before the run starts.
        keep_system: retain the system object on the result (memory-
            heavy; used by tests that need post-run inspection).
    """
    reset_tid_counter()
    method = method_factory()
    system = ReplicatedSystem(method, config)
    if failures is not None:
        failures(system)
    generator = WorkloadGenerator(spec, sorted(system.sites), workload_seed)
    submissions = generator.generate()
    drive(
        system,
        submissions,
        compe_aborts=isinstance(method, CompensationBased),
    )
    quiescence = system.run_to_quiescence()
    metrics = summarize(system.results, quiescence)

    history = system.global_history()
    overlaps = query_overlaps(history)
    result = ExperimentResult(
        metrics=metrics,
        quiescence_time=quiescence,
        converged=system.converged(),
        one_copy_serializable=system.is_one_copy_serializable(),
        epsilon_serial=system.is_one_copy_serializable(),
        query_inconsistency={
            r.et.tid: r.inconsistency
            for r in system.results
            if r.et.is_query
        },
        query_overlap_bound={
            r.et.tid: len(r.overlap)
            for r in system.results
            if r.et.is_query
        },
        query_overlap_posthoc={tid: len(v) for tid, v in overlaps.items()},
        system=system if keep_system else None,
    )
    return result


def divergence_trace(
    method_factory: Callable[[], ReplicaControlMethod],
    config: SystemConfig,
    spec: WorkloadSpec,
    sample_every: float = 5.0,
    workload_seed: int = 1,
    failures: Optional[Callable[[ReplicatedSystem], None]] = None,
) -> Tuple[List[float], List[float], float]:
    """Sample replica divergence over time (benchmark E4).

    Returns ``(times, divergences, quiescence_time)``; the final sample
    is taken at quiescence and must be zero for a converged system.
    """
    reset_tid_counter()
    method = method_factory()
    system = ReplicatedSystem(method, config)
    if failures is not None:
        failures(system)
    generator = WorkloadGenerator(spec, sorted(system.sites), workload_seed)
    drive(
        system,
        generator.generate(),
        compe_aborts=isinstance(method, CompensationBased),
    )
    times: List[float] = []
    values: List[float] = []

    horizon = spec.count * spec.mean_interarrival * 3
    t = 0.0
    while t < horizon:
        system.run(until=t)
        times.append(t)
        values.append(divergence_of(system.site_values()))
        t += sample_every
    quiescence = system.run_to_quiescence()
    times.append(quiescence)
    values.append(divergence_of(system.site_values()))
    return times, values, quiescence
