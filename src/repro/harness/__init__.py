"""Experiment harness: runner, report rendering, registered experiments."""

from .report import format_cell, render_series, render_table
from .runner import ExperimentResult, divergence_trace, run_experiment
from .experiments import EXPERIMENTS
from .audit import AuditReport, audit

__all__ = [
    "EXPERIMENTS",
    "AuditReport",
    "ExperimentResult",
    "audit",
    "divergence_trace",
    "format_cell",
    "render_series",
    "render_table",
    "run_experiment",
]
