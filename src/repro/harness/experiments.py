"""Registered experiments: one per paper table plus analytic claims.

Each experiment function returns ``(text, data)``: a rendered table in
the paper's layout and the structured values benchmarks assert on.
The experiment ids match DESIGN.md section 4 and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.history import History
from ..core.locks import CLASSIC_2PL, COMMU_TABLE, ORDUP_TABLE
from ..core.operations import (
    IncrementOp,
    MultiplyOp,
    ReadOp,
    WriteOp,
)
from ..core.serializability import (
    is_epsilon_serial,
    is_serial,
    is_serializable,
)
from ..core.transactions import (
    EpsilonSpec,
    QueryET,
    UNLIMITED,
    UpdateET,
    reset_tid_counter,
)
from ..replica.commu import CommutativeOperations
from ..replica.compe import CompensationBased
from ..replica.coherency import (
    PrimaryCopy,
    QuorumConsensus,
    ReadOneWriteAll2PC,
)
from ..replica.ordup import OrderedUpdates
from ..replica.ritu import ReadIndependentUpdates
from ..replica.base import SystemConfig
from ..sim.network import ConstantLatency
from ..workload.generator import WorkloadSpec
from .report import render_series, render_table
from .runner import divergence_trace, run_experiment

__all__ = [
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_e1_example_log",
    "experiment_e2_scaleup",
    "experiment_e3_epsilon_sweep",
    "experiment_e4_convergence",
    "experiment_e5_ordup",
    "experiment_e6_commu",
    "experiment_e7_ritu",
    "experiment_e8_compe",
    "experiment_e9_availability",
    "experiment_e10_latency",
    "EXPERIMENTS",
]


_PAPER_METHODS = (
    OrderedUpdates,
    CommutativeOperations,
    ReadIndependentUpdates,
    CompensationBased,
)


# ----------------------------------------------------------------------
# T1 — Table 1: replica-control method characteristics
# ----------------------------------------------------------------------


def experiment_table1() -> Tuple[str, Dict[str, Dict[str, str]]]:
    """Regenerate Table 1 from the methods' trait declarations.

    The traits are cross-checked elsewhere (tests probe the behaviors);
    here we render the live declarations in the paper's layout.
    """
    data: Dict[str, Dict[str, str]] = {}
    for cls in _PAPER_METHODS:
        traits = cls.traits
        data[traits.name] = {
            "Kind of Restriction": traits.restriction,
            "Applicability": traits.direction.capitalize() + "s",
            "Asynchronous Propagation": (
                "Query & Update"
                if traits.async_update_propagation
                else "Query only"
            ),
            "Sorting Time": traits.sorting_time,
        }
    names = [cls.traits.name for cls in _PAPER_METHODS]
    dims = [
        "Kind of Restriction",
        "Applicability",
        "Asynchronous Propagation",
        "Sorting Time",
    ]
    rows = [[data[name][dim] for name in names] for dim in dims]
    text = render_table(
        "Table 1: Replica-Control Methods", names, rows, row_labels=dims
    )
    return text, data


# ----------------------------------------------------------------------
# T2/T3 — Tables 2 and 3: 2PL compatibility for ETs
# ----------------------------------------------------------------------


def experiment_table2() -> Tuple[str, List[Tuple[str, List[str]]]]:
    """Table 2 derived from the live ORDUP lock table."""
    rows = ORDUP_TABLE.rows()
    text = render_table(
        "Table 2: 2PL Compatibility for ORDUP ETs",
        ["RU", "WU", "RQ"],
        [cells for _, cells in rows],
        row_labels=[label for label, _ in rows],
    )
    return text, rows


def experiment_table3() -> Tuple[str, List[Tuple[str, List[str]]]]:
    """Table 3 derived from the live COMMU lock table."""
    rows = COMMU_TABLE.rows()
    text = render_table(
        "Table 3: 2PL Compatibility for COMMU ETs",
        ["RU", "WU", "RQ"],
        [cells for _, cells in rows],
        row_labels=[label for label, _ in rows],
    )
    return text, rows


# ----------------------------------------------------------------------
# E1 — the paper's worked example log (1)
# ----------------------------------------------------------------------


def experiment_e1_example_log() -> Tuple[str, Dict[str, bool]]:
    """Check the paper's log (1): epsilon-serial but not serial.

    R1(a) W1(b) W2(b) R3(a) W2(a) R3(b) with U1 = {R1(a), W1(b)},
    U2 = {W2(b), W2(a)}, Q3 = {R3(a), R3(b)}.
    """
    reset_tid_counter()
    u1 = UpdateET([ReadOp("a"), WriteOp("b", 1)])
    u2 = UpdateET([WriteOp("b", 2), WriteOp("a", 2)])
    q3 = QueryET([ReadOp("a"), ReadOp("b")])
    history = History()
    for et in (u1, u2, q3):
        history.register(et)
    history.record(u1.tid, ReadOp("a"))
    history.record(u1.tid, WriteOp("b", 1))
    history.record(u2.tid, WriteOp("b", 2))
    history.record(q3.tid, ReadOp("a"))
    history.record(u2.tid, WriteOp("a", 2))
    history.record(q3.tid, ReadOp("b"))

    data = {
        "full_log_serial": is_serial(history),
        "full_log_sr": is_serializable(history),
        "epsilon_serial": is_epsilon_serial(history),
        "update_projection_serial": is_serial(history.without_queries()),
    }
    rows = [[k, v] for k, v in data.items()]
    text = render_table(
        "E1: paper log (1) R1(a)W1(b)W2(b)R3(a)W2(a)R3(b)",
        ["property", "value"],
        rows,
    )
    return text, data


# ----------------------------------------------------------------------
# Shared sweep helpers
# ----------------------------------------------------------------------


def _method_factories(
    latency: float = 1.0,
) -> Dict[str, Tuple[Callable[[], Any], str]]:
    """name -> (factory, workload style) for comparative sweeps.

    ROWA-2PC's lock timeout and retry backoff are scaled with link
    latency, as any deployed deadline-2PC would be — otherwise every
    prepare would time out before its messages even arrive.
    """

    def rowa() -> ReadOneWriteAll2PC:
        return ReadOneWriteAll2PC(
            lock_timeout=max(8.0, 6.0 * latency),
            backoff=max(4.0, 2.0 * latency),
        )

    return {
        "ORDUP": (OrderedUpdates, "commutative"),
        "COMMU": (CommutativeOperations, "commutative"),
        "RITU": (ReadIndependentUpdates, "blind"),
        "ROWA-2PC": (rowa, "commutative"),
        "QUORUM": (QuorumConsensus, "blind"),
        "PRIMARY": (PrimaryCopy, "commutative"),
    }


# ----------------------------------------------------------------------
# E2 — throughput/latency vs number of replicas
# ----------------------------------------------------------------------


def experiment_e2_scaleup(
    site_counts: Tuple[int, ...] = (2, 4, 8),
    count: int = 80,
    latency: float = 2.0,
) -> Tuple[str, Dict[str, Dict[int, Dict[str, float]]]]:
    """Async vs sync update latency/throughput as replicas grow."""
    data: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name, (factory, style) in _method_factories(latency).items():
        data[name] = {}
        for n in site_counts:
            config = SystemConfig(
                n_sites=n,
                seed=100 + n,
                latency=ConstantLatency(latency),
                initial=tuple(("x%d" % i, 0) for i in range(10)),
            )
            spec = WorkloadSpec(
                n_keys=10,
                count=count,
                query_fraction=0.3,
                style=style,
                epsilon=UNLIMITED,
                mean_interarrival=max(1.5, latency),
            )
            result = run_experiment(factory, config, spec, workload_seed=3)
            data[name][n] = {
                "update_latency": result.metrics.update_latency_mean,
                "throughput": result.metrics.throughput,
                "converged": float(result.converged),
            }
    xs = list(site_counts)
    series = {
        name: [round(data[name][n]["update_latency"], 2) for n in xs]
        for name in data
    }
    text = render_series(
        "E2: mean update commit latency vs replicas", "n_sites", xs, series
    )
    return text, data


# ----------------------------------------------------------------------
# E3 — epsilon sweep: error bounded, eps=0 gives SR
# ----------------------------------------------------------------------


def experiment_e3_epsilon_sweep(
    epsilons: Tuple[float, ...] = (0, 1, 2, 4, UNLIMITED),
    count: int = 100,
) -> Tuple[str, Dict[float, Dict[str, float]]]:
    """Measured query inconsistency vs epsilon limit (COMMU)."""
    data: Dict[float, Dict[str, float]] = {}
    for eps in epsilons:
        config = SystemConfig(
            n_sites=4,
            seed=7,
            latency=ConstantLatency(2.0),
            initial=tuple(("x%d" % i, 0) for i in range(6)),
        )
        spec = WorkloadSpec(
            n_keys=6,
            count=count,
            query_fraction=0.5,
            style="commutative",
            epsilon=eps,
            mean_interarrival=0.6,
        )
        result = run_experiment(
            CommutativeOperations, config, spec, workload_seed=11
        )
        data[eps] = {
            "max_inconsistency": float(result.metrics.inconsistency_max),
            "mean_inconsistency": result.metrics.inconsistency_mean,
            "waits": float(result.metrics.waits),
            "within_bound": result.metrics.within_bound_fraction,
            "error_within_overlap": float(result.error_within_overlap),
            "query_latency": result.metrics.query_latency_mean,
        }
    xs = [("inf" if e == UNLIMITED else int(e)) for e in epsilons]
    series = {
        "max_err": [data[e]["max_inconsistency"] for e in epsilons],
        "mean_err": [
            round(data[e]["mean_inconsistency"], 2) for e in epsilons
        ],
        "waits": [data[e]["waits"] for e in epsilons],
        "qry_lat": [round(data[e]["query_latency"], 2) for e in epsilons],
    }
    text = render_series(
        "E3: query error vs epsilon limit (COMMU)", "epsilon", xs, series
    )
    return text, data


# ----------------------------------------------------------------------
# E4 — divergence over time and convergence at quiescence
# ----------------------------------------------------------------------


def experiment_e4_convergence(
    count: int = 60,
) -> Tuple[str, Dict[str, Any]]:
    """Divergence rises during a partition, falls to zero at quiescence."""
    from ..sim.failures import FailureInjector, PartitionEvent

    def failures(system) -> None:
        injector = FailureInjector(
            system.sim, system.network, system.sites,
            on_heal=system.kick_queues,
        )
        injector.schedule_partition(
            PartitionEvent(
                (("site0", "site1"), ("site2", "site3")), at=10.0,
                duration=40.0,
            )
        )

    config = SystemConfig(
        n_sites=4,
        seed=21,
        latency=ConstantLatency(1.0),
        retry_interval=4.0,
        initial=tuple(("x%d" % i, 0) for i in range(6)),
    )
    spec = WorkloadSpec(
        n_keys=6,
        count=count,
        query_fraction=0.0,
        style="commutative",
        mean_interarrival=0.8,
    )
    times, divergences, quiescence = divergence_trace(
        CommutativeOperations,
        config,
        spec,
        sample_every=5.0,
        workload_seed=13,
        failures=failures,
    )
    data = {
        "times": times,
        "divergences": divergences,
        "quiescence": quiescence,
        "final_divergence": divergences[-1],
        "peak_divergence": max(divergences),
    }
    series = {"divergence": [round(d, 1) for d in divergences]}
    text = render_series(
        "E4: replica divergence over time (partition 10..50)",
        "t",
        [round(t, 1) for t in times],
        series,
    )
    return text, data


# ----------------------------------------------------------------------
# E5 — ORDUP: query concurrency and update SR under reordering
# ----------------------------------------------------------------------


def experiment_e5_ordup(count: int = 100) -> Tuple[str, Dict[str, Any]]:
    """ORDUP vs strict baseline: free queries, ordered updates."""
    data: Dict[str, Any] = {}
    for label, eps in (("free (eps=inf)", UNLIMITED), ("strict (eps=0)", 0)):
        config = SystemConfig(
            n_sites=4,
            seed=31,
            latency=ConstantLatency(2.0),
            initial=tuple(("x%d" % i, 0) for i in range(6)),
        )
        spec = WorkloadSpec(
            n_keys=6,
            count=count,
            query_fraction=0.5,
            style="mixed",
            epsilon=eps,
            mean_interarrival=0.7,
        )
        result = run_experiment(OrderedUpdates, config, spec, workload_seed=17)
        data[label] = {
            "query_latency": result.metrics.query_latency_mean,
            "max_inconsistency": result.metrics.inconsistency_max,
            "one_copy_sr": result.one_copy_serializable,
            "converged": result.converged,
            "waits": result.metrics.waits,
        }
    rows = [
        [
            label,
            round(d["query_latency"], 2),
            d["max_inconsistency"],
            d["one_copy_sr"],
            d["converged"],
            d["waits"],
        ]
        for label, d in data.items()
    ]
    text = render_table(
        "E5: ORDUP query modes (mixed non-commutative updates)",
        ["mode", "qry_lat", "max_err", "1SR", "converged", "waits"],
        rows,
    )
    return text, data


# ----------------------------------------------------------------------
# E6 — COMMU lock-counter limits and update throttling
# ----------------------------------------------------------------------


def experiment_e6_commu(
    limits: Tuple[float, ...] = (UNLIMITED, 2, 1),
    count: int = 100,
) -> Tuple[str, Dict[Any, Dict[str, float]]]:
    """Lock-counter divergence bounding, query- and update-side."""
    data: Dict[Any, Dict[str, float]] = {}
    for limit in limits:
        config = SystemConfig(
            n_sites=4,
            seed=41,
            latency=ConstantLatency(2.0),
            initial=tuple(("x%d" % i, 0) for i in range(4)),
        )
        spec = WorkloadSpec(
            n_keys=4,
            count=count,
            query_fraction=0.4,
            style="commutative",
            epsilon=2,
            mean_interarrival=0.5,
            skew=0.9,
        )
        result = run_experiment(
            lambda limit=limit: CommutativeOperations(update_limit=limit),
            config,
            spec,
            workload_seed=19,
        )
        data[limit] = {
            "update_latency": result.metrics.update_latency_mean,
            "query_waits": float(result.metrics.waits),
            "max_inconsistency": float(result.metrics.inconsistency_max),
            "throughput": result.metrics.throughput,
            "converged": float(result.converged),
        }
    xs = [("inf" if l == UNLIMITED else int(l)) for l in limits]
    series = {
        "upd_lat": [round(data[l]["update_latency"], 2) for l in limits],
        "waits": [data[l]["query_waits"] for l in limits],
        "max_err": [data[l]["max_inconsistency"] for l in limits],
    }
    text = render_series(
        "E6: COMMU with update lock-counter limits", "limit", xs, series
    )
    return text, data


# ----------------------------------------------------------------------
# E7 — RITU variants
# ----------------------------------------------------------------------


def experiment_e7_ritu(count: int = 100) -> Tuple[str, Dict[str, Any]]:
    """Overwrite vs multiversion RITU; VTNC bounding."""
    data: Dict[str, Any] = {}
    for versioning in ("overwrite", "multiversion"):
        for eps in (0, 2, UNLIMITED):
            config = SystemConfig(
                n_sites=4,
                seed=51,
                latency=ConstantLatency(2.0),
                initial=tuple(("x%d" % i, 0) for i in range(6)),
            )
            spec = WorkloadSpec(
                n_keys=6,
                count=count,
                query_fraction=0.5,
                style="blind",
                epsilon=eps,
                mean_interarrival=0.6,
            )
            result = run_experiment(
                lambda v=versioning: ReadIndependentUpdates(versioning=v),
                config,
                spec,
                workload_seed=23,
            )
            label = "%s eps=%s" % (
                versioning,
                "inf" if eps == UNLIMITED else int(eps),
            )
            data[label] = {
                "query_latency": result.metrics.query_latency_mean,
                "max_inconsistency": result.metrics.inconsistency_max,
                "waits": result.metrics.waits,
                "converged": result.converged,
                "one_copy_sr": result.one_copy_serializable,
            }
    rows = [
        [
            label,
            round(d["query_latency"], 2),
            d["max_inconsistency"],
            d["waits"],
            d["converged"],
        ]
        for label, d in data.items()
    ]
    text = render_table(
        "E7: RITU variants under blind-write workload",
        ["variant", "qry_lat", "max_err", "waits", "converged"],
        rows,
    )
    return text, data


# ----------------------------------------------------------------------
# E8 — COMPE compensation costs
# ----------------------------------------------------------------------


def experiment_e8_compe(
    count: int = 80,
) -> Tuple[str, Dict[str, Any]]:
    """Compensation strategy costs: commutative vs mixed logs."""
    data: Dict[str, Any] = {}
    for style in ("commutative", "mixed"):
        config = SystemConfig(
            n_sites=3,
            seed=61,
            latency=ConstantLatency(1.5),
            initial=tuple(("x%d" % i, 1) for i in range(5)),
        )
        spec = WorkloadSpec(
            n_keys=5,
            count=count,
            query_fraction=0.3,
            style=style,
            epsilon=UNLIMITED,
            mean_interarrival=1.0,
            abort_rate=0.25,
        )
        result = run_experiment(
            # Mixed (non-commutative) logs need ordered processing
            # underneath (COMPE over ORDUP, paper section 4.2).
            lambda s=style: CompensationBased(
                decision_delay=6.0, ordered=(s == "mixed")
            ),
            config,
            spec,
            workload_seed=29,
            keep_system=True,
        )
        assert result.system is not None
        stats = result.system.method.stats
        data[style] = {
            "aborts": stats.aborts,
            "direct": stats.direct_compensations,
            "rollback_replay": stats.rollback_replays,
            "undone": stats.operations_undone,
            "replayed": stats.operations_replayed,
            "post_hoc_queries": stats.post_hoc_inconsistent_queries,
            "converged": result.converged,
        }
        result.system = None
    rows = [
        [
            style,
            d["aborts"],
            d["direct"],
            d["rollback_replay"],
            d["undone"],
            d["replayed"],
            d["converged"],
        ]
        for style, d in data.items()
    ]
    text = render_table(
        "E8: COMPE compensation strategy costs (abort rate 25%)",
        ["log style", "aborts", "direct", "rb+replay", "undone",
         "replayed", "converged"],
        rows,
    )
    return text, data


# ----------------------------------------------------------------------
# E9 — availability under partition
# ----------------------------------------------------------------------


def experiment_e9_availability(
    count: int = 60,
) -> Tuple[str, Dict[str, Dict[str, float]]]:
    """Update progress during a partition: async vs sync methods."""
    from ..sim.failures import FailureInjector, PartitionEvent

    partition_start, partition_end = 5.0, 65.0

    def failures(system) -> None:
        injector = FailureInjector(
            system.sim, system.network, system.sites,
            on_heal=system.kick_queues,
        )
        injector.schedule_partition(
            PartitionEvent(
                (("site0", "site1"), ("site2", "site3")),
                at=partition_start,
                duration=partition_end - partition_start,
            )
        )

    data: Dict[str, Dict[str, float]] = {}
    for name, (factory, style) in _method_factories().items():
        config = SystemConfig(
            n_sites=4,
            seed=71,
            latency=ConstantLatency(1.0),
            retry_interval=4.0,
            initial=tuple(("x%d" % i, 0) for i in range(6)),
        )
        spec = WorkloadSpec(
            n_keys=6,
            count=count,
            query_fraction=0.0,
            style=style,
            mean_interarrival=1.0,
        )
        result = run_experiment(
            factory, config, spec, workload_seed=31, failures=failures,
            keep_system=True,
        )
        assert result.system is not None
        in_partition = [
            r
            for r in result.system.results
            if partition_start <= r.start_time < partition_end
            and r.et.is_update
        ]
        committed_fast = sum(
            1
            for r in in_partition
            if r.finish_time <= partition_end and r.latency < 10.0
        )
        data[name] = {
            "updates_during_partition": float(len(in_partition)),
            "committed_before_heal": float(committed_fast),
            "availability": (
                committed_fast / len(in_partition) if in_partition else 1.0
            ),
            "converged": float(result.converged),
        }
        result.system = None
    rows = [
        [
            name,
            int(d["updates_during_partition"]),
            int(d["committed_before_heal"]),
            round(d["availability"], 2),
            bool(d["converged"]),
        ]
        for name, d in data.items()
    ]
    text = render_table(
        "E9: update availability during a 60s partition",
        ["method", "submitted", "fast-committed", "availability",
         "converged"],
        rows,
    )
    return text, data


# ----------------------------------------------------------------------
# E10 — link latency sweep
# ----------------------------------------------------------------------


def experiment_e10_latency(
    latencies: Tuple[float, ...] = (0.5, 2.0, 8.0, 32.0),
    count: int = 50,
) -> Tuple[str, Dict[str, Dict[float, float]]]:
    """Update commit latency as link latency grows: sync degrades."""
    data: Dict[str, Dict[float, float]] = {}
    for latency in latencies:
        for name, (factory, style) in _method_factories(latency).items():
            config = SystemConfig(
                n_sites=4,
                seed=81,
                latency=ConstantLatency(latency),
                initial=tuple(("x%d" % i, 0) for i in range(8)),
            )
            spec = WorkloadSpec(
                n_keys=8,
                count=count,
                query_fraction=0.0,
                style=style,
                # Measure per-update latency below saturation: offered
                # load scales down as links slow, like the paper's
                # "moderately high latency" federated setting.
                mean_interarrival=max(3.0, 2.0 * latency),
            )
            result = run_experiment(factory, config, spec, workload_seed=37)
            data.setdefault(name, {})[latency] = (
                result.metrics.update_latency_mean
            )
    series = {
        name: [round(data[name][l], 2) for l in latencies] for name in data
    }
    text = render_series(
        "E10: mean update commit latency vs link latency",
        "link_lat",
        list(latencies),
        series,
    )
    return text, data


#: Registry used by the CLI and by EXPERIMENTS.md regeneration.
EXPERIMENTS: Dict[str, Callable[[], Tuple[str, Any]]] = {
    "T1": experiment_table1,
    "T2": experiment_table2,
    "T3": experiment_table3,
    "E1": experiment_e1_example_log,
    "E2": experiment_e2_scaleup,
    "E3": experiment_e3_epsilon_sweep,
    "E4": experiment_e4_convergence,
    "E5": experiment_e5_ordup,
    "E6": experiment_e6_commu,
    "E7": experiment_e7_ritu,
    "E8": experiment_e8_compe,
    "E9": experiment_e9_availability,
    "E10": experiment_e10_latency,
}
