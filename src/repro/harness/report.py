"""ASCII table/series rendering for experiment output.

The benchmarks print their results in the same row/column layout the
paper uses for its tables, so EXPERIMENTS.md can be compared cell by
cell against the original.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["render_table", "render_series", "format_cell"]


def format_cell(value: Any) -> str:
    """Human-friendly cell formatting.

    ``None`` renders as ``-`` — "not measured" — so it cannot be
    mistaken for an empty-string artifact or a perfect score.
    """
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return "%.3f" % value
    if value is None:
        return "-"
    return str(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    row_labels: Optional[Sequence[str]] = None,
) -> str:
    """Render a fixed-width table with optional row labels."""
    body: List[List[str]] = []
    labels = list(row_labels) if row_labels is not None else None
    for i, row in enumerate(rows):
        cells = [format_cell(c) for c in row]
        if labels is not None:
            cells.insert(0, labels[i])
        body.append(cells)
    header = list(columns)
    if labels is not None:
        header.insert(0, "")
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, rule, line(header), rule]
    out.extend(line(row) for row in body)
    out.append(rule)
    return "\n".join(out)


def render_series(
    title: str,
    x_name: str,
    xs: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
) -> str:
    """Render parallel series (one figure) as a table with x first."""
    columns = [x_name] + sorted(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x] + [series[name][i] for name in sorted(series)]
        rows.append(row)
    return render_table(title, columns, rows)
