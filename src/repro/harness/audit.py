"""System audit: one call that checks every ESR guarantee.

``audit(system)`` inspects a finished (quiescent) replicated system
and verifies the paper's four pillars:

1. convergence — identical replica contents,
2. one-copy serializability of the update projection,
3. per-query epsilon bounds respected,
4. per-query error within its overlap.

Applications and tests use :meth:`AuditReport.assert_ok` as a single
tripwire; benchmarks use the report fields for their tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.transactions import TransactionID
from ..replica.base import ReplicatedSystem

__all__ = ["AuditReport", "audit"]


@dataclass
class AuditReport:
    """Result of auditing one quiescent replicated system."""

    converged: bool
    one_copy_serializable: bool
    #: query tids whose inconsistency exceeded their epsilon spec.
    epsilon_violations: List[TransactionID] = field(default_factory=list)
    #: query tids whose inconsistency exceeded their overlap.
    overlap_violations: List[TransactionID] = field(default_factory=list)
    queries_audited: int = 0
    updates_audited: int = 0

    @property
    def ok(self) -> bool:
        return (
            self.converged
            and self.one_copy_serializable
            and not self.epsilon_violations
            and not self.overlap_violations
        )

    def assert_ok(self) -> None:
        """Raise with a readable diagnosis when any guarantee failed."""
        if self.ok:
            return
        problems = []
        if not self.converged:
            problems.append("replicas did not converge")
        if not self.one_copy_serializable:
            problems.append("update projection is not 1SR")
        if self.epsilon_violations:
            problems.append(
                "queries over epsilon: %s" % self.epsilon_violations
            )
        if self.overlap_violations:
            problems.append(
                "queries over overlap bound: %s" % self.overlap_violations
            )
        raise AssertionError("ESR audit failed: " + "; ".join(problems))


def audit(system: ReplicatedSystem) -> AuditReport:
    """Audit a replicated system (meaningful once it is quiescent)."""
    report = AuditReport(
        converged=system.converged(),
        one_copy_serializable=system.is_one_copy_serializable(),
    )
    for result in system.results:
        if result.et.is_update:
            report.updates_audited += 1
            continue
        report.queries_audited += 1
        if not result.within_bound:
            report.epsilon_violations.append(result.et.tid)
        if result.inconsistency > len(result.overlap):
            report.overlap_violations.append(result.et.tid)
    return report
