"""Typed consistency surface shared by every read path.

The paper's pitch is that applications declare *how much* inconsistency
a read may import instead of re-deriving serializability conditions.
Historically that budget leaked through the clients as loose
``epsilon=`` / ``value_epsilon=`` kwargs; this module makes it a typed,
uniform surface accepted by ``read`` / ``read_many`` / ``query`` on the
sim client, the live client, and the shard router:

* :class:`Consistency` — the level of a read:

  - ``Consistency.STRICT`` — one-copy serializable (``epsilon = 0``);
    pins to the primary/sequencer and refuses honestly while degraded.
  - ``Consistency.BOUNDED(epsilon)`` — bounded-inconsistency ESR read;
    eligible for replica fan-out and the client read cache.
  - ``Consistency.CACHED`` — serve from the client cache while the
    entry is inside its TTL, regardless of the accumulated import
    estimate; falls through to a bounded read on a miss.
  - ``Consistency.SESSION`` — read-your-writes + monotonic-reads
    session guarantees via a :class:`SessionToken` carrying per-site
    applied frontiers, checked server-side (typed ``SESSION_STALE``
    refusal, retried at a fresher replica).

* :class:`ReadOptions` — everything a read may carry: the consistency
  level, a session token, a replica preference, and a timeout.

* :class:`SessionToken` — the portable frontier vector; ``encode()``
  and :meth:`SessionToken.decode` give a JSON wire format for
  cross-process handoff (documented in docs/LIVE.md).

The old kwargs still work on every backend but emit a
``DeprecationWarning`` (one release of grace)::

    value = client.read("balance", epsilon=2)          # deprecated
    value = client.read("balance", Consistency.BOUNDED(2))  # new
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from .core.transactions import EpsilonSpec, UNLIMITED

__all__ = [
    "BOUNDED",
    "CACHED",
    "Consistency",
    "ReadOptions",
    "STRICT",
    "SESSION",
    "SessionToken",
    "resolve_read_options",
]

#: Consistency level names (the ``Consistency.level`` vocabulary).
STRICT = "strict"
BOUNDED = "bounded"
CACHED = "cached"
SESSION = "session"

_LEVELS = frozenset({STRICT, BOUNDED, CACHED, SESSION})


class SessionToken:
    """A portable vector of per-site applied frontiers.

    ``frontiers`` maps site name -> the highest sequence number of
    that site's own updates this session has observed (either by
    committing them — read-your-writes — or by reading a reply that
    reflected them — monotonic reads).  A replica may serve a session
    read only while its applied frontier for every site named in the
    token is at least the token's entry; otherwise it refuses with the
    typed ``SESSION_STALE`` code and the client retries at a fresher
    replica.

    The wire format is plain JSON (``{"v": 1, "f": {site: seq}}``) so
    tokens survive cross-process handoff through any string channel.
    """

    __slots__ = ("frontiers",)

    WIRE_VERSION = 1

    def __init__(self, frontiers: Optional[Mapping[str, int]] = None) -> None:
        self.frontiers: Dict[str, int] = {
            str(site): int(seq) for site, seq in (frontiers or {}).items()
        }

    def merge(self, frontiers: Optional[Mapping[str, int]]) -> bool:
        """Max-merge observed frontiers into the token; True if it advanced."""
        if not frontiers:
            return False
        advanced = False
        for site, seq in frontiers.items():
            try:
                seq = int(seq)
            except (TypeError, ValueError):
                continue
            if seq > self.frontiers.get(str(site), 0):
                self.frontiers[str(site)] = seq
                advanced = True
        return advanced

    def observe_write(self, tid: str) -> bool:
        """Advance the token past one committed update's ``site:seq`` tid."""
        site, sep, seq = str(tid).rpartition(":")
        if not sep or not site:
            return False
        try:
            return self.merge({site: int(seq)})
        except ValueError:
            return False

    def dominated_by(self, frontiers: Mapping[str, int]) -> bool:
        """True when ``frontiers`` covers every entry of this token."""
        return all(
            int(frontiers.get(site, 0)) >= seq
            for site, seq in self.frontiers.items()
        )

    def copy(self) -> "SessionToken":
        return SessionToken(self.frontiers)

    def encode(self) -> str:
        """Serialize for cross-process handoff (see docs/LIVE.md)."""
        return json.dumps(
            {"v": self.WIRE_VERSION, "f": dict(sorted(self.frontiers.items()))},
            separators=(",", ":"),
        )

    @classmethod
    def decode(cls, text: str) -> "SessionToken":
        try:
            payload = json.loads(text)
            if int(payload.get("v", 0)) != cls.WIRE_VERSION:
                raise ValueError("unsupported token version %r" % payload.get("v"))
            return cls(payload.get("f", {}))
        except (TypeError, ValueError, AttributeError) as exc:
            raise ValueError("malformed session token: %s" % exc) from None

    def __bool__(self) -> bool:
        return bool(self.frontiers)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SessionToken)
            and self.frontiers == other.frontiers
        )

    def __repr__(self) -> str:
        return "SessionToken(%r)" % (self.frontiers,)


class Consistency:
    """A typed read-consistency level with its inconsistency budget.

    Use the canonical constructors::

        Consistency.STRICT          # epsilon = 0, primary-pinned
        Consistency.BOUNDED(4)      # import at most 4 concurrent updates
        Consistency.CACHED          # TTL-bound client-cache reads
        Consistency.SESSION         # read-your-writes / monotonic reads
    """

    __slots__ = ("level", "epsilon", "value_epsilon")

    # Populated after the class body (singletons need the class).
    STRICT: "Consistency"
    CACHED: "Consistency"
    SESSION: "Consistency"

    def __init__(
        self,
        level: str = BOUNDED,
        epsilon: float = UNLIMITED,
        value_epsilon: float = UNLIMITED,
    ) -> None:
        if level not in _LEVELS:
            raise ValueError(
                "unknown consistency level %r (expected one of %s)"
                % (level, ", ".join(sorted(_LEVELS)))
            )
        if level == STRICT:
            epsilon = 0.0
        self.level = level
        self.epsilon = epsilon
        self.value_epsilon = value_epsilon

    @staticmethod
    def BOUNDED(
        epsilon: float, value_epsilon: float = UNLIMITED
    ) -> "Consistency":
        """A bounded-inconsistency (ESR) read budget."""
        return Consistency(BOUNDED, epsilon, value_epsilon)

    def spec(self) -> EpsilonSpec:
        """The epsilon spec this level submits to the engine."""
        return EpsilonSpec(
            import_limit=self.epsilon, value_limit=self.value_epsilon
        )

    @property
    def is_strict(self) -> bool:
        return self.level == STRICT or self.spec().is_strict

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Consistency)
            and self.level == other.level
            and self.epsilon == other.epsilon
            and self.value_epsilon == other.value_epsilon
        )

    def __repr__(self) -> str:
        if self.level == STRICT:
            return "Consistency.STRICT"
        extras = []
        if self.epsilon != UNLIMITED:
            extras.append("epsilon=%r" % self.epsilon)
        if self.value_epsilon != UNLIMITED:
            extras.append("value_epsilon=%r" % self.value_epsilon)
        return "Consistency(%r%s)" % (
            self.level, (", " + ", ".join(extras)) if extras else ""
        )


Consistency.STRICT = Consistency(STRICT, 0.0)
Consistency.CACHED = Consistency(CACHED)
Consistency.SESSION = Consistency(SESSION)


@dataclass(frozen=True)
class ReadOptions:
    """Everything a read may carry, uniformly across backends.

    ``consistency``
        The :class:`Consistency` level (default: an unbounded ESR
        read, matching the historical no-kwargs behaviour).
    ``session``
        A :class:`SessionToken` to enforce (and advance).  Implied —
        and auto-created — inside ``client.session()`` blocks.
    ``prefer``
        Replica preference for the live client's fan-out:
        ``None``/``"auto"`` follows the client policy, ``"primary"``
        pins to the primary, ``"any"`` opts this read into
        staleness-weighted fan-out, a site name targets that replica.
    ``timeout``
        Per-read deadline in seconds (falls back to the client's
        default request timeout).
    """

    consistency: Consistency = field(default_factory=lambda: Consistency())
    session: Optional[SessionToken] = None
    prefer: Optional[str] = None
    timeout: Optional[float] = None

    def spec(self) -> EpsilonSpec:
        return self.consistency.spec()


def resolve_read_options(
    options: Union[ReadOptions, Consistency, None] = None,
    *,
    epsilon: Optional[float] = None,
    value_epsilon: Optional[float] = None,
    timeout: Optional[float] = None,
    caller: str = "read",
) -> ReadOptions:
    """Fold the new typed surface and the deprecated kwargs into one
    :class:`ReadOptions`.

    Every backend's ``read``/``read_many``/``query`` funnels through
    here, so deprecation behaviour stays identical across sim, live,
    and sharded clients: passing ``epsilon=``/``value_epsilon=`` still
    works but warns; combining them with a typed ``options`` argument
    is a hard error (ambiguous intent).
    """
    if isinstance(options, (int, float)) and not isinstance(options, bool):
        # Historical positional spelling: read("k", 2) meant epsilon=2.
        if epsilon is not None:
            raise TypeError(
                "%s(): epsilon passed both positionally and by keyword"
                % caller
            )
        epsilon, options = options, None
    legacy = epsilon is not None or value_epsilon is not None
    if legacy:
        if options is not None:
            raise TypeError(
                "%s(): pass either ReadOptions/Consistency or the "
                "deprecated epsilon/value_epsilon kwargs, not both" % caller
            )
        warnings.warn(
            "%s(epsilon=..., value_epsilon=...) is deprecated; pass "
            "Consistency.BOUNDED(epsilon) or ReadOptions(...) instead"
            % caller,
            DeprecationWarning,
            stacklevel=3,
        )
        return ReadOptions(
            consistency=Consistency(
                BOUNDED,
                UNLIMITED if epsilon is None else epsilon,
                UNLIMITED if value_epsilon is None else value_epsilon,
            ),
            timeout=timeout,
        )
    if options is None:
        return ReadOptions(timeout=timeout)
    if isinstance(options, Consistency):
        return ReadOptions(consistency=options, timeout=timeout)
    if isinstance(options, ReadOptions):
        if timeout is not None and options.timeout is None:
            return ReadOptions(
                consistency=options.consistency,
                session=options.session,
                prefer=options.prefer,
                timeout=timeout,
            )
        return options
    raise TypeError(
        "%s(): options must be ReadOptions or Consistency, got %r"
        % (caller, type(options).__name__)
    )
