"""COMMU — Commutative Operations (paper section 3.2).

"The idea behind the COMMU replica control method is the use of
operation semantics.  If the final result is equivalent to some serial
execution, then the actual execution order does not matter.  In
essence, we order updates at their completion time."

**MSet delivery** — no ordering restriction at all; MSets ride the
stable queues (needed only because "lost MSets cannot be recovered").

**MSet processing** — commutative update MSets apply asynchronously in
whatever order they arrive.  Submission rejects update ETs whose write
operations are not mutually commutative — that is the method's
operation-semantics restriction (Table 1).

**Divergence bounding** — lock-counters (the paper's device): an update
ET raises the lock-counter of every object it touches at a site from
the moment the site learns of the MSet until the site has applied it;
the *origin's* counters stay raised until the update has applied at
every replica, so origin-site queries see cluster-wide in-flight
inconsistency.  A query read of an object charges its counter once per
update ET currently holding the object's lock-counter; an exhausted
counter makes the query wait for the counters to drain (``waits`` in
the result counts these stalls).

Two variants, both from the paper:

* query-side limiting (default) — updates run freely, queries watch the
  counters ("the query ETs are responsible for determining their own
  inconsistency");
* update throttling (``update_limit``) — "if the lock-counter of an
  object exceeds a specified limit, then the update ET trying to write
  must either wait or abort": origins delay new MSets for hot objects
  until the counter drops.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from ..core.operations import ReadOp, commutes
from ..core.transactions import (
    EpsilonTransaction,
    ETResult,
    ETStatus,
    TransactionID,
    UNLIMITED,
)
from ..sim.site import Site
from .base import (
    DoneCallback,
    LockCounterSiteState,
    MethodTraits,
    QueryRunner,
    ReplicaControlMethod,
    ReplicatedSystem,
)
from .common import MethodRuntime
from .mset import MSet, MSetKind

__all__ = ["CommutativeOperations", "NonCommutativeError"]


class NonCommutativeError(ValueError):
    """Raised when an update ET's writes are not mutually commutative."""


#: Per-site COMMU state lives in the transport-agnostic
#: :class:`~repro.replica.base.LockCounterSiteState`, shared with the
#: live runtime's COMMU engine.
_SiteState = LockCounterSiteState


class CommutativeOperations(ReplicaControlMethod):
    """COMMU replica control."""

    traits = MethodTraits(
        name="COMMU",
        restriction="operation semantics",
        direction="forward",
        async_update_propagation=True,
        async_query_processing=True,
        sorting_time="doesn't matter",
    )

    def __init__(self, update_limit: float = UNLIMITED) -> None:
        """``update_limit`` enables the throttling variant."""
        self.update_limit = update_limit

    def attach(self, system: ReplicatedSystem) -> None:
        super().attach(system)
        self.runtime = MethodRuntime(len(system.sites))
        self.states: Dict[str, _SiteState] = {
            name: _SiteState() for name in system.sites
        }
        self._ets: Dict[TransactionID, EpsilonTransaction] = {}
        #: origin-side queue of throttled updates per key.
        self._throttled: List[Tuple[EpsilonTransaction, str, DoneCallback]] = []

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------

    @staticmethod
    def check_commutative(et: EpsilonTransaction) -> None:
        """Reject ETs violating the COMMU operation restriction.

        Reads inside update ETs are rejected too: a read creates R/W
        dependencies that do not commute with concurrent writes
        (Table 3's R_U/W_U cell is "Comm", and reads rarely commute
        with updates), which would break the method's premise that
        MSets can apply in any order.  Use ORDUP for read-modify-write
        updates.
        """
        if any(True for _ in et.reads()):
            raise NonCommutativeError(
                "ET %s mixes reads into a COMMU update; read-modify-"
                "write updates need ordered execution (ORDUP)" % et.tid
            )
        writes = list(et.writes())
        for a, b in itertools.combinations(writes, 2):
            if a.key == b.key and not commutes(a, b):
                raise NonCommutativeError(
                    "operations %r and %r of ET %s do not commute"
                    % (a, b, et.tid)
                )

    def submit_update(
        self, et: EpsilonTransaction, origin: str, on_done: DoneCallback
    ) -> None:
        self.check_commutative(et)
        if self._should_throttle(origin, et):
            # Update throttling variant: wait for counters to drop.
            self._throttled.append((et, origin, on_done))
            return
        self._launch_update(et, origin, on_done)

    def _should_throttle(self, origin: str, et: EpsilonTransaction) -> bool:
        if self._exceeds_export_limit(et):
            return True
        if self.update_limit == UNLIMITED:
            return False
        state = self.states[origin]
        return any(
            state.count(key) + 1 > self.update_limit for key in et.write_set
        )

    def _exceeds_export_limit(self, et: EpsilonTransaction) -> bool:
        """Update-side export bounding: defer while too many live
        queries would import this update's intermediate state."""
        limit = et.spec.export_limit
        if limit == UNLIMITED:
            return False
        exposed = self.runtime.tracker.queries_touching(et.write_set)
        return len(exposed) > limit

    def _launch_update(
        self, et: EpsilonTransaction, origin: str, on_done: DoneCallback
    ) -> None:
        self._ets[et.tid] = et
        start = self.system.sim.now
        self.runtime.update_submitted(et)
        keys = tuple(et.write_set)
        # The origin raises lock-counters for the whole propagation span
        # (it is the one site that knows the update is in flight
        # cluster-wide); remote sites raise on MSet receipt.
        self.states[origin].raise_counters(et.tid, keys)
        self.runtime.when_update_complete(
            et.tid, lambda: self._fully_applied(et.tid, origin, keys)
        )
        mset = MSet(et.tid, MSetKind.UPDATE, tuple(et.writes()), origin)
        self._apply_at(self.system.sites[origin], mset, remote=False)
        self.system.broadcast_mset(origin, mset)
        on_done(
            ETResult(
                et,
                status=ETStatus.COMMITTED,
                start_time=start,
                finish_time=self.system.sim.now,
                site=origin,
            )
        )

    def _fully_applied(
        self, tid: TransactionID, origin: str, keys: Tuple[str, ...]
    ) -> None:
        self.states[origin].release_counters(tid, keys)
        self._release_throttled()

    def _release_throttled(self) -> None:
        if not self._throttled:
            return
        ready = []
        still = []
        for entry in self._throttled:
            et, origin, on_done = entry
            if self._should_throttle(origin, et):
                still.append(entry)
            else:
                ready.append(entry)
        self._throttled = still
        for et, origin, on_done in ready:
            self._launch_update(et, origin, on_done)

    # -- message handling ---------------------------------------------------

    def handle_message(self, site: Site, mset: MSet) -> None:
        if mset.kind != MSetKind.UPDATE:
            raise ValueError("COMMU cannot handle %r" % mset.kind)
        self._apply_at(site, mset, remote=True)

    def _apply_at(self, site: Site, mset: MSet, remote: bool) -> None:
        state = self.states[site.name]
        if remote:
            state.raise_counters(mset.tid, mset.keys)
        executor = self.system.executors[site.name]
        duration = site.config.apply_time * max(len(mset.ops), 1)

        def apply() -> None:
            et = self._ets.get(mset.tid)
            for op in mset.ops:
                site.apply_op(mset.tid, op, et)
            state.note_applied(self.system.sim.now, mset.tid, mset.keys)
            if remote:
                state.release_counters(mset.tid, mset.keys)
            self.runtime.update_applied_at_site(mset.tid)
            self._release_throttled()

        executor.submit(duration, apply, label="commu-%s" % (mset.tid,))

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def submit_query(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        site = self.system.sites[site_name]
        state = self.states[site_name]
        counter = self.runtime.query_started(et)
        query_start = [self.system.sim.now]

        def admit(key: str):
            # Inconsistency sources: updates currently holding the
            # key's lock-counter here, plus concurrent updates already
            # applied to the key since the query began (mixed reads).
            sources = state.holders_of(key) | state.applied_since(
                key, query_start[0]
            )
            if not self.runtime.try_charge(et.tid, sources):
                return False, None  # restart after the blockers

            def read():
                value = site.read(et.tid, key)
                site.history.record(
                    et.tid, ReadOp(key), site_name, site.sim.now, et
                )
                return value

            return True, read

        def restart() -> None:
            # Re-serialize the query after the updates that blocked it:
            # a fresh start point clears the mixed-read history.
            query_start[0] = self.system.sim.now

        def done(result: ETResult) -> None:
            self.runtime.query_finished(et)
            # A finished query may unblock export-limited updates.
            self._release_throttled()
            on_done(result)

        QueryRunner(
            self.system,
            et,
            site,
            admit,
            done,
            inconsistency_of=lambda: counter.value,
            overlap_of=lambda: tuple(
                self.runtime.tracker.overlap_members(et.tid)
            ),
            restart_on_block=True,
            on_restart=restart,
        ).start()

    # ------------------------------------------------------------------

    def quiescent(self) -> bool:
        return not self.runtime.in_flight_updates() and not self._throttled
