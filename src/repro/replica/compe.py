"""COMPE — Compensation-based backward replica control (paper section 4).

Forward methods assume the update ET has committed before propagation.
COMPE instead lets sites run MSets *before* the global update commits
("for performance reasons, the system may start running MSets before
the global update is committed") and repairs with compensation when the
global update aborts.  Only operations that publish an inverse may run
under COMPE.

**MSet processing** — optimistic: a site applies an update MSet through
its operation log as soon as it arrives, recording undo information
(including overwritten values, section 4.2).  The site "must remember
the executed MSets until there is no risk of rollback" — the log is
truncated only after the global decision arrives.

**Compensation MSet delivery** — on a global abort each site compensates:

* if the log suffix after the aborted update commutes with its undo,
  the compensation applies directly (COMMU/RITU-style logs);
* otherwise the site performs the general Time-Warp-style
  rollback-and-replay of section 4.1 (the ``Inc/Mul`` worked example).

**Divergence bounding** — queries are charged conservatively for every
*undecided* update touching the keys they read (its compensation is
still possible: the paper's "take into account the number of potential
compensations when running query ETs"), plus COMMU-style mixed-read
charges for decided updates.  Because charging is conservative, an
actual compensation never surprises an active query.  Queries that
already finished cannot be re-charged ("they have left the system");
the method records them as *post-hoc inconsistent* — the quantity that
grows without bound when compensations are unlimited, reproduced by
benchmark E8.

A compensation budget (``max_compensations``) implements the paper's
first bounding strategy: once exhausted, new updates run pessimistically
(the site waits for the global decision before applying), so no further
after-the-fact inconsistency can be created.

Sagas (section 4.2): steps submitted through :meth:`submit_saga` keep
their "potential compensation" charge raised until the whole saga ends,
giving queries the conservative upper bound the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import Operation, ReadOp
from ..core.transactions import (
    EpsilonTransaction,
    ETResult,
    ETStatus,
    TransactionID,
)
from ..sim.site import Site
from .base import (
    DoneCallback,
    MethodTraits,
    QueryRunner,
    ReplicaControlMethod,
    ReplicatedSystem,
)
from .common import MethodRuntime
from .mset import MSet, MSetKind

__all__ = ["CompensationBased", "CompensationStats"]


@dataclass
class CompensationStats:
    """Counters reported by benchmark E8."""

    commits: int = 0
    aborts: int = 0
    direct_compensations: int = 0
    rollback_replays: int = 0
    operations_undone: int = 0
    operations_replayed: int = 0
    #: finished queries later found to have imported aborted updates.
    post_hoc_inconsistent_queries: int = 0
    pessimistic_updates: int = 0
    #: log records reclaimed once rollback risk expired (§4: "remember
    #: the executed MSets until there is no risk of rollback").
    log_records_reclaimed: int = 0


@dataclass
class _SiteState:
    """Per-site COMPE bookkeeping."""

    #: key -> undecided update tids applied (or arriving) here.
    undecided: Dict[str, Set[TransactionID]] = field(default_factory=dict)
    #: decided-update mixed-read history (COMMU-style).
    applied: Dict[str, List[Tuple[float, TransactionID]]] = field(
        default_factory=dict
    )
    #: aborts processed before their update MSet arrived: when the
    #: update finally shows up it must be discarded, not applied.
    dropped: Set[TransactionID] = field(default_factory=set)
    #: commits processed before their update MSet arrived (settled once
    #: the update applies).
    pending_commits: Set[TransactionID] = field(default_factory=set)
    #: ordered mode: next sequence number to execute / hold-back buffer.
    expected: int = 1
    holdback: Dict[int, "MSet"] = field(default_factory=dict)

    def mark_undecided(self, tid: TransactionID, keys: Tuple[str, ...]) -> None:
        for key in keys:
            self.undecided.setdefault(key, set()).add(tid)

    def mark_decided(self, tid: TransactionID, keys: Tuple[str, ...]) -> None:
        for key in keys:
            held = self.undecided.get(key)
            if held is not None:
                held.discard(tid)
                if not held:
                    self.undecided.pop(key, None)

    def undecided_on(self, key: str) -> Set[TransactionID]:
        return set(self.undecided.get(key, ()))

    def note_applied(
        self, time: float, tid: TransactionID, keys: Tuple[str, ...]
    ) -> None:
        for key in keys:
            self.applied.setdefault(key, []).append((time, tid))

    def applied_since(self, key: str, start: float) -> Set[TransactionID]:
        return {tid for t, tid in self.applied.get(key, ()) if t > start}


class CompensationBased(ReplicaControlMethod):
    """COMPE replica control."""

    traits = MethodTraits(
        name="COMPE",
        restriction="operation value",
        direction="backward",
        async_update_propagation=True,
        async_query_processing=True,
        sorting_time="N/A",
    )

    def __init__(
        self,
        decision_delay: float = 10.0,
        max_compensations: Optional[int] = None,
        ordered: bool = False,
    ) -> None:
        """Args:
            decision_delay: simulated time between optimistic submission
                and the global commit/abort decision.
            max_compensations: the paper's compensation budget; ``None``
                means unlimited (and unbounded post-hoc inconsistency).
            ordered: process update MSets in one global order (COMPE
                over ORDUP).  Required when update operations are not
                mutually commutative — section 4.2: unconstrained MSet
                processing with rollback of the whole log "is the case
                with ORDUP operations"; without an order, optimistic
                application of non-commutative MSets would itself
                diverge, aborts or not.
        """
        self.decision_delay = decision_delay
        self.max_compensations = max_compensations
        self.ordered = ordered
        self._order_counter = 0

    def attach(self, system: ReplicatedSystem) -> None:
        super().attach(system)
        self.runtime = MethodRuntime(len(system.sites))
        self.states: Dict[str, _SiteState] = {
            name: _SiteState() for name in system.sites
        }
        self.stats = CompensationStats()
        self._ets: Dict[TransactionID, EpsilonTransaction] = {}
        self._aborted: Set[TransactionID] = set()
        self._decided: Set[TransactionID] = set()
        #: finished queries' imported-update sets, for the post-hoc
        #: inconsistency statistic ("they have left the system").
        self._finished_imports: Dict[TransactionID, Set[TransactionID]] = {}
        self._post_hoc_counted: Set[TransactionID] = set()
        #: tids whose decision is deferred to a saga's end.
        self._saga_members: Dict[TransactionID, str] = {}
        self._undecided_count = 0

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------

    def _check_compensatable(self, et: EpsilonTransaction) -> None:
        if any(True for _ in et.reads()):
            raise ValueError(
                "ET %s reads inside a COMPE update; observations cannot "
                "be compensated — use ORDUP for read-modify-write" % et.tid
            )
        for op in et.writes():
            probe = op.inverse(prior_value=None)
            if probe is None:
                raise ValueError(
                    "operation %r of ET %s has no compensation" % (op, et.tid)
                )

    def submit_update(
        self,
        et: EpsilonTransaction,
        origin: str,
        on_done: DoneCallback,
        will_abort: bool = False,
    ) -> None:
        """Optimistically run ``et``; ``will_abort`` forces a global abort.

        ``will_abort`` stands in for whatever application/validation
        logic dooms the global update; the workload generator sets it
        according to its abort rate.
        """
        self._check_compensatable(et)
        self._ets[et.tid] = et
        start = self.system.sim.now
        if self._budget_exhausted():
            self._submit_pessimistic(et, origin, on_done, will_abort, start)
            return
        # Lifetime spans one application *and* one decision settlement
        # per replica: a site keeps charging queries for this update
        # until its local settle runs, so the update must stay in query
        # overlaps until the last settle — otherwise the overlap bound
        # (error <= overlap) would not hold for the counters.
        self.runtime.update_submitted(et, copies=2 * len(self.system.sites))
        self._undecided_count += 1
        order = None
        if self.ordered:
            self._order_counter += 1
            order = (self._order_counter, 0)
        mset = MSet(et.tid, MSetKind.UPDATE, tuple(et.writes()), origin, order)
        for state in self.states.values():
            # Conservative potential-compensation charge is visible at
            # every site as soon as the update is in flight.
            state.mark_undecided(et.tid, et.write_set)
        self._apply_at(self.system.sites[origin], mset)
        self.system.broadcast_mset(origin, mset)

        def decide() -> None:
            self._decide(et, origin, will_abort, on_done, start)

        if et.tid not in self._saga_members:
            self.system.sim.schedule(self.decision_delay, decide)

    def _note_abort(self, tid: TransactionID) -> None:
        """Record a compensation-causing abort and its fallout.

        Finished queries that imported this update become post-hoc
        inconsistent — the paper's "much harder" case, since those
        queries have already left the system.
        """
        self._aborted.add(tid)
        self.stats.aborts += 1
        for qtid, imported in self._finished_imports.items():
            if tid in imported and qtid not in self._post_hoc_counted:
                self._post_hoc_counted.add(qtid)
                self.stats.post_hoc_inconsistent_queries += 1

    def _budget_exhausted(self) -> bool:
        return (
            self.max_compensations is not None
            and self.stats.aborts >= self.max_compensations
        )

    def _submit_pessimistic(
        self,
        et: EpsilonTransaction,
        origin: str,
        on_done: DoneCallback,
        will_abort: bool,
        start: float,
    ) -> None:
        """Compensation budget exhausted: wait for the decision first."""
        self.stats.pessimistic_updates += 1

        def decide() -> None:
            if will_abort:
                self.stats.commits += 0  # aborted before any effect
                self._decided.add(et.tid)
                self._aborted.add(et.tid)
                on_done(
                    ETResult(
                        et,
                        status=ETStatus.ABORTED,
                        start_time=start,
                        finish_time=self.system.sim.now,
                        site=origin,
                    )
                )
                return
            self.runtime.update_submitted(et)
            self._decided.add(et.tid)
            self.stats.commits += 1
            order = None
            if self.ordered:
                self._order_counter += 1
                order = (self._order_counter, 0)
            mset = MSet(
                et.tid, MSetKind.UPDATE, tuple(et.writes()), origin, order
            )
            self._apply_at(self.system.sites[origin], mset)
            self.system.broadcast_mset(origin, mset)
            on_done(
                ETResult(
                    et,
                    status=ETStatus.COMMITTED,
                    start_time=start,
                    finish_time=self.system.sim.now,
                    site=origin,
                )
            )

        self.system.sim.schedule(self.decision_delay, decide)

    def _decide(
        self,
        et: EpsilonTransaction,
        origin: str,
        will_abort: bool,
        on_done: DoneCallback,
        start: float,
    ) -> None:
        """The global outcome arrives; broadcast it to every replica."""
        self._undecided_count -= 1
        self._decided.add(et.tid)
        kind = MSetKind.ABORT if will_abort else MSetKind.COMMIT
        if will_abort:
            self._note_abort(et.tid)
        else:
            self.stats.commits += 1
        decision = MSet(et.tid, kind, (), origin)
        self._handle_decision(self.system.sites[origin], decision)
        self.system.broadcast_mset(origin, decision)
        on_done(
            ETResult(
                et,
                status=(
                    ETStatus.COMPENSATED if will_abort else ETStatus.COMMITTED
                ),
                start_time=start,
                finish_time=self.system.sim.now,
                site=origin,
            )
        )

    # -- message handling ---------------------------------------------------

    def handle_message(self, site: Site, mset: MSet) -> None:
        if mset.kind == MSetKind.UPDATE:
            self._apply_at(site, mset)
        elif mset.kind in (MSetKind.COMMIT, MSetKind.ABORT):
            self._handle_decision(site, mset)
        else:
            raise ValueError("COMPE cannot handle %r" % mset.kind)

    def _apply_at(self, site: Site, mset: MSet) -> None:
        state = self.states[site.name]
        if self.ordered and mset.order is not None:
            # COMPE over ORDUP: hold back until the MSet's turn.
            seqno = mset.order[0]
            if seqno < state.expected:
                return  # duplicate
            state.holdback[seqno] = mset
            while state.expected in state.holdback:
                ready = state.holdback.pop(state.expected)
                state.expected += 1
                self._schedule_apply(site, ready)
            return
        self._schedule_apply(site, mset)

    def _schedule_apply(self, site: Site, mset: MSet) -> None:
        executor = self.system.executors[site.name]
        state = self.states[site.name]
        duration = site.config.apply_time * max(len(mset.ops), 1)

        def apply() -> None:
            if mset.tid in state.dropped:
                # The global abort overtook this MSet; discard it.
                state.dropped.discard(mset.tid)
                self.runtime.update_applied_at_site(mset.tid)
                return
            et = self._ets.get(mset.tid)
            for op in mset.ops:
                # logged=True records undo info for compensation.
                site.apply_op(mset.tid, op, et, logged=True)
            self.runtime.update_applied_at_site(mset.tid)
            if mset.tid in state.pending_commits:
                # The commit decision overtook the update; settle now.
                state.pending_commits.discard(mset.tid)
                keys = et.write_set if et is not None else ()
                state.note_applied(self.system.sim.now, mset.tid, keys)
                if mset.tid not in self._saga_members:
                    state.mark_decided(mset.tid, keys)
                self.runtime.update_applied_at_site(mset.tid)

        executor.submit(duration, apply, label="compe-%s" % (mset.tid,))

    def _handle_decision(self, site: Site, mset: MSet) -> None:
        executor = self.system.executors[site.name]
        state = self.states[site.name]
        et = self._ets.get(mset.tid)
        keys = et.write_set if et is not None else ()

        def settle() -> None:
            if mset.kind == MSetKind.COMMIT:
                if not site.oplog.records_of(mset.tid):
                    # Commit decision overtook the update MSet; settle
                    # once the update actually applies here.
                    state.pending_commits.add(mset.tid)
                    return
                state.note_applied(self.system.sim.now, mset.tid, keys)
                if mset.tid not in self._saga_members:
                    # Saga steps keep their potential-compensation
                    # charge raised until the whole saga ends (§4.2).
                    state.mark_decided(mset.tid, keys)
                self.runtime.update_applied_at_site(mset.tid)
                return
            # Abort: compensate.  The executor serializes this with MSet
            # application, so the log is stable while we repair it.
            if not site.oplog.records_of(mset.tid):
                # The update MSet has not been applied here yet (it is
                # still in flight); drop it on arrival instead.
                state.dropped.add(mset.tid)
                self._aborted.add(mset.tid)
                state.mark_decided(mset.tid, keys)
                self.runtime.update_applied_at_site(mset.tid)
                return
            if site.oplog.can_compensate_directly(mset.tid):
                applied = site.oplog.compensate_directly(mset.tid)
                self.stats.direct_compensations += 1
                self.stats.operations_undone += applied
            else:
                undone, replayed = site.oplog.rollback_and_replay(mset.tid)
                self.stats.rollback_replays += 1
                self.stats.operations_undone += undone
                self.stats.operations_replayed += replayed
            state.mark_decided(mset.tid, keys)
            self.runtime.update_applied_at_site(mset.tid)

        def settle_and_gc() -> None:
            settle()
            self._gc_log(site)

        # Decisions queue behind pending applications so an abort never
        # races ahead of its own update MSet within one site.
        executor.submit(
            site.config.apply_time, settle_and_gc, label="compe-dec"
        )

    def _gc_log(self, site: Site) -> None:
        """Reclaim log records no undecided update could roll back.

        Rollback-and-replay of T undoes everything from T's first
        record onward, so records below the low-water mark of the
        updates still *locally unsettled* can never be touched again
        and are dropped.  The at-risk set must be per-site (the local
        ``undecided`` marks), not the global decided set: a decision
        exists globally the instant the coordinator makes it, but this
        site's log must keep the records until the decision's settle
        action actually runs here.  Saga steps stay watch-listed until
        their saga concludes.
        """
        state = self.states[site.name]
        at_risk: Set[TransactionID] = set()
        for holders in state.undecided.values():
            at_risk.update(holders)
        at_risk.update(state.pending_commits)
        at_risk.update(self._saga_members)
        mark = site.oplog.low_water_mark(at_risk)
        self.stats.log_records_reclaimed += site.oplog.truncate_before(mark)

    # ------------------------------------------------------------------
    # Saga support
    # ------------------------------------------------------------------

    def submit_saga(
        self,
        saga_id: str,
        steps: Sequence[Tuple[EpsilonTransaction, bool]],
        origin: str,
        on_done: Callable[[List[ETResult]], None],
    ) -> None:
        """Run ``steps`` (ET, will_abort) sequentially as one saga.

        Each step's potential-compensation charge stays raised until the
        saga finishes; a failing step compensates all earlier steps (the
        classic saga pattern) and ends the saga.
        """
        results: List[ETResult] = []
        committed: List[EpsilonTransaction] = []
        for et, _ in steps:
            self._saga_members[et.tid] = saga_id

        def run(index: int) -> None:
            if index >= len(steps):
                conclude(aborting=False)
                return
            et, will_abort = steps[index]

            def step_done(result: ETResult) -> None:
                results.append(result)
                if result.status == ETStatus.COMMITTED:
                    committed.append(et)
                    run(index + 1)
                else:
                    backward(len(committed) - 1)

            self.submit_update(et, origin, step_done, will_abort=False)
            # Saga steps are decided by the saga, not a timer; decide
            # this step now-ish to keep the pipeline moving.
            self.system.sim.schedule(
                self.decision_delay,
                lambda: self._decide(
                    et, origin, will_abort, step_done, self.system.sim.now
                ),
            )

        def backward(index: int) -> None:
            if index < 0:
                conclude(aborting=True)
                return
            et = committed[index]
            decision = MSet(et.tid, MSetKind.ABORT, (), origin)
            self._note_abort(et.tid)
            self._handle_decision(self.system.sites[origin], decision)
            self.system.broadcast_mset(origin, decision)
            self.system.sim.schedule(
                self.system.config.site.apply_time,
                lambda: backward(index - 1),
            )

        def conclude(aborting: bool) -> None:
            # Saga over: release every step's retained charge at every
            # site (the paper's 'clearing the lock-counters only at the
            # end of the entire saga').  Aborted steps are left alone —
            # their in-flight ABORT settles clear the marks per site,
            # and clearing early would let the log GC reclaim records
            # the compensation still needs.
            for et, _ in steps:
                self._saga_members.pop(et.tid, None)
                if et.tid in self._aborted:
                    continue
                for state in self.states.values():
                    state.mark_decided(et.tid, et.write_set)
            on_done(results)

        run(0)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def submit_query(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        site = self.system.sites[site_name]
        state = self.states[site_name]
        counter = self.runtime.query_started(et)
        query_start = [self.system.sim.now]

        def admit(key: str):
            sources = state.undecided_on(key) | state.applied_since(
                key, query_start[0]
            )
            if not self.runtime.try_charge(et.tid, sources):
                return False, None

            def read():
                value = site.read(et.tid, key)
                site.history.record(
                    et.tid, ReadOp(key), site_name, site.sim.now, et
                )
                return value

            return True, read

        def restart() -> None:
            query_start[0] = self.system.sim.now

        def done(result: ETResult) -> None:
            self.runtime.query_finished(et)
            if counter.imported:
                self._finished_imports[et.tid] = set(counter.imported)
                if counter.imported & self._aborted:
                    self._post_hoc_counted.add(et.tid)
                    self.stats.post_hoc_inconsistent_queries += 1
            on_done(result)

        QueryRunner(
            self.system,
            et,
            site,
            admit,
            done,
            inconsistency_of=lambda: counter.value,
            overlap_of=lambda: tuple(
                self.runtime.tracker.overlap_members(et.tid)
            ),
            restart_on_block=True,
            on_restart=restart,
        ).start()

    # ------------------------------------------------------------------

    def quiescent(self) -> bool:
        if self.runtime.in_flight_updates():
            return False
        if any(state.holdback for state in self.states.values()):
            return False
        return self._undecided_count == 0
