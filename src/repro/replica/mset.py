"""MSets: the unit of asynchronous update propagation.

Paper section 2.2: "At each site, an ET is represented by a message set
or MSet. ... An update MSet is a set of replica maintenance operations
which propagates updates to object replicas."  MSets travel in stable
queues and are processed independently by each local system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..core.operations import Operation
from ..core.transactions import EpsilonTransaction, TransactionID
from ..sim.clocks import GlobalOrder

__all__ = ["MSet", "MSetKind"]


class MSetKind:
    """Message kinds exchanged by replica control methods."""

    UPDATE = "update"  #: apply these operations to the local replica
    COMMIT = "commit"  #: backward control: the global update committed
    ABORT = "abort"  #: backward control: compensate the global update
    PREPARE = "prepare"  #: synchronous baselines: 2PC round one
    VOTE = "vote"  #: synchronous baselines: participant reply
    DECISION = "decision"  #: synchronous baselines: 2PC round two


@dataclass(frozen=True)
class MSet:
    """A replica maintenance message.

    Attributes:
        tid: the update ET this MSet belongs to.
        kind: one of :class:`MSetKind`.
        ops: the write operations to apply (empty for control messages).
        origin: site that generated the MSet.
        order: total-order token (ORDUP) or origin timestamp (RITU);
            ``None`` for methods that do not sort.
        txn_number: global transaction number (RITU multiversion VTNC).
        info: method-specific extras (saga id, vote payloads, ...).
    """

    tid: TransactionID
    kind: str = MSetKind.UPDATE
    ops: Tuple[Operation, ...] = ()
    origin: str = ""
    order: Optional[GlobalOrder] = None
    txn_number: Optional[int] = None
    info: Tuple[Tuple[str, Any], ...] = ()

    def get_info(self, key: str, default: Any = None) -> Any:
        for k, v in self.info:
            if k == key:
                return v
        return default

    @property
    def keys(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for op in self.ops:
            seen.setdefault(op.key, None)
        return tuple(seen)
