"""Synchronous coherency-control baselines (1SR).

The paper contrasts replica control with "traditional coherency
control, which ensures synchronous mutual consistency under 1SR"
(section 2.2) and predicts that synchronous methods suffer "when
network links have very low bandwidth or moderately high latency"
(section 2.4).  Benchmarks E2/E9/E10 need those baselines to exist, so
three classical methods are implemented on the same substrate:

* :class:`ReadOneWriteAll2PC` — ROWA with two-phase commit: exclusive
  locks at every replica during the update window; queries take (and
  immediately hold to end of query) shared access, blocking on locked
  keys.  Lock acquisition times out with a NO vote; the coordinator
  aborts and retries with jittered backoff, which resolves distributed
  deadlocks probabilistically, as deadline-based 2PC implementations do.

* :class:`QuorumConsensus` — Gifford-style weighted voting with equal
  weights: an update reads version numbers from a write quorum, then
  installs the new version synchronously at a write quorum (all
  replicas are *sent* the write; commit waits only for the quorum, and
  stragglers apply asynchronously so the system still converges at
  quiescence).  Queries read a read quorum and return the newest
  version.  With ``r + w > n`` every read sees the latest committed
  write — 1SR for the single-object operations used here.

* :class:`PrimaryCopy` — all updates funnel through a primary that
  propagates synchronously to every backup before acknowledging;
  queries run at the primary (strict) or locally (stale reads allowed,
  quasi-copy style) depending on ``read_local``.

All three report query inconsistency 0 in strict modes — they pay with
latency and blocking instead, which is precisely the trade-off the
paper's asynchronous methods attack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.operations import ReadOp, is_write
from ..core.transactions import (
    EpsilonTransaction,
    ETResult,
    ETStatus,
    TransactionID,
)
from ..sim.site import Site
from .base import (
    DoneCallback,
    MethodTraits,
    ReplicaControlMethod,
    ReplicatedSystem,
)
from .mset import MSet, MSetKind

__all__ = ["ReadOneWriteAll2PC", "QuorumConsensus", "PrimaryCopy"]


# ----------------------------------------------------------------------
# ROWA + 2PC
# ----------------------------------------------------------------------


@dataclass
class _LockTable:
    """Minimal S/X lock table for one site."""

    exclusive: Dict[str, TransactionID] = field(default_factory=dict)
    shared: Dict[str, Set[TransactionID]] = field(default_factory=dict)

    def try_x(self, tid: TransactionID, key: str) -> bool:
        holder = self.exclusive.get(key)
        if holder is not None and holder != tid:
            return False
        if self.shared.get(key):
            others = self.shared[key] - {tid}
            if others:
                return False
        self.exclusive[key] = tid
        return True

    def try_s(self, tid: TransactionID, key: str) -> bool:
        holder = self.exclusive.get(key)
        if holder is not None and holder != tid:
            return False
        self.shared.setdefault(key, set()).add(tid)
        return True

    def release(self, tid: TransactionID) -> None:
        for key in [k for k, h in self.exclusive.items() if h == tid]:
            self.exclusive.pop(key)
        for key, holders in list(self.shared.items()):
            holders.discard(tid)
            if not holders:
                self.shared.pop(key)


class ReadOneWriteAll2PC(ReplicaControlMethod):
    """Synchronous ROWA with two-phase commit."""

    traits = MethodTraits(
        name="ROWA-2PC",
        restriction="atomic commitment",
        direction="synchronous",
        async_update_propagation=False,
        async_query_processing=False,
        sorting_time="at update",
    )

    RETRY_DELAY = 0.25

    def __init__(
        self, lock_timeout: float = 8.0, backoff: float = 4.0
    ) -> None:
        self.lock_timeout = lock_timeout
        self.backoff = backoff
        #: per-update retry attempt counts (exponential backoff input).
        self._attempts: Dict[TransactionID, int] = {}

    def attach(self, system: ReplicatedSystem) -> None:
        super().attach(system)
        self.locks: Dict[str, _LockTable] = {
            name: _LockTable() for name in system.sites
        }
        self._ets: Dict[TransactionID, EpsilonTransaction] = {}
        #: per-update coordinator state: votes / acks outstanding.
        self._rounds: Dict[TransactionID, Dict[str, Any]] = {}
        self.aborted_rounds = 0

    # -- update (coordinator side) -----------------------------------------

    def submit_update(
        self, et: EpsilonTransaction, origin: str, on_done: DoneCallback
    ) -> None:
        self._ets[et.tid] = et
        start = self.system.sim.now
        self._start_round(et, origin, on_done, start)

    def _start_round(
        self,
        et: EpsilonTransaction,
        origin: str,
        on_done: DoneCallback,
        start: float,
    ) -> None:
        names = sorted(self.system.sites)
        self._rounds[et.tid] = {
            "origin": origin,
            "votes": set(),
            "acks": set(),
            "no": False,
            "on_done": on_done,
            "start": start,
            "participants": set(names),
            "decided": False,
        }
        prepare = MSet(et.tid, MSetKind.PREPARE, tuple(et.writes()), origin)
        self._on_prepare(self.system.sites[origin], prepare)
        self.system.broadcast_mset(origin, prepare)

    def _vote(self, site: Site, mset: MSet, yes: bool) -> None:
        vote = MSet(
            mset.tid,
            MSetKind.VOTE,
            (),
            site.name,
            info=(("yes", yes),),
        )
        round_ = self._rounds.get(mset.tid)
        if round_ is not None and site.name == round_["origin"]:
            self._on_vote(self.system.sites[round_["origin"]], vote)
        else:
            origin = round_["origin"] if round_ else mset.origin
            self.system.send_mset(site.name, origin, vote)

    def _on_vote(self, site: Site, mset: MSet) -> None:
        round_ = self._rounds.get(mset.tid)
        if round_ is None or round_["decided"]:
            return
        if not mset.get_info("yes", False):
            round_["no"] = True
        round_["votes"].add(mset.origin)
        if round_["votes"] == round_["participants"]:
            self._complete_phase_one(mset.tid)

    def _complete_phase_one(self, tid: TransactionID) -> None:
        round_ = self._rounds[tid]
        round_["decided"] = True
        origin = round_["origin"]
        et = self._ets[tid]
        commit = not round_["no"]
        decision = MSet(
            tid,
            MSetKind.DECISION,
            tuple(et.writes()) if commit else (),
            origin,
            info=(("commit", commit),),
        )
        self._on_decision(self.system.sites[origin], decision)
        self.system.broadcast_mset(origin, decision)
        if not commit:
            # Abort: back off exponentially (with jitter) and retry the
            # whole round — the standard deadline-2PC recovery, which
            # resolves distributed deadlocks probabilistically.
            self.aborted_rounds += 1
            self._rounds.pop(tid, None)
            attempt = self._attempts.get(tid, 0) + 1
            self._attempts[tid] = attempt
            scale = min(2 ** (attempt - 1), 32)
            delay = self.backoff * scale * (
                0.5 + self.system.sim.rng.random()
            )
            self.system.sim.schedule(
                delay,
                lambda: self._start_round(
                    et, origin, round_["on_done"], round_["start"]
                ),
            )

    def _on_ack(self, mset: MSet) -> None:
        round_ = self._rounds.get(mset.tid)
        if round_ is None:
            return
        round_["acks"].add(mset.origin)
        if round_["acks"] == round_["participants"]:
            et = self._ets[mset.tid]
            self._attempts.pop(mset.tid, None)
            round_["on_done"](
                ETResult(
                    et,
                    status=ETStatus.COMMITTED,
                    start_time=round_["start"],
                    finish_time=self.system.sim.now,
                    site=round_["origin"],
                )
            )
            self._rounds.pop(mset.tid, None)

    # -- participant side -----------------------------------------------------

    def handle_message(self, site: Site, mset: MSet) -> None:
        if mset.kind == MSetKind.PREPARE:
            self._on_prepare(site, mset)
        elif mset.kind == MSetKind.VOTE:
            self._on_vote(site, mset)
        elif mset.kind == MSetKind.DECISION:
            self._on_decision(site, mset)
        elif mset.kind == "ack":
            self._on_ack(mset)
        else:
            raise ValueError("ROWA-2PC cannot handle %r" % mset.kind)

    def _on_prepare(self, site: Site, mset: MSet) -> None:
        table = self.locks[site.name]
        deadline = self.system.sim.now + self.lock_timeout
        keys = sorted(mset.keys)

        def try_lock() -> None:
            if site.crashed:
                return  # recover hook not modeled; round stalls
            if all(table.try_x(mset.tid, key) for key in keys):
                self._vote(site, mset, yes=True)
                return
            table.release(mset.tid)
            if self.system.sim.now >= deadline:
                self._vote(site, mset, yes=False)
                return
            self.system.sim.schedule(self.RETRY_DELAY, try_lock)

        try_lock()

    def _on_decision(self, site: Site, mset: MSet) -> None:
        commit = mset.get_info("commit", False)
        executor = self.system.executors[site.name]
        table = self.locks[site.name]

        def apply() -> None:
            if commit:
                et = self._ets.get(mset.tid)
                for op in mset.ops:
                    site.apply_op(mset.tid, op, et)
            table.release(mset.tid)
            if commit:
                round_ = self._rounds.get(mset.tid)
                ack = MSet(mset.tid, "ack", (), site.name)
                if round_ is not None and site.name == round_["origin"]:
                    self._on_ack(ack)
                else:
                    origin = round_["origin"] if round_ else mset.origin
                    self.system.send_mset(site.name, origin, ack)

        duration = site.config.apply_time * max(len(mset.ops), 1)
        executor.submit(duration, apply, label="2pc-%s" % (mset.tid,))

    # -- queries ---------------------------------------------------------------

    def submit_query(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        site = self.system.sites[site_name]
        table = self.locks[site_name]
        result = ETResult(et, start_time=self.system.sim.now, site=site_name)
        keys = [op.key for op in et.operations]
        index = [0]

        def step() -> None:
            if site.crashed:
                finish(ETStatus.ABORTED)
                return
            if index[0] >= len(keys):
                finish(ETStatus.COMMITTED)
                return
            key = keys[index[0]]
            if not table.try_s(et.tid, key):
                result.waits += 1
                self.system.sim.schedule(self.RETRY_DELAY, step)
                return

            def do_read() -> None:
                if site.crashed:
                    finish(ETStatus.ABORTED)
                    return
                result.values[key] = site.read(et.tid, key)
                site.history.record(
                    et.tid, ReadOp(key), site_name, site.sim.now, et
                )
                index[0] += 1
                step()

            self.system.sim.schedule(site.config.read_time, do_read)

        def finish(status: str) -> None:
            table.release(et.tid)
            result.status = status
            result.finish_time = self.system.sim.now
            result.inconsistency = 0  # strict 1SR: nothing imported
            on_done(result)

        step()

    def quiescent(self) -> bool:
        return not self._rounds


# ----------------------------------------------------------------------
# Quorum consensus (weighted voting, equal weights)
# ----------------------------------------------------------------------


class QuorumConsensus(ReplicaControlMethod):
    """Gifford-style quorum reads/writes with version numbers."""

    traits = MethodTraits(
        name="QUORUM",
        restriction="quorum intersection",
        direction="synchronous",
        async_update_propagation=False,
        async_query_processing=False,
        sorting_time="at update",
    )

    def __init__(
        self,
        read_quorum: Optional[int] = None,
        write_quorum: Optional[int] = None,
    ) -> None:
        self._r = read_quorum
        self._w = write_quorum

    def attach(self, system: ReplicatedSystem) -> None:
        super().attach(system)
        n = len(system.sites)
        self.n = n
        self.w = self._w if self._w is not None else n // 2 + 1
        self.r = self._r if self._r is not None else n - self.w + 1
        if self.r + self.w <= n:
            raise ValueError("quorums must intersect: r + w > n")
        if 2 * self.w <= n:
            raise ValueError("write quorums must intersect: 2w > n")
        #: per-site per-key version numbers: (counter, writer tid).
        self.versions: Dict[str, Dict[str, Tuple[int, int]]] = {
            name: {} for name in system.sites
        }
        self._ets: Dict[TransactionID, EpsilonTransaction] = {}

    # -- RPC helper over the raw network --------------------------------------

    def _rpc(
        self,
        src: str,
        dst: str,
        handler: Callable[[], Any],
        reply: Callable[[Any], None],
    ) -> None:
        """Request/response with persistent retry (quorum RPCs block
        while the destination is unreachable, which is the synchronous
        availability cost E9 measures)."""

        def attempt() -> None:
            self.system.network.send(
                src,
                dst,
                None,
                on_deliver=lambda _: respond(),
                on_drop=lambda _: self.system.sim.schedule(
                    self.system.config.retry_interval, attempt
                ),
            )

        def respond() -> None:
            value = handler()
            self.system.network.send(
                dst,
                src,
                value,
                on_deliver=reply,
                on_drop=lambda v: self.system.sim.schedule(
                    self.system.config.retry_interval, lambda: resend(v)
                ),
            )

        def resend(value: Any) -> None:
            self.system.network.send(
                dst,
                src,
                value,
                on_deliver=reply,
                on_drop=lambda v: self.system.sim.schedule(
                    self.system.config.retry_interval, lambda: resend(v)
                ),
            )

        attempt()

    # -- updates ---------------------------------------------------------------

    def submit_update(
        self, et: EpsilonTransaction, origin: str, on_done: DoneCallback
    ) -> None:
        for op in et.writes():
            if not op.read_independent:
                raise ValueError(
                    "quorum consensus (as modeled) applies versioned "
                    "overwrites; operation %r is not a blind write" % (op,)
                )
        self._ets[et.tid] = et
        start = self.system.sim.now
        names = sorted(self.system.sites)
        keys = tuple(et.write_set)
        acks: Set[str] = set()
        done = [False]
        #: phase 1 version replies: site -> {key: version}.
        version_replies: List[Dict[str, Tuple[int, int]]] = []
        new_version: Dict[str, Tuple[int, int]] = {}

        def deliver_write(name: str) -> None:
            site = self.system.sites[name]
            executor = self.system.executors[name]
            ops = tuple(et.writes())
            duration = site.config.apply_time * max(len(ops), 1)

            def apply() -> None:
                for op in ops:
                    # Version gating: an older write never clobbers a
                    # newer one, whatever the arrival order.
                    version = new_version[op.key]
                    if self.versions[name].get(op.key, (0, 0)) > version:
                        continue
                    site.apply_op(et.tid, op, et)
                    self.versions[name][op.key] = version

            executor.submit(duration, apply, label="quorum-%s" % (et.tid,))

        def write_to(name: str) -> None:
            if name == origin:
                deliver_write(name)
                note_ack(name)
                return

            def handler() -> Any:
                deliver_write(name)
                return True

            self._rpc(origin, name, handler, lambda _: note_ack(name))

        def note_ack(name: str) -> None:
            acks.add(name)
            if len(acks) >= self.w and not done[0]:
                done[0] = True
                on_done(
                    ETResult(
                        et,
                        status=ETStatus.COMMITTED,
                        start_time=start,
                        finish_time=self.system.sim.now,
                        site=origin,
                    )
                )

        def phase_two() -> None:
            # Pick a version strictly above everything a write quorum
            # has seen; the tid breaks ties between concurrent writers.
            for key in keys:
                top = max(
                    (reply.get(key, (0, 0)) for reply in version_replies),
                    default=(0, 0),
                )
                new_version[key] = (top[0] + 1, et.tid)
            # The write is *sent* everywhere; commit waits for w acks.
            for name in names:
                write_to(name)

        def collect_versions(payload: Any) -> None:
            version_replies.append(payload)
            if len(version_replies) == self.w:
                phase_two()

        # Phase 1: read current versions from a write quorum.
        for name in names[: self.w]:
            if name == origin:
                self.system.sim.call_now(
                    lambda n=name: collect_versions(
                        {k: self.versions[n].get(k, (0, 0)) for k in keys}
                    )
                )
            else:

                def handler(n=name) -> Any:
                    return {k: self.versions[n].get(k, (0, 0)) for k in keys}

                self._rpc(origin, name, handler, collect_versions)

    def handle_message(self, site: Site, mset: MSet) -> None:
        raise ValueError("QuorumConsensus uses RPCs, not MSets")

    # -- queries -----------------------------------------------------------------

    def submit_query(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        site = self.system.sites[site_name]
        result = ETResult(et, start_time=self.system.sim.now, site=site_name)
        keys = [op.key for op in et.operations]
        names = sorted(self.system.sites)
        index = [0]

        def step() -> None:
            if index[0] >= len(keys):
                result.status = ETStatus.COMMITTED
                result.finish_time = self.system.sim.now
                result.inconsistency = 0
                on_done(result)
                return
            key = keys[index[0]]
            replies: List[Tuple[int, Any]] = []
            answered = [0]

            def collect(payload: Any) -> None:
                replies.append(payload)
                answered[0] += 1
                if answered[0] == self.r:
                    version, value = max(replies, key=lambda p: p[0])
                    result.values[key] = value
                    site.history.record(
                        et.tid, ReadOp(key), site_name, site.sim.now, et
                    )
                    index[0] += 1
                    self.system.sim.schedule(site.config.read_time, step)

            # Ask r replicas (self first, then nearest by name order).
            targets = [site_name] + [n for n in names if n != site_name]
            for name in targets[: self.r]:
                if name == site_name:
                    value = site.read(et.tid, key)
                    version = self.versions[name].get(key, (0, 0))
                    self.system.sim.call_now(
                        lambda v=(version, value): collect(v)
                    )
                else:

                    def handler(n=name, k=key) -> Any:
                        peer = self.system.sites[n]
                        return (
                            self.versions[n].get(k, (0, 0)),
                            peer.read(et.tid, k),
                        )

                    self._rpc(site_name, name, handler, collect)

        step()

    def quiescent(self) -> bool:
        return True


# ----------------------------------------------------------------------
# Primary copy (eager propagation)
# ----------------------------------------------------------------------


class PrimaryCopy(ReplicaControlMethod):
    """All updates serialize through a primary; backups follow eagerly."""

    traits = MethodTraits(
        name="PRIMARY",
        restriction="single master",
        direction="synchronous",
        async_update_propagation=False,
        async_query_processing=False,
        sorting_time="at update",
    )

    def __init__(self, read_local: bool = False) -> None:
        """``read_local=True`` allows quasi-copy-style stale local reads."""
        self.read_local = read_local

    def attach(self, system: ReplicatedSystem) -> None:
        super().attach(system)
        self.primary = sorted(system.sites)[0]
        self._ets: Dict[TransactionID, EpsilonTransaction] = {}
        self._seq = itertools.count(1)
        #: backup name -> next sequence number to apply / hold-back map.
        self._expected: Dict[str, int] = {
            name: 1 for name in system.sites
        }
        self._holdback: Dict[str, Dict[int, Callable[[], None]]] = {
            name: {} for name in system.sites
        }

    def _apply_in_order(
        self, name: str, seqno: int, action: Callable[[], None]
    ) -> None:
        """Backups replay the primary's log in sequence order even if
        propagation RPCs arrive reordered by the network."""
        self._holdback[name][seqno] = action
        while self._expected[name] in self._holdback[name]:
            ready = self._holdback[name].pop(self._expected[name])
            self._expected[name] += 1
            ready()

    def submit_update(
        self, et: EpsilonTransaction, origin: str, on_done: DoneCallback
    ) -> None:
        self._ets[et.tid] = et
        start = self.system.sim.now
        names = sorted(self.system.sites)
        acks: Set[str] = set()
        seqno_box: List[int] = []

        def apply_at(name: str, then: Callable[[], None]) -> None:
            site = self.system.sites[name]
            executor = self.system.executors[name]
            ops = tuple(et.writes())
            duration = site.config.apply_time * max(len(ops), 1)

            def apply() -> None:
                for op in ops:
                    site.apply_op(et.tid, op, et)
                then()

            def enqueue() -> None:
                executor.submit(
                    duration, apply, label="primary-%s" % (et.tid,)
                )

            self._apply_in_order(name, seqno_box[0], enqueue)

        def forward_to_primary(then: Callable[[], None]) -> None:
            if origin == self.primary:
                then()
                return

            def attempt() -> None:
                self.system.network.send(
                    origin,
                    self.primary,
                    None,
                    on_deliver=lambda _: then(),
                    on_drop=lambda _: self.system.sim.schedule(
                        self.system.config.retry_interval, attempt
                    ),
                )

            attempt()

        def at_primary() -> None:
            # The primary assigns the global sequence number: updates
            # are totally ordered at the master.
            seqno_box.append(next(self._seq))

            def after_local() -> None:
                note_ack(self.primary)
                for name in names:
                    if name == self.primary:
                        continue
                    propagate(name)

            apply_at(self.primary, after_local)

        def propagate(name: str) -> None:
            def attempt() -> None:
                self.system.network.send(
                    self.primary,
                    name,
                    None,
                    on_deliver=lambda _: apply_at(name, lambda: ack(name)),
                    on_drop=lambda _: self.system.sim.schedule(
                        self.system.config.retry_interval, attempt
                    ),
                )

            attempt()

        def ack(name: str) -> None:
            def attempt() -> None:
                self.system.network.send(
                    name,
                    self.primary,
                    None,
                    on_deliver=lambda _: note_ack(name),
                    on_drop=lambda _: self.system.sim.schedule(
                        self.system.config.retry_interval, attempt
                    ),
                )

            attempt()

        def note_ack(name: str) -> None:
            acks.add(name)
            if acks == set(names):
                on_done(
                    ETResult(
                        et,
                        status=ETStatus.COMMITTED,
                        start_time=start,
                        finish_time=self.system.sim.now,
                        site=origin,
                    )
                )

        forward_to_primary(at_primary)

    def handle_message(self, site: Site, mset: MSet) -> None:
        raise ValueError("PrimaryCopy uses RPCs, not MSets")

    def submit_query(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        target = site_name if self.read_local else self.primary
        site = self.system.sites[target]
        result = ETResult(et, start_time=self.system.sim.now, site=target)
        keys = [op.key for op in et.operations]
        index = [0]

        def begin() -> None:
            step()

        def step() -> None:
            if index[0] >= len(keys):
                result.status = ETStatus.COMMITTED
                result.finish_time = self.system.sim.now
                result.inconsistency = 0
                on_done(result)
                return
            key = keys[index[0]]

            def do_read() -> None:
                result.values[key] = site.read(et.tid, key)
                site.history.record(
                    et.tid, ReadOp(key), target, site.sim.now, et
                )
                index[0] += 1
                step()

            self.system.sim.schedule(site.config.read_time, do_read)

        if target == site_name:
            begin()
        else:
            # Pay the round trip to the primary (strict mode).
            def attempt() -> None:
                self.system.network.send(
                    site_name,
                    target,
                    None,
                    on_deliver=lambda _: begin(),
                    on_drop=lambda _: self.system.sim.schedule(
                        self.system.config.retry_interval, attempt
                    ),
                )

            attempt()

    def quiescent(self) -> bool:
        return True
