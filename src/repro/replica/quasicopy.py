"""Quasi-copies (Alonso, Barbará & Garcia-Molina) — related-work baseline.

Paper section 5.2: "Quasi-copies offers a theoretical foundation for
increased read-only availability, but require that all updates be 1SR.
As a result, the primary copy is always consistent in the 1SR sense.
Inconsistency is only introduced because quasi-copies may lag the
primary copy. ... Quasi-copies uses a 'closeness' specification in the
trigger mechanism which propagates updates to quasi-copies."

This implementation provides the contrast the paper draws with ESR:

* all updates execute at a single primary (strictly serialized there),
* secondary sites hold *quasi-copies* refreshed by a trigger condition
  — the **coherency condition** of the original work:

  - ``version_lag``: refresh a key's quasi-copy when the primary is
    more than *w* versions ahead (arithmetic condition),
  - ``max_age``: refresh when the cached value is older than *t* time
    units (delay condition),

* queries read their local quasi-copy without coordination; their
  reported "inconsistency" is the number of keys read whose quasi-copy
  lagged the primary at read time (measured with simulation
  omniscience; a real system knows only the bound, which is exactly
  the paper's point: quasi-copies bound *staleness conditions*, ESR
  bounds and *meters* the error).

The benchmark compares this against COMMU's epsilon-bounded queries:
quasi-copies pay a per-update primary round trip and trigger-driven
refresh traffic; ESR pays nothing at the primary but admits bounded
query error everywhere.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.operations import ReadOp, is_write
from ..core.transactions import (
    EpsilonTransaction,
    ETResult,
    ETStatus,
    TransactionID,
)
from ..sim.site import Site
from .base import (
    DoneCallback,
    MethodTraits,
    ReplicaControlMethod,
    ReplicatedSystem,
)
from .mset import MSet

__all__ = ["QuasiCopies", "ClosenessSpec"]


@dataclass(frozen=True)
class ClosenessSpec:
    """The coherency ("closeness") condition of a quasi-copy.

    Attributes:
        version_lag: refresh once the primary is more than this many
            versions ahead of the cached copy (``None`` disables).
        max_age: refresh once the cached value is older than this many
            simulated time units (``None`` disables).
    """

    version_lag: Optional[int] = 2
    max_age: Optional[float] = None

    def __post_init__(self) -> None:
        if self.version_lag is not None and self.version_lag < 0:
            raise ValueError("version_lag must be non-negative")
        if self.max_age is not None and self.max_age <= 0:
            raise ValueError("max_age must be positive")


@dataclass
class _CacheEntry:
    """One key's quasi-copy state at a secondary."""

    version: int = 0
    refreshed_at: float = 0.0


class QuasiCopies(ReplicaControlMethod):
    """Primary-copy updates with trigger-refreshed quasi-copies."""

    traits = MethodTraits(
        name="QUASI",
        restriction="closeness condition",
        direction="synchronous",  # updates are 1SR at the primary
        async_update_propagation=False,
        async_query_processing=True,
        sorting_time="at update",
    )

    def __init__(self, closeness: Optional[ClosenessSpec] = None) -> None:
        self.closeness = closeness or ClosenessSpec()

    def attach(self, system: ReplicatedSystem) -> None:
        super().attach(system)
        names = sorted(system.sites)
        self.primary = names[0]
        #: per-key primary version counter.
        self._primary_version: Dict[str, int] = {}
        #: secondary -> key -> cache entry.
        self._cache: Dict[str, Dict[str, _CacheEntry]] = {
            name: {} for name in names if name != self.primary
        }
        self._ets: Dict[TransactionID, EpsilonTransaction] = {}
        self.refresh_count = 0
        #: the age sweep is armed whenever some quasi-copy is stale and
        #: disarms itself once everything is fresh, so quiescence stays
        #: reachable.
        self._sweep_armed = False

    # ------------------------------------------------------------------
    # Update path: strictly at the primary
    # ------------------------------------------------------------------

    def submit_update(
        self, et: EpsilonTransaction, origin: str, on_done: DoneCallback
    ) -> None:
        self._ets[et.tid] = et
        start = self.system.sim.now

        def at_primary() -> None:
            site = self.system.sites[self.primary]
            executor = self.system.executors[self.primary]
            ops = tuple(et.writes())
            duration = site.config.apply_time * max(len(ops), 1)

            def apply() -> None:
                for op in ops:
                    site.apply_op(et.tid, op, et)
                    self._primary_version[op.key] = (
                        self._primary_version.get(op.key, 0) + 1
                    )
                self._fire_triggers(et.write_set)
                on_done(
                    ETResult(
                        et,
                        status=ETStatus.COMMITTED,
                        start_time=start,
                        finish_time=self.system.sim.now,
                        site=self.primary,
                    )
                )

            executor.submit(duration, apply, label="quasi-%s" % (et.tid,))

        if origin == self.primary:
            at_primary()
        else:
            self._rpc(origin, self.primary, at_primary)

    def _rpc(self, src: str, dst: str, then: Callable[[], None]) -> None:
        def attempt() -> None:
            self.system.network.send(
                src,
                dst,
                None,
                on_deliver=lambda _: then(),
                on_drop=lambda _: self.system.sim.schedule(
                    self.system.config.retry_interval, attempt
                ),
            )

        attempt()

    # ------------------------------------------------------------------
    # Trigger mechanism
    # ------------------------------------------------------------------

    def _fire_triggers(self, keys: Tuple[str, ...]) -> None:
        """After a primary write: refresh quasi-copies out of closeness."""
        lag = self.closeness.version_lag
        if lag is not None:
            for secondary in self._cache:
                for key in keys:
                    entry = self._cache[secondary].setdefault(
                        key, _CacheEntry()
                    )
                    behind = self._primary_version.get(key, 0) - entry.version
                    if behind > lag:
                        self._refresh(secondary, key)
        if self.closeness.max_age is not None:
            self._arm_sweep()

    def _arm_sweep(self) -> None:
        if self._sweep_armed:
            return
        self._sweep_armed = True
        self.system.sim.schedule(self.closeness.max_age, self._sweep)

    def _sweep(self) -> None:
        """Periodic age check (the delay-condition trigger)."""
        self._sweep_armed = False
        period = self.closeness.max_age
        now = self.system.sim.now
        any_stale = False
        for secondary, cache in self._cache.items():
            for key, pversion in self._primary_version.items():
                entry = cache.setdefault(key, _CacheEntry())
                if entry.version >= pversion:
                    continue
                any_stale = True
                if now - entry.refreshed_at >= period:
                    self._refresh(secondary, key)
        if any_stale:
            # Stay armed until every quasi-copy is fresh (in-flight
            # refreshes land before the next sweep fires).
            self._arm_sweep()

    def _refresh(self, secondary: str, key: str) -> None:
        """Ship the primary's current value of ``key`` to a secondary."""
        self.refresh_count += 1
        primary_site = self.system.sites[self.primary]
        value = primary_site.read(0, key)
        version = self._primary_version.get(key, 0)

        def deliver() -> None:
            site = self.system.sites[secondary]
            if site.crashed:
                return
            site.store.put(key, value)
            entry = self._cache[secondary].setdefault(key, _CacheEntry())
            entry.version = version
            entry.refreshed_at = self.system.sim.now

        self.system.network.send(
            self.primary,
            secondary,
            None,
            on_deliver=lambda _: deliver(),
            on_drop=lambda _: self.system.sim.schedule(
                self.system.config.retry_interval,
                lambda: self._refresh(secondary, key),
            ),
        )

    # ------------------------------------------------------------------
    # Query path: local quasi-copy reads
    # ------------------------------------------------------------------

    def submit_query(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        site = self.system.sites[site_name]
        result = ETResult(et, start_time=self.system.sim.now, site=site_name)
        keys = [op.key for op in et.operations]
        index = [0]
        stale_keys: Set[str] = set()

        def step() -> None:
            if site.crashed:
                finish(ETStatus.ABORTED)
                return
            if index[0] >= len(keys):
                finish(ETStatus.COMMITTED)
                return
            key = keys[index[0]]

            def do_read() -> None:
                if site.crashed:
                    finish(ETStatus.ABORTED)
                    return
                result.values[key] = site.read(et.tid, key)
                site.history.record(
                    et.tid, ReadOp(key), site_name, site.sim.now, et
                )
                if site_name != self.primary:
                    entry = self._cache[site_name].get(key)
                    cached = entry.version if entry else 0
                    if cached < self._primary_version.get(key, 0):
                        stale_keys.add(key)
                index[0] += 1
                step()

            self.system.sim.schedule(site.config.read_time, do_read)

        def finish(status: str) -> None:
            result.status = status
            result.finish_time = self.system.sim.now
            result.inconsistency = len(stale_keys)
            on_done(result)

        step()

    def handle_message(self, site: Site, mset: MSet) -> None:
        raise ValueError("QuasiCopies uses RPCs, not MSets")

    def quiescent(self) -> bool:
        return True
