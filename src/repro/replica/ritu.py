"""RITU — Read-Independent Timestamped Updates (paper section 3.3).

"The RITU replica control method also uses update operation semantics,
but postpones access ordering to subsequent read time.  If updates do
not have R/W dependencies, they can be executed asynchronously."

Updates must be **read-independent** (blind writes): each write carries
an origin timestamp (a Lamport stamp), so replicas can apply MSets in
any arrival order and still converge:

* ``versioning="overwrite"`` (single version) — the Thomas write rule:
  a write older than the installed version is ignored.  "There is no
  divergence since by definition all the reads request the latest
  version. RITU reduces to COMMU" — queries are charged like COMMU.

* ``versioning="multiversion"`` — every update installs an immutable
  version tagged with a global transaction number; a per-site **VTNC**
  (visible transaction number counter, the Modular Synchronization
  Method) marks the highest number below which all versions have
  arrived.  Reads at or below the VTNC are SR and free; reading a newer
  version charges the query's inconsistency counter once per version's
  writer, and an exhausted counter silently degrades the read to the
  newest *visible* version ("not allowing reading versions that are
  newer than VTNC, when its inconsistency counter has reached a
  specified limit").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.operations import Operation, ReadOp, TimestampedWriteOp, is_write
from ..core.transactions import (
    EpsilonTransaction,
    ETResult,
    ETStatus,
    TransactionID,
)
from ..sim.clocks import LamportClock
from ..sim.site import Site
from ..storage.mvstore import NoVisibleVersion
from .base import (
    DoneCallback,
    MethodTraits,
    QueryRunner,
    ReplicaControlMethod,
    ReplicatedSystem,
)
from .common import MethodRuntime
from .mset import MSet, MSetKind

__all__ = ["ReadIndependentUpdates", "NotReadIndependentError"]


class NotReadIndependentError(ValueError):
    """Raised when an update ET contains non-blind writes."""


@dataclass
class _SiteState:
    """Per-site RITU state (multiversion watermarking)."""

    #: transaction numbers applied at this site.
    applied_numbers: Set[int] = field(default_factory=set)
    #: contiguous frontier: all numbers <= vtnc have been applied.
    vtnc: int = 0
    #: overwrite mode: COMMU-style applied history for mixed reads.
    applied: Dict[str, List[Tuple[float, TransactionID]]] = field(
        default_factory=dict
    )

    def note_number(self, txn_number: int) -> None:
        self.applied_numbers.add(txn_number)
        while (self.vtnc + 1) in self.applied_numbers:
            self.vtnc += 1
            self.applied_numbers.discard(self.vtnc)

    def note_applied(
        self, time: float, tid: TransactionID, keys: Tuple[str, ...]
    ) -> None:
        for key in keys:
            self.applied.setdefault(key, []).append((time, tid))

    def applied_since(self, key: str, start: float) -> Set[TransactionID]:
        return {tid for t, tid in self.applied.get(key, ()) if t > start}


class ReadIndependentUpdates(ReplicaControlMethod):
    """RITU replica control."""

    traits = MethodTraits(
        name="RITU",
        restriction="operation semantics",
        direction="forward",
        async_update_propagation=True,
        async_query_processing=True,
        sorting_time="at read",
    )

    def __init__(self, versioning: str = "multiversion") -> None:
        if versioning not in ("overwrite", "multiversion"):
            raise ValueError("versioning must be 'overwrite' or 'multiversion'")
        self.versioning = versioning

    def attach(self, system: ReplicatedSystem) -> None:
        super().attach(system)
        names = sorted(system.sites)
        self.runtime = MethodRuntime(len(names))
        self.clocks = {name: LamportClock(i) for i, name in enumerate(names)}
        self.states: Dict[str, _SiteState] = {
            name: _SiteState() for name in names
        }
        #: global transaction numbers (Modular Synchronization Method).
        self._txn_numbers = itertools.count(1)
        self._ets: Dict[TransactionID, EpsilonTransaction] = {}
        # Preload initial values as transaction number 0 versions.
        if self.versioning == "multiversion":
            for name, site in system.sites.items():
                for key, value in system.config.initial:
                    site.mvstore.install(key, value, 0)

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------

    @staticmethod
    def check_read_independent(et: EpsilonTransaction) -> None:
        """Reject ETs whose writes depend on reads (non-blind).

        Reads inside update ETs are rejected outright: RITU's whole
        premise is that updates have no R/W dependencies ("blind
        writes"); an update that reads is not read-independent.
        """
        if any(True for _ in et.reads()):
            raise NotReadIndependentError(
                "ET %s reads inside a RITU update; RITU updates must "
                "be blind (read-independent)" % et.tid
            )
        for op in et.writes():
            if not op.read_independent:
                raise NotReadIndependentError(
                    "operation %r of ET %s is not read-independent"
                    % (op, et.tid)
                )

    def submit_update(
        self, et: EpsilonTransaction, origin: str, on_done: DoneCallback
    ) -> None:
        self.check_read_independent(et)
        self._ets[et.tid] = et
        start = self.system.sim.now
        self.runtime.update_submitted(et)
        stamp = self.clocks[origin].tick()
        txn_number = next(self._txn_numbers)
        ops = tuple(
            self._stamp(op, stamp) for op in et.operations if is_write(op)
        )
        mset = MSet(
            et.tid, MSetKind.UPDATE, ops, origin, stamp, txn_number
        )
        self._apply_at(self.system.sites[origin], mset)
        self.system.broadcast_mset(origin, mset)
        on_done(
            ETResult(
                et,
                status=ETStatus.COMMITTED,
                start_time=start,
                finish_time=self.system.sim.now,
                site=origin,
            )
        )

    @staticmethod
    def _stamp(op: Operation, stamp: Tuple[int, int]) -> TimestampedWriteOp:
        """Normalize a blind write into a timestamped write."""
        if isinstance(op, TimestampedWriteOp):
            return TimestampedWriteOp(op.key, op.value, stamp)
        # WriteOp and other read-independent writes carry their value.
        value = getattr(op, "value", None)
        return TimestampedWriteOp(op.key, value, stamp)

    # -- message handling ---------------------------------------------------

    def handle_message(self, site: Site, mset: MSet) -> None:
        if mset.kind != MSetKind.UPDATE:
            raise ValueError("RITU cannot handle %r" % mset.kind)
        self._apply_at(site, mset)

    def _apply_at(self, site: Site, mset: MSet) -> None:
        state = self.states[site.name]
        executor = self.system.executors[site.name]
        duration = site.config.apply_time * max(len(mset.ops), 1)

        def apply() -> None:
            et = self._ets.get(mset.tid)
            if self.versioning == "multiversion":
                assert mset.txn_number is not None
                for op in mset.ops:
                    site.mvstore.install(
                        op.key, op.value, mset.txn_number, mset.tid
                    )
                    # Keep the flat store in sync (latest by stamp) so
                    # convergence checks and mixed workloads work.
                    site.apply_op(mset.tid, op, et)
                state.note_number(mset.txn_number)
                site.mvstore.advance_vtnc(state.vtnc)
            else:
                for op in mset.ops:
                    site.apply_op(mset.tid, op, et)
                state.note_applied(
                    self.system.sim.now, mset.tid, mset.keys
                )
            self.runtime.update_applied_at_site(mset.tid)

        executor.submit(duration, apply, label="ritu-%s" % (mset.tid,))

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def submit_query(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        if self.versioning == "multiversion":
            self._submit_query_mv(et, site_name, on_done)
        else:
            self._submit_query_overwrite(et, site_name, on_done)

    def _submit_query_mv(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        site = self.system.sites[site_name]
        counter = self.runtime.query_started(et)

        def admit(key: str):
            def read():
                value, charged = self._read_version(site, et, key)
                site.history.record(
                    et.tid, ReadOp(key), site_name, site.sim.now, et
                )
                return value

            return True, read

        def done(result: ETResult) -> None:
            self.runtime.query_finished(et)
            on_done(result)

        QueryRunner(
            self.system,
            et,
            site,
            admit,
            done,
            inconsistency_of=lambda: counter.value,
            overlap_of=lambda: tuple(
                self.runtime.tracker.overlap_members(et.tid)
            ),
        ).start()

    def _read_version(self, site: Site, et: EpsilonTransaction, key: str):
        """Multiversion read with VTNC divergence bounding.

        Prefers the newest version; if that version is unstable (newer
        than the VTNC) the query pays one inconsistency unit per its
        writer, and an exhausted budget degrades to the newest visible
        version.  Returns (value, charged).
        """
        store = site.mvstore
        try:
            latest = store.read_latest(key)
        except NoVisibleVersion:
            return site.config.default_value, False
        if latest.txn_number <= store.vtnc:
            return latest.value, False
        source = latest.writer if latest.writer is not None else latest.txn_number
        if source not in self.runtime.in_flight_touching(key):
            # Above the VTNC only because a *different* delayed MSet
            # holds the contiguous frontier back: the version's own
            # writer has fully propagated, so every replica already has
            # it and reading it imports no inconsistency.  Charging
            # here would let the counter exceed the query's overlap
            # (the paper's upper bound), since a finished update is by
            # definition not in the overlap.
            return latest.value, False
        if self.runtime.try_charge(et.tid, {source}):
            return latest.value, True
        try:
            visible = store.read_visible(key)
            return visible.value, False
        except NoVisibleVersion:
            return site.config.default_value, False

    def _submit_query_overwrite(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        """Single-version RITU: COMMU-style query accounting."""
        site = self.system.sites[site_name]
        state = self.states[site_name]
        counter = self.runtime.query_started(et)
        query_start = [self.system.sim.now]

        def admit(key: str):
            sources = state.applied_since(key, query_start[0])
            if not self.runtime.try_charge(et.tid, sources):
                return False, None

            def read():
                value = site.read(et.tid, key)
                site.history.record(
                    et.tid, ReadOp(key), site_name, site.sim.now, et
                )
                return value

            return True, read

        def restart() -> None:
            query_start[0] = self.system.sim.now

        def done(result: ETResult) -> None:
            self.runtime.query_finished(et)
            on_done(result)

        QueryRunner(
            self.system,
            et,
            site,
            admit,
            done,
            inconsistency_of=lambda: counter.value,
            overlap_of=lambda: tuple(
                self.runtime.tracker.overlap_members(et.tid)
            ),
            restart_on_block=True,
            on_restart=restart,
        ).start()

    # ------------------------------------------------------------------

    def quiescent(self) -> bool:
        return not self.runtime.in_flight_updates()
