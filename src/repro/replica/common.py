"""Shared runtime bookkeeping for replica control methods.

Every method needs the same three pieces of accounting:

* a global :class:`~repro.core.overlap.OverlapTracker` implementing the
  paper's overlap definition (an update ET is "in flight" from
  submission until its MSet has been applied at every replica),
* one :class:`~repro.core.inconsistency.InconsistencyCounter` per query
  ET,
* completion countdowns so a method knows when an update ET has fully
  propagated (used both for overlap bookkeeping and for quiescence).

Methods compose a :class:`MethodRuntime` rather than inheriting, keeping
each method file focused on its own MSet delivery/processing rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.inconsistency import EpsilonExceeded, InconsistencyCounter
from ..core.overlap import OverlapTracker
from ..core.transactions import (
    EpsilonTransaction,
    ETResult,
    ETStatus,
    TransactionID,
)

__all__ = ["MethodRuntime"]


class MethodRuntime:
    """Overlap + inconsistency accounting shared by all methods."""

    def __init__(self, n_sites: int) -> None:
        self.n_sites = n_sites
        self.tracker = OverlapTracker()
        self.counters: Dict[TransactionID, InconsistencyCounter] = {}
        self._remaining: Dict[TransactionID, int] = {}
        self._update_keys: Dict[TransactionID, Tuple[str, ...]] = {}
        #: worst-case value drift per update (None = unknown/unbounded).
        self._update_drift: Dict[TransactionID, Optional[float]] = {}
        #: callbacks fired when a specific update ET fully propagates.
        self._on_complete: Dict[TransactionID, List[Callable[[], None]]] = {}
        #: hooks installed before the update was submitted (deadline
        #: trackers wrap submission and register first).
        self._pre_hooks: Dict[TransactionID, List[Callable[[], None]]] = {}
        #: updates that have completed propagation.
        self._completed: Set[TransactionID] = set()

    # -- update lifecycle -----------------------------------------------------

    def update_submitted(
        self, et: EpsilonTransaction, copies: Optional[int] = None
    ) -> None:
        """An update ET enters the system; ``copies`` MSets must apply."""
        self.tracker.update_started(et)
        self._remaining[et.tid] = copies if copies is not None else self.n_sites
        self._update_keys[et.tid] = et.keys
        if et.tid in self._pre_hooks:
            self._on_complete.setdefault(et.tid, []).extend(
                self._pre_hooks.pop(et.tid)
            )
        drift: Optional[float] = 0.0
        for op in et.writes():
            delta = op.value_delta()
            if delta is None:
                drift = None
                break
            drift += delta
        self._update_drift[et.tid] = drift

    def update_applied_at_site(self, tid: TransactionID) -> bool:
        """One replica finished applying; True when fully propagated."""
        left = self._remaining.get(tid)
        if left is None:
            return True
        left -= 1
        if left <= 0:
            self._remaining.pop(tid, None)
            self._completed.add(tid)
            self.tracker.update_finished(tid)
            for hook in self._on_complete.pop(tid, ()):  # completion hooks
                hook()
            return True
        self._remaining[tid] = left
        return False

    def update_abandoned(self, tid: TransactionID) -> None:
        """An update was aborted before full propagation (COMPE)."""
        self._remaining.pop(tid, None)
        self._completed.add(tid)
        self.tracker.update_finished(tid)
        for hook in self._on_complete.pop(tid, ()):  # completion hooks
            hook()

    def when_update_complete(
        self, tid: TransactionID, hook: Callable[[], None]
    ) -> None:
        """Run ``hook`` once ``tid`` has fully propagated.

        May be called before the update is submitted (the hook is
        parked and attached at submission), while it is in flight, or
        after completion (the hook fires immediately).
        """
        if tid in self._remaining:
            self._on_complete.setdefault(tid, []).append(hook)
        elif tid in self._completed:
            hook()
        else:
            self._pre_hooks.setdefault(tid, []).append(hook)

    def in_flight_updates(self) -> int:
        return len(self._remaining)

    def in_flight_touching(self, key: str) -> Set[TransactionID]:
        """In-flight update tids whose write set includes ``key``."""
        return {
            tid
            for tid in self._remaining
            if key in self._update_keys.get(tid, ())
        }

    # -- query lifecycle ----------------------------------------------------------

    def query_started(self, et: EpsilonTransaction) -> InconsistencyCounter:
        self.tracker.query_started(et)
        counter = InconsistencyCounter(et.tid, et.spec)
        self.counters[et.tid] = counter
        return counter

    def query_finished(self, et: EpsilonTransaction) -> None:
        self.tracker.query_finished(et.tid)

    def counter_of(self, tid: TransactionID) -> Optional[InconsistencyCounter]:
        return self.counters.get(tid)

    # -- charging helpers -------------------------------------------------------------

    def try_charge(
        self, tid: TransactionID, sources: Set[TransactionID]
    ) -> bool:
        """Charge a query for each *new* source; False when over budget.

        Charges are atomic across both budgets — the count limit
        (inconsistency counter) and the value limit (worst-case drift
        of the imported updates).  On False the counter is left
        untouched — the caller must take the consistent path (wait /
        ordered re-run / visible version).
        """
        counter = self.counters.get(tid)
        if counter is None:
            return True
        new_sources = sorted(sources - counter.imported)
        if not new_sources:
            return True
        total_drift: Optional[float] = 0.0
        for source in new_sources:
            delta = self._update_drift.get(source, 0.0)
            if delta is None:
                total_drift = None
                break
            total_drift += delta
        if not counter.can_charge(len(new_sources), total_drift):
            return False
        for source in new_sources:
            drift = self._update_drift.get(source, 0.0)
            counter.charge(1, source, drift=drift if drift is not None else 0.0)
        return True

    def charge_unconditionally(
        self, tid: TransactionID, sources: Set[TransactionID]
    ) -> None:
        """Force charges past the limit (compensation aftermath, §4.2).

        Compensations 'introduce inconsistency into query ETs because
        they are not rolled back and re-executed'; the counter records
        the overrun so benchmarks can show why unlimited compensations
        break the bound.
        """
        counter = self.counters.get(tid)
        if counter is None:
            return
        for source in sorted(sources - counter.imported):
            counter.value += 1
            counter.imported.add(source)

    def inconsistency_of(self, tid: TransactionID) -> int:
        counter = self.counters.get(tid)
        return counter.value if counter else 0
