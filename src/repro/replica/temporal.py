"""Temporal ET services: deadlines and periodic application (§5.1).

The paper maps Wiederhold and Qian's identity-connection update classes
onto ETs:

* *immediate updates* — "ETs with no divergence" (epsilon 0 / the
  synchronous baselines; nothing to add),
* *deferred updates* — "ETs with deadlines": the update may propagate
  asynchronously but must be applied at every replica by a deadline,
* *independent updates* — "ETs applied periodically": a recurring
  refresh transaction,
* *potentially inconsistent updates* — "ETs with backward replica
  control" (COMPE; already implemented).

This module supplies the two missing services as thin layers over any
replica control method:

* :class:`DeadlineTracker` wraps update submission, records whether
  full propagation beat the deadline, and can optionally *escalate* —
  kick the stable queues when the deadline arrives and the update has
  not fully propagated (deferred updates get priority treatment at
  their deadline).
* :class:`PeriodicSubmitter` re-submits a template update every period
  until cancelled, implementing independent updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.transactions import (
    EpsilonTransaction,
    ETResult,
    TransactionID,
    UpdateET,
)
from .base import ReplicatedSystem

__all__ = ["DeadlineTracker", "DeadlineRecord", "PeriodicSubmitter"]


@dataclass
class DeadlineRecord:
    """Propagation-deadline bookkeeping for one update ET."""

    tid: TransactionID
    deadline: float
    submitted_at: float
    propagated_at: Optional[float] = None
    escalated: bool = False

    @property
    def met(self) -> Optional[bool]:
        """True/False once propagation completed; None while pending."""
        if self.propagated_at is None:
            return None
        return self.propagated_at <= self.deadline


class DeadlineTracker:
    """Deferred updates: asynchronous propagation with a deadline."""

    def __init__(
        self, system: ReplicatedSystem, escalate: bool = True
    ) -> None:
        """``escalate=True`` kicks the stable queues at the deadline if
        the update has not fully propagated — the priority boost a
        deferred update earns when its time comes."""
        self.system = system
        self.escalate = escalate
        self.records: Dict[TransactionID, DeadlineRecord] = {}

    def submit(
        self,
        et: EpsilonTransaction,
        origin: str,
        relative_deadline: float,
        on_done: Optional[Callable[[ETResult], None]] = None,
    ) -> DeadlineRecord:
        """Submit an update ET that should propagate within the deadline."""
        if not et.is_update:
            raise ValueError("deadlines apply to update ETs")
        if relative_deadline <= 0:
            raise ValueError("relative_deadline must be positive")
        now = self.system.sim.now
        record = DeadlineRecord(
            et.tid, now + relative_deadline, now
        )
        self.records[et.tid] = record

        runtime = getattr(self.system.method, "runtime", None)
        if runtime is not None:
            runtime.when_update_complete(
                et.tid, lambda: self._propagated(record)
            )
        self.system.submit(et, origin, on_done)
        if runtime is None:
            # Synchronous methods propagate within the commit itself.
            self._propagated(record)
        if self.escalate:
            self.system.sim.schedule_at(
                record.deadline, lambda: self._escalate(record)
            )
        return record

    def _propagated(self, record: DeadlineRecord) -> None:
        if record.propagated_at is None:
            record.propagated_at = self.system.sim.now

    def _escalate(self, record: DeadlineRecord) -> None:
        if record.propagated_at is not None:
            return
        record.escalated = True
        self.system.kick_queues()

    # -- reporting -----------------------------------------------------------

    def met_fraction(self) -> float:
        """Fraction of decided deadlines that were met."""
        decided = [r for r in self.records.values() if r.met is not None]
        if not decided:
            return 1.0
        return sum(1 for r in decided if r.met) / len(decided)

    def missed(self) -> List[DeadlineRecord]:
        return [r for r in self.records.values() if r.met is False]


class PeriodicSubmitter:
    """Independent updates: a template ET re-submitted every period."""

    def __init__(
        self,
        system: ReplicatedSystem,
        make_et: Callable[[], EpsilonTransaction],
        origin: str,
        period: float,
        count: Optional[int] = None,
    ) -> None:
        """Args:
            make_et: factory producing a fresh ET per firing (ETs are
                single-use: each firing needs a new tid).
            period: simulated time between submissions.
            count: total firings (``None`` = until :meth:`cancel` —
                note an uncancelled infinite submitter prevents
                quiescence by design).
        """
        if period <= 0:
            raise ValueError("period must be positive")
        self.system = system
        self.make_et = make_et
        self.origin = origin
        self.period = period
        self.remaining = count
        self.fired = 0
        self._cancelled = False
        self._arm()

    def _arm(self) -> None:
        self.system.sim.schedule(self.period, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        if self.remaining is not None and self.fired >= self.remaining:
            return
        et = self.make_et()
        if not et.is_update:
            raise ValueError("periodic ETs must be updates")
        self.fired += 1
        self.system.submit(et, self.origin)
        if self.remaining is None or self.fired < self.remaining:
            self._arm()

    def cancel(self) -> None:
        self._cancelled = True
