"""Replica control methods: the paper's four plus synchronous baselines."""

from .mset import MSet, MSetKind
from .base import (
    MethodTraits,
    QueryRunner,
    ReplicaControlMethod,
    ReplicatedSystem,
    SiteExecutor,
    SystemConfig,
)
from .common import MethodRuntime
from .ordup import OrderedUpdates
from .commu import CommutativeOperations, NonCommutativeError
from .ritu import NotReadIndependentError, ReadIndependentUpdates
from .compe import CompensationBased, CompensationStats
from .coherency import PrimaryCopy, QuorumConsensus, ReadOneWriteAll2PC
from .quasicopy import ClosenessSpec, QuasiCopies
from .merge import LoggedOp, MergeResult, apply_merged, merge_partition_logs
from .temporal import DeadlineRecord, DeadlineTracker, PeriodicSubmitter

__all__ = [
    "MSet",
    "MSetKind",
    "MethodTraits",
    "QueryRunner",
    "ReplicaControlMethod",
    "ReplicatedSystem",
    "SiteExecutor",
    "SystemConfig",
    "MethodRuntime",
    "OrderedUpdates",
    "CommutativeOperations",
    "NonCommutativeError",
    "NotReadIndependentError",
    "ReadIndependentUpdates",
    "CompensationBased",
    "CompensationStats",
    "PrimaryCopy",
    "QuorumConsensus",
    "ReadOneWriteAll2PC",
    "ClosenessSpec",
    "QuasiCopies",
    "LoggedOp",
    "MergeResult",
    "apply_merged",
    "merge_partition_logs",
    "DeadlineRecord",
    "DeadlineTracker",
    "PeriodicSubmitter",
]
