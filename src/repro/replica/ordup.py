"""ORDUP — Ordered Updates (paper section 3.1).

"The idea behind the ORDUP replica control method is to execute the
MSets by updating different replicas of the same object asynchronously
but in the same order.  In this way the update ETs are SR.  We can
process query ETs in any order because they are allowed to see
inconsistent results."

**MSet delivery** — the client does not have to deliver MSets in order
("a 'later' MSet can be delivered before an 'earlier' MSet"), so each
MSet carries its execution-order token and every site holds back until
the next token in sequence shows up.  Two ordering services are
supported:

* ``ordering="central"`` — a centralized order server issues gap-free
  sequence numbers; acquiring a token costs one round trip to the
  server's site (free when the origin hosts the server).
* ``ordering="lamport"`` — Lamport timestamps with a flush protocol:
  a site holding an unstable MSet asks every peer for its current
  clock; an MSet is processed once every peer has witnessed a larger
  time (the paper: "it is not easy to see whether there is another
  MSet coming in with just a slightly earlier timestamp", hence the
  explicit flush round).

**MSet processing** — the site executor applies held-back MSets in
token order, each as a local atomic step.

**Divergence bounding** — each query ET notes the site's applied
frontier when it starts.  A read that observes a key last written by an
update *beyond* that frontier is an out-of-order read: it charges the
query's inconsistency counter once per such update ET.  When the
counter cannot absorb a charge, the query converts to *ordered* mode —
it re-runs as an atomic task in the site executor, i.e. "the query ET
is allowed to proceed only when it is running in the global order".
Queries submitted with ``import_limit == 0`` start in ordered mode and
are therefore strictly SR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.operations import ReadOp
from ..core.transactions import (
    EpsilonTransaction,
    ETResult,
    ETStatus,
    TransactionID,
)
from ..sim.clocks import CentralOrderServer, GlobalOrder, LamportClock
from ..sim.site import Site
from .base import (
    DoneCallback,
    MethodTraits,
    OrderedApplyBuffer,
    ReplicaControlMethod,
    ReplicatedSystem,
)
from .common import MethodRuntime
from .mset import MSet, MSetKind

__all__ = ["OrderedUpdates"]

_FLUSH_REQ = "ordup-flush-req"
_FLUSH_ACK = "ordup-flush-ack"


@dataclass
class _SiteState:
    """Per-site ORDUP state."""

    #: gap-free holdback buffer (central mode); shared with the live
    #: runtime's ORDUP engine via :class:`OrderedApplyBuffer`.
    buffer: OrderedApplyBuffer = field(default_factory=OrderedApplyBuffer)
    #: key -> (order token, tid) of the last applied writer.
    last_writer: Dict[str, Tuple[GlobalOrder, TransactionID]] = field(
        default_factory=dict
    )
    #: applied frontier: highest order token fully applied, in sequence.
    frontier: GlobalOrder = (0, 0)
    # -- lamport mode --
    lamport_buffer: List[MSet] = field(default_factory=list)
    #: peer -> highest clock time witnessed from that peer.
    peer_clocks: Dict[str, int] = field(default_factory=dict)
    flush_outstanding: bool = False


class OrderedUpdates(ReplicaControlMethod):
    """ORDUP replica control."""

    traits = MethodTraits(
        name="ORDUP",
        restriction="message delivery",
        direction="forward",
        async_update_propagation=False,  # execution order is constrained
        async_query_processing=True,
        sorting_time="at update",
    )

    def __init__(self, ordering: str = "central") -> None:
        if ordering not in ("central", "lamport"):
            raise ValueError("ordering must be 'central' or 'lamport'")
        self.ordering = ordering

    def attach(self, system: ReplicatedSystem) -> None:
        super().attach(system)
        if self.ordering == "lamport":
            # Lamport stability (process when every peer's clock has
            # passed the stamp) is only sound over FIFO channels: a
            # non-FIFO channel could deliver a newer clock while an
            # older-stamped MSet is still in flight behind it.
            for queue in system.queues.values():
                queue.fifo = True
        names = sorted(system.sites)
        self.runtime = MethodRuntime(len(names))
        self.order_server = CentralOrderServer()
        #: the order server lives at the first site (central mode).
        self.server_site = names[0]
        self.clocks = {
            name: LamportClock(i) for i, name in enumerate(names)
        }
        self.states: Dict[str, _SiteState] = {
            name: _SiteState(peer_clocks={p: 0 for p in names if p != name})
            for name in names
        }
        self._ets: Dict[TransactionID, EpsilonTransaction] = {}
        #: read-modify-report updates awaiting their serial turn at
        #: the origin: tid -> (origin, on_done, start time).
        self._pending_reads: Dict[
            TransactionID, Tuple[str, DoneCallback, float]
        ] = {}

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------

    def submit_update(
        self, et: EpsilonTransaction, origin: str, on_done: DoneCallback
    ) -> None:
        self._ets[et.tid] = et
        start = self.system.sim.now
        has_reads = any(True for _ in et.reads())

        def with_order(order: GlobalOrder) -> None:
            self.runtime.update_submitted(et)
            mset = MSet(
                et.tid,
                MSetKind.UPDATE,
                tuple(et.writes()),
                origin,
                order,
            )
            if has_reads:
                # Read-modify-report updates observe state: their reads
                # must execute at the update's serial position, so the
                # commit is deferred until the origin executes the MSet
                # in global order (see _execute).
                self._pending_reads[et.tid] = (origin, on_done, start)
            # Remote copies are enqueued first: in Lamport mode the
            # local accept may immediately emit flush requests with
            # higher stamps, and FIFO channels must carry messages in
            # stamp order, so the update MSet has to enter each channel
            # before any flush traffic.
            self.system.broadcast_mset(origin, mset)
            self._accept_update(self.system.sites[origin], mset)
            if not has_reads:
                # Pure-write updates are fully asynchronous: committed
                # once ordered and durably queued.
                on_done(
                    ETResult(
                        et,
                        status=ETStatus.COMMITTED,
                        start_time=start,
                        finish_time=self.system.sim.now,
                        site=origin,
                    )
                )

        self._acquire_order(origin, with_order)

    def _acquire_order(
        self, origin: str, callback: Callable[[GlobalOrder], None]
    ) -> None:
        if self.ordering == "lamport":
            callback(self.clocks[origin].tick())
            return
        if origin == self.server_site:
            callback(self.order_server.next_order())
            return
        # Round trip to the order server over the real network; the
        # request is retried until it gets through (partitions block
        # update ordering — the availability cost benchmark E9 shows).
        def request() -> None:
            self.system.network.send(
                origin,
                self.server_site,
                None,
                on_deliver=lambda _: reply(),
                on_drop=lambda _: self.system.sim.schedule(
                    self.system.config.retry_interval, request
                ),
            )

        def reply() -> None:
            order = self.order_server.next_order()
            self.system.network.send(
                self.server_site,
                origin,
                order,
                on_deliver=callback,
                on_drop=lambda o: self.system.sim.schedule(
                    self.system.config.retry_interval, lambda: callback_retry(o)
                ),
            )

        def callback_retry(order: GlobalOrder) -> None:
            # The token was already allocated; just retry its delivery.
            self.system.network.send(
                self.server_site,
                origin,
                order,
                on_deliver=callback,
                on_drop=lambda o: self.system.sim.schedule(
                    self.system.config.retry_interval, lambda: callback_retry(o)
                ),
            )

        request()

    # -- message handling ------------------------------------------------

    def handle_message(self, site: Site, mset: MSet) -> None:
        if mset.kind == MSetKind.UPDATE:
            self._accept_update(site, mset)
        elif mset.kind == _FLUSH_REQ:
            self._on_flush_request(site, mset)
        elif mset.kind == _FLUSH_ACK:
            self._on_flush_ack(site, mset)
        else:
            raise ValueError("ORDUP cannot handle %r" % mset.kind)

    def _accept_update(self, site: Site, mset: MSet) -> None:
        state = self.states[site.name]
        assert mset.order is not None
        if self.ordering == "central":
            for ready in state.buffer.offer(mset.order[0], mset):
                self._execute(site, ready)
        else:
            self.clocks[site.name].witness(mset.order)
            if mset.origin != site.name:
                state.peer_clocks[mset.origin] = max(
                    state.peer_clocks.get(mset.origin, 0), mset.order[0]
                )
            state.lamport_buffer.append(mset)
            state.lamport_buffer.sort(key=lambda m: m.order)
            self._drain_lamport(site)

    def _execute(self, site: Site, mset: MSet) -> None:
        executor = self.system.executors[site.name]
        duration = site.config.apply_time * max(len(mset.ops), 1)

        def apply() -> None:
            et = self._ets.get(mset.tid)
            pending = self._pending_reads.get(mset.tid)
            if pending is not None and pending[0] == site.name:
                # The update's serial turn at its origin: evaluate its
                # reads against the in-order prefix, before its own
                # writes (standard read-then-write semantics), and
                # release the deferred commit.
                origin, on_done, start = self._pending_reads.pop(mset.tid)
                result = ETResult(
                    et,
                    status=ETStatus.COMMITTED,
                    start_time=start,
                    site=origin,
                )
                if et is not None:
                    self.evaluate_update_reads(et, origin, result)
                for op in mset.ops:
                    site.apply_op(mset.tid, op, et)
                result.finish_time = self.system.sim.now
                on_done(result)
            else:
                for op in mset.ops:
                    site.apply_op(mset.tid, op, et)
            state = self.states[site.name]
            assert mset.order is not None
            state.frontier = max(state.frontier, mset.order)
            for key in mset.keys:
                state.last_writer[key] = (mset.order, mset.tid)
            self.runtime.update_applied_at_site(mset.tid)

        executor.submit(duration, apply, label="ordup-%s" % (mset.tid,))

    # -- lamport stability ---------------------------------------------------

    def _drain_lamport(self, site: Site) -> None:
        state = self.states[site.name]
        progressed = True
        while progressed and state.lamport_buffer:
            progressed = False
            head = state.lamport_buffer[0]
            assert head.order is not None
            stable_bound = min(state.peer_clocks.values(), default=0)
            if head.order[0] <= stable_bound:
                state.lamport_buffer.pop(0)
                self._execute(site, head)
                progressed = True
        if state.lamport_buffer and not state.flush_outstanding:
            self._request_flush(site)

    def _request_flush(self, site: Site) -> None:
        state = self.states[site.name]
        state.flush_outstanding = True
        stamp = self.clocks[site.name].tick()
        req = MSet(0, _FLUSH_REQ, (), site.name, stamp)
        self.system.broadcast_mset(site.name, req)

    def _on_flush_request(self, site: Site, mset: MSet) -> None:
        assert mset.order is not None
        stamp = self.clocks[site.name].witness(mset.order)
        state = self.states[site.name]
        if mset.origin != site.name:
            state.peer_clocks[mset.origin] = max(
                state.peer_clocks.get(mset.origin, 0), mset.order[0]
            )
        # Ack before draining: draining may emit a new (higher-stamped)
        # flush request, and FIFO channels must stay stamp-monotone.
        ack = MSet(0, _FLUSH_ACK, (), site.name, stamp)
        self.system.send_mset(site.name, mset.origin, ack)
        self._drain_lamport(site)

    def _on_flush_ack(self, site: Site, mset: MSet) -> None:
        assert mset.order is not None
        self.clocks[site.name].witness(mset.order)
        state = self.states[site.name]
        state.peer_clocks[mset.origin] = max(
            state.peer_clocks.get(mset.origin, 0), mset.order[0]
        )
        state.flush_outstanding = False
        self._drain_lamport(site)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def submit_query(
        self, et: EpsilonTransaction, site_name: str, on_done: DoneCallback
    ) -> None:
        site = self.system.sites[site_name]
        counter = self.runtime.query_started(et)
        result = ETResult(et, start_time=self.system.sim.now, site=site_name)
        state = self.states[site_name]
        start_frontier = state.frontier
        keys = [op.key for op in et.operations]

        def finish(status: str) -> None:
            result.status = status
            result.finish_time = self.system.sim.now
            result.inconsistency = counter.value
            result.overlap = tuple(
                sorted(self.runtime.tracker.overlap_members(et.tid))
            )
            self.runtime.query_finished(et)
            on_done(result)

        def run_ordered() -> None:
            """Atomic re-run inside the executor: the global order."""
            result.waits += 1
            executor = self.system.executors[site_name]
            duration = site.config.read_time * len(keys)

            def atomic_reads() -> None:
                for key in keys:
                    value = site.read(et.tid, key)
                    result.values[key] = value
                    site.history.record(
                        et.tid, _read_op(key), site_name, site.sim.now, et
                    )
                finish(ETStatus.COMMITTED)

            executor.submit(duration, atomic_reads, label="ordup-q%s" % et.tid)

        if et.spec.is_strict:
            run_ordered()
            return

        index = [0]

        def step() -> None:
            if site.crashed:
                finish(ETStatus.ABORTED)
                return
            if index[0] >= len(keys):
                finish(ETStatus.COMMITTED)
                return
            key = keys[index[0]]

            def do_read() -> None:
                if site.crashed:
                    finish(ETStatus.ABORTED)
                    return
                sources = self._out_of_order_sources(state, key, start_frontier)
                if not self.runtime.try_charge(et.tid, sources):
                    run_ordered()  # counter exhausted -> global order
                    return
                value = site.read(et.tid, key)
                result.values[key] = value
                site.history.record(
                    et.tid, _read_op(key), site_name, site.sim.now, et
                )
                index[0] += 1
                step()

            self.system.sim.schedule(site.config.read_time, do_read)

        step()

    @staticmethod
    def _out_of_order_sources(
        state: _SiteState, key: str, start_frontier: GlobalOrder
    ) -> Set[TransactionID]:
        """Writers of ``key`` applied beyond the query's start frontier."""
        writer = state.last_writer.get(key)
        if writer is None:
            return set()
        order, tid = writer
        if order > start_frontier:
            return {tid}
        return set()

    # ------------------------------------------------------------------

    def quiescent(self) -> bool:
        if self.runtime.in_flight_updates():
            return False
        for state in self.states.values():
            if state.buffer.held or state.lamport_buffer:
                return False
        return True


def _read_op(key: str) -> ReadOp:
    return ReadOp(key)
