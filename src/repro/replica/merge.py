"""Offline partition-log merging (paper section 5.3).

The optimistic partition-handling literature the paper surveys
(Davidson et al., Faissol, log transformation, OSCAR) repairs
divergence *after* reconnection: each partition keeps a log of the
update transactions it ran; at merge time the logs are combined using
operation properties — commutativity and overwrite — and transactions
that cannot be merged are **backed out** and must be re-run or
reported to the user.

ESR's point (and this module's reason to exist) is the contrast:
"instead of processing logs at reconnection time, our methods control
divergence dynamically".  The benchmark quantifies that contrast —
merge work and backouts grow with partition duration, while the
equivalent COMMU/RITU run needs no reconnection processing at all.

The merger is a faithful small implementation of the log-transformation
idea:

1. transactions whose operations all commute with every concurrent
   cross-partition transaction merge for free (COMMU-style classes
   B/C of Faissol's taxonomy),
2. timestamped overwrites merge by the Thomas rule (class A / RITU),
3. remaining cross-partition conflicts are resolved by backing out a
   minimal-ish set of transactions (greedy vertex cover on the
   conflict graph — classes D/E, the rollback family).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import Operation, commutes, conflicts
from ..core.transactions import TransactionID
from ..storage.kv import KeyValueStore

__all__ = ["LoggedOp", "MergeResult", "merge_partition_logs", "apply_merged"]


@dataclass(frozen=True)
class LoggedOp:
    """One update operation in a partition log."""

    tid: TransactionID
    op: Operation


@dataclass
class MergeResult:
    """Outcome of merging two partition logs.

    Attributes:
        schedule: operations to apply on top of the common ancestor
            state, in a conflict-safe order.
        backed_out: transactions that could not be merged; their
            operations are excluded from the schedule and must be
            re-submitted (or surfaced to the application).
        cross_conflicts: conflicting cross-partition transaction pairs
            found before backout.
        ops_examined: merge work — the number of operation pairs the
            merger had to compare (the reconnection-cost metric).
    """

    schedule: List[LoggedOp] = field(default_factory=list)
    backed_out: Set[TransactionID] = field(default_factory=set)
    cross_conflicts: List[Tuple[TransactionID, TransactionID]] = field(
        default_factory=list
    )
    ops_examined: int = 0

    @property
    def merged_cleanly(self) -> bool:
        return not self.backed_out


def _ops_of(
    log: Sequence[LoggedOp],
) -> Dict[TransactionID, List[Operation]]:
    by_tid: Dict[TransactionID, List[Operation]] = {}
    for entry in log:
        by_tid.setdefault(entry.tid, []).append(entry.op)
    return by_tid


def merge_partition_logs(
    log_a: Sequence[LoggedOp],
    log_b: Sequence[LoggedOp],
) -> MergeResult:
    """Merge the update logs of two healed partitions.

    Within-partition order is preserved; only *cross*-partition
    relationships need resolution (each partition was internally SR
    while disconnected).  Transactions appearing in both logs are
    rejected — a partitioned system cannot have run one transaction on
    both sides.
    """
    result = MergeResult()
    a_tids = set(_ops_of(log_a))
    b_tids = set(_ops_of(log_b))
    shared = a_tids & b_tids
    if shared:
        raise ValueError(
            "transactions %s appear in both partition logs" % sorted(shared)
        )

    ops_a = _ops_of(log_a)
    ops_b = _ops_of(log_b)

    # 1+2. Find cross-partition conflicts under operation semantics:
    # commuting operations (including timestamped overwrites) are free.
    conflict_degree: Dict[TransactionID, int] = {}
    for tid_a, a_ops in ops_a.items():
        for tid_b, b_ops in ops_b.items():
            pair_conflicts = False
            for op_a in a_ops:
                for op_b in b_ops:
                    result.ops_examined += 1
                    if conflicts(op_a, op_b):
                        pair_conflicts = True
            if pair_conflicts:
                result.cross_conflicts.append((tid_a, tid_b))
                conflict_degree[tid_a] = conflict_degree.get(tid_a, 0) + 1
                conflict_degree[tid_b] = conflict_degree.get(tid_b, 0) + 1

    # 3. Greedy backout: repeatedly drop the transaction involved in
    # the most unresolved cross conflicts (ties: fewest own operations,
    # then higher tid — later work is cheaper to redo).
    remaining = list(result.cross_conflicts)
    while remaining:
        degree: Dict[TransactionID, int] = {}
        for tid_a, tid_b in remaining:
            degree[tid_a] = degree.get(tid_a, 0) + 1
            degree[tid_b] = degree.get(tid_b, 0) + 1

        def cost(tid: TransactionID) -> Tuple[int, int, int]:
            own = ops_a.get(tid) or ops_b.get(tid) or []
            return (-degree[tid], len(own), -tid)

        victim = sorted(degree, key=cost)[0]
        result.backed_out.add(victim)
        remaining = [
            pair for pair in remaining if victim not in pair
        ]

    # Emit the merged schedule: partition A's surviving operations in
    # their original order, then partition B's.  Safe because every
    # surviving cross-partition pair commutes.
    for entry in log_a:
        if entry.tid not in result.backed_out:
            result.schedule.append(entry)
    for entry in log_b:
        if entry.tid not in result.backed_out:
            result.schedule.append(entry)
    return result


def apply_merged(
    store: KeyValueStore, result: MergeResult, default: object = 0
) -> KeyValueStore:
    """Apply a merged schedule to the common-ancestor state."""
    for entry in result.schedule:
        store.apply(entry.op, default=default)
    return store
