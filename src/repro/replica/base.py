"""Replica control framework: system assembly and shared machinery.

This module realizes the paper's section 2.4 framework.  A
:class:`ReplicatedSystem` wires together the substrate — simulator,
network, stable queues, sites — and delegates the three method-specific
steps to a pluggable :class:`ReplicaControlMethod`:

1. **MSet delivery** — how update MSets reach replica sites
   (``submit_update`` + the stable-queue mesh),
2. **MSet processing** — what a site does with a delivered MSet
   (``handle_message`` + the per-site serial :class:`SiteExecutor`),
3. **Divergence bounding** — how query ETs are admitted
   (``submit_query`` and the shared :class:`QueryRunner`).

Execution timing model: MSet application at a site is locally atomic
(an intra-site transaction) but takes simulated time, and query reads
are spread over time, so queries genuinely interleave with update
propagation — that interleaving is the inconsistency ESR bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.history import History
from ..core.serializability import (
    is_one_copy_serializable,
    merge_site_histories,
    replicas_converged,
)
from ..core.transactions import (
    EpsilonTransaction,
    ETResult,
    ETStatus,
    TransactionID,
)
from ..sim.events import Simulator
from ..sim.network import LatencyModel, Network
from ..sim.site import Site, SiteConfig
from ..sim.stable_queue import StableQueue
from .mset import MSet

__all__ = [
    "ReplicaControlMethod",
    "ReplicatedSystem",
    "SiteExecutor",
    "QueryRunner",
    "SystemConfig",
    "MethodTraits",
    "MSetTransport",
    "OrderedApplyBuffer",
    "LockCounterSiteState",
]

DoneCallback = Callable[[ETResult], None]


class MSetTransport:
    """Transport seam: how MSets leave a site.

    Replica control is split between *what* a site does with an MSet
    (method logic, shared) and *how* MSets travel between sites
    (transport, pluggable).  :class:`ReplicatedSystem` implements this
    interface over simulated stable queues; the live runtime
    (:mod:`repro.live`) implements the same contract over asyncio TCP
    with file-backed durable queues.  Both provide at-least-once,
    dedup-to-exactly-once channel semantics, so method state machines
    (:class:`OrderedApplyBuffer`, :class:`LockCounterSiteState`) work
    unchanged on either side of the seam.
    """

    def send_mset(self, src: str, dst: str, mset: MSet) -> None:
        raise NotImplementedError

    def broadcast_mset(self, origin: str, mset: MSet) -> None:
        raise NotImplementedError


class OrderedApplyBuffer:
    """Gap-free holdback buffer for globally ordered MSets (ORDUP).

    Sites receive MSets in arbitrary order but must *apply* them in
    global sequence.  The buffer holds each MSet until every earlier
    sequence number has been offered, then releases a maximal in-order
    run.  Duplicates of already-released sequence numbers are dropped.
    Transport-agnostic: the simulator's ORDUP and the live ORDUP engine
    both drive their applies through this class.
    """

    def __init__(self, expected: int = 1) -> None:
        #: next sequence number eligible for release.
        self.expected = expected
        self._holdback: Dict[int, Any] = {}

    def offer(self, seqno: int, item: Any) -> List[Any]:
        """Add one ordered item; return the items now ready, in order."""
        if seqno < self.expected:
            return []  # duplicate of an already-released MSet
        self._holdback[seqno] = item
        ready: List[Any] = []
        while self.expected in self._holdback:
            ready.append(self._holdback.pop(self.expected))
            self.expected += 1
        return ready

    @property
    def held(self) -> int:
        """MSets waiting for an earlier sequence number."""
        return len(self._holdback)

    def drained(self) -> bool:
        return not self._holdback


@dataclass
class LockCounterSiteState:
    """Per-site lock-counter state (COMMU's divergence device).

    Tracks which update ETs currently hold each object's lock-counter
    at this site, plus the applied-update history that lets in-flight
    queries detect mixed observations (an update applied between two of
    their reads).  Timestamps are supplied by the caller — simulated
    time in the simulator, wall-clock time in the live runtime — which
    keeps the state machine transport-agnostic.
    """

    #: key -> set of update tids holding the counter here.
    holders: Dict[str, Set[TransactionID]] = field(default_factory=dict)
    #: key -> [(apply time, tid)] of updates applied at this site.
    applied: Dict[str, List[Tuple[float, TransactionID]]] = field(
        default_factory=dict
    )

    def note_applied(
        self, time: float, tid: TransactionID, keys: Sequence[str]
    ) -> None:
        for key in keys:
            self.applied.setdefault(key, []).append((time, tid))

    def applied_since(self, key: str, start: float) -> Set[TransactionID]:
        return {tid for t, tid in self.applied.get(key, ()) if t > start}

    def raise_counters(
        self, tid: TransactionID, keys: Sequence[str]
    ) -> None:
        for key in keys:
            self.holders.setdefault(key, set()).add(tid)

    def release_counters(
        self, tid: TransactionID, keys: Sequence[str]
    ) -> None:
        for key in keys:
            held = self.holders.get(key)
            if held is not None:
                held.discard(tid)
                if not held:
                    self.holders.pop(key, None)

    def count(self, key: str) -> int:
        return len(self.holders.get(key, ()))

    def holders_of(self, key: str) -> Set[TransactionID]:
        return set(self.holders.get(key, ()))


@dataclass(frozen=True)
class MethodTraits:
    """Self-description of a replica control method.

    These traits regenerate the paper's Table 1: rather than hard-coding
    the table, the Table-1 benchmark *probes* each method (delivery-
    order shuffling, operation-mix acceptance, blocking behavior) and
    cross-checks the measured behavior against these declarations.
    """

    name: str
    restriction: str  #: "message delivery" / "operation semantics" / ...
    direction: str  #: "forward" or "backward"
    async_update_propagation: bool
    async_query_processing: bool
    sorting_time: str  #: "at update" / "doesn't matter" / "at read" / "N/A"


@dataclass(frozen=True)
class SystemConfig:
    """Assembly parameters for a replicated system."""

    n_sites: int = 3
    seed: int = 0
    latency: Optional[LatencyModel] = None
    loss_rate: float = 0.0
    #: per-directed-link capacity in message-units per time unit
    #: (None = infinite); MSets weigh 1 + one unit per operation.
    bandwidth: Optional[float] = None
    retry_interval: float = 5.0
    site: SiteConfig = field(default_factory=SiteConfig)
    #: logical keys preloaded at every replica.
    initial: Tuple[Tuple[str, Any], ...] = ()

    def site_names(self) -> List[str]:
        return ["site%d" % i for i in range(self.n_sites)]


class ReplicaControlMethod:
    """Interface every replica control method implements."""

    traits: MethodTraits

    def attach(self, system: "ReplicatedSystem") -> None:
        """Bind to the assembled system (called once by the system)."""
        self.system = system

    def evaluate_update_reads(
        self, et: EpsilonTransaction, origin: str, result: ETResult
    ) -> None:
        """Evaluate an update ET's read operations at its origin.

        Replica maintenance MSets carry only the writes; the ET's own
        reads are served from the origin replica at commit time and
        returned through the result, so read-modify-report updates
        ("deposit and tell me the new balance") work naturally.
        """
        site = self.system.sites[origin]
        for op in et.reads():
            result.values[op.key] = site.read(et.tid, op.key)
            site.history.record(
                et.tid, op, origin, self.system.sim.now, et
            )

    def submit_update(
        self, et: EpsilonTransaction, origin: str, on_done: DoneCallback
    ) -> None:
        raise NotImplementedError

    def submit_query(
        self, et: EpsilonTransaction, site: str, on_done: DoneCallback
    ) -> None:
        raise NotImplementedError

    def handle_message(self, site: Site, mset: MSet) -> None:
        """Process one delivered MSet at ``site``."""
        raise NotImplementedError

    def quiescent(self) -> bool:
        """Method-specific quiescence (beyond empty queues/executors)."""
        return True


class SiteExecutor:
    """Serial task executor for one site's local processing.

    Tasks run one at a time; each occupies ``duration`` simulated time
    and then its ``action`` fires atomically.  The task queue is stable
    (survives crashes); a task in flight when the site crashes restarts
    from scratch on recovery, which is safe because effects happen only
    at the atomic completion instant.
    """

    @dataclass
    class _Task:
        duration: float
        action: Callable[[], None]
        label: str = ""

    def __init__(self, sim: Simulator, site: Site) -> None:
        self.sim = sim
        self.site = site
        self._queue: List[SiteExecutor._Task] = []
        self._current: Optional[SiteExecutor._Task] = None
        self._current_handle = None
        site.on_crash.append(self._on_crash)
        site.on_recover.append(self._on_recover)

    def submit(
        self, duration: float, action: Callable[[], None], label: str = ""
    ) -> None:
        """Queue a task; it runs after everything queued before it."""
        self._queue.append(self._Task(duration, action, label))
        self._maybe_start()

    def submit_front(
        self, duration: float, action: Callable[[], None], label: str = ""
    ) -> None:
        """Queue a task ahead of the backlog (not preempting a running one)."""
        self._queue.insert(0, self._Task(duration, action, label))
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._current is not None or not self._queue or self.site.crashed:
            return
        task = self._queue.pop(0)
        self._current = task

        def complete() -> None:
            # Crash between scheduling and firing is handled by cancel,
            # but guard anyway.
            if self.site.crashed:
                return
            self._current = None
            self._current_handle = None
            task.action()
            self._maybe_start()

        self._current_handle = self.sim.schedule(task.duration, complete)

    def _on_crash(self) -> None:
        if self._current_handle is not None:
            self._current_handle.cancel()
            self._current_handle = None
        if self._current is not None:
            # The interrupted task restarts from scratch on recovery
            # (effects only happen at the atomic completion instant).
            self._queue.insert(0, self._current)
            self._current = None

    def _on_recover(self) -> None:
        self._maybe_start()

    @property
    def backlog(self) -> int:
        """Queued (including running) task count."""
        return len(self._queue) + (1 if self._current is not None else 0)

    def idle(self) -> bool:
        return not self._queue and self._current is None


class QueryRunner:
    """Runs a query ET's reads serially over simulated time.

    The method supplies an ``admit`` hook called before every read; the
    hook returns either a value-producing callable (proceed) or a delay
    hint (wait and re-admit).  The runner owns retries, abort on site
    crash, and result assembly.
    """

    RETRY_DELAY = 0.25

    def __init__(
        self,
        system: "ReplicatedSystem",
        et: EpsilonTransaction,
        site: Site,
        admit: Callable[[str], Tuple[bool, Optional[Callable[[], Any]]]],
        on_done: DoneCallback,
        inconsistency_of: Callable[[], int],
        overlap_of: Callable[[], Tuple[TransactionID, ...]],
        restart_on_block: bool = False,
        on_restart: Optional[Callable[[], None]] = None,
    ) -> None:
        """``restart_on_block=True`` makes a blocked query discard its
        partial reads and start over (after calling ``on_restart``),
        re-serializing *after* the conflicting updates — the paper's
        'put them at the beginning or at the end' for COMMU.  The
        default retries the same read in place (ORDUP-style waiting)."""
        self.system = system
        self.et = et
        self.site = site
        self.admit = admit
        self.on_done = on_done
        self.inconsistency_of = inconsistency_of
        self.overlap_of = overlap_of
        self.restart_on_block = restart_on_block
        self.on_restart = on_restart
        self.result = ETResult(
            et,
            start_time=system.sim.now,
            site=site.name,
        )
        self._keys = [op.key for op in et.operations]
        self._index = 0

    def start(self) -> None:
        self._step()

    def _step(self) -> None:
        if self.site.crashed:
            self._finish(ETStatus.ABORTED)
            return
        if self._index >= len(self._keys):
            self._finish(ETStatus.COMMITTED)
            return
        key = self._keys[self._index]
        admitted, read = self.admit(key)
        if not admitted:
            self.result.waits += 1
            if self.restart_on_block:
                self._index = 0
                self.result.values.clear()
                if self.on_restart is not None:
                    self.on_restart()
            self.system.sim.schedule(self.RETRY_DELAY, self._step)
            return

        def do_read() -> None:
            if self.site.crashed:
                self._finish(ETStatus.ABORTED)
                return
            assert read is not None
            self.result.values[key] = read()
            self._index += 1
            self._step()

        self.system.sim.schedule(self.site.config.read_time, do_read)

    def _finish(self, status: str) -> None:
        self.result.status = status
        self.result.finish_time = self.system.sim.now
        self.result.inconsistency = self.inconsistency_of()
        self.result.overlap = tuple(sorted(self.overlap_of()))
        self.on_done(self.result)


class ReplicatedSystem(MSetTransport):
    """An assembled replicated system running one control method.

    Implements :class:`MSetTransport` over the simulator's stable-queue
    mesh; the live runtime provides the same transport contract over
    real sockets.
    """

    def __init__(
        self,
        method: ReplicaControlMethod,
        config: Optional[SystemConfig] = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.sim = Simulator(self.config.seed)
        self.network = Network(
            self.sim,
            self.config.latency,
            self.config.loss_rate,
            bandwidth=self.config.bandwidth,
        )
        self.sites: Dict[str, Site] = {}
        self.executors: Dict[str, SiteExecutor] = {}
        for name in self.config.site_names():
            site = Site(name, self.sim, self.config.site)
            for key, value in self.config.initial:
                site.store.put(key, value)
            self.sites[name] = site
            self.executors[name] = SiteExecutor(self.sim, site)
        self.queues: Dict[Tuple[str, str], StableQueue] = {}
        self.method = method
        self.results: List[ETResult] = []
        self._pending_ets = 0
        self._build_mesh()
        # Attach last: methods may reconfigure the mesh (e.g. ORDUP's
        # Lamport mode switches every channel to FIFO).
        method.attach(self)

    # -- assembly ---------------------------------------------------------------

    def _build_mesh(self) -> None:
        names = sorted(self.sites)
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                self.queues[(src, dst)] = self._make_queue(src, dst)
        for name, site in self.sites.items():
            site.on_crash.append(
                lambda n=name: self._pause_outbound(n)
            )
            site.on_recover.append(
                lambda n=name: self._resume_outbound(n)
            )

    def _make_queue(self, src: str, dst: str) -> StableQueue:
        def deliver(mset: MSet) -> None:
            self.method.handle_message(self.sites[dst], mset)

        def size_of(mset: MSet) -> float:
            # Control header plus one unit per carried operation.
            return 1.0 + float(len(getattr(mset, "ops", ())))

        return StableQueue(
            self.sim,
            self.network,
            src,
            dst,
            deliver,
            retry_interval=self.config.retry_interval,
            jitter=0.2,
            size_of=size_of,
        )

    def _pause_outbound(self, name: str) -> None:
        for (src, _), queue in self.queues.items():
            if src == name:
                queue.pause()

    def _resume_outbound(self, name: str) -> None:
        for (src, _), queue in self.queues.items():
            if src == name:
                queue.resume()

    # -- messaging helpers --------------------------------------------------------

    def send_mset(self, src: str, dst: str, mset: MSet) -> None:
        """Queue one MSet on the (src, dst) stable channel."""
        self.queues[(src, dst)].enqueue(mset)

    def broadcast_mset(self, origin: str, mset: MSet) -> None:
        """Queue an MSet to every *other* site."""
        for name in sorted(self.sites):
            if name != origin:
                self.send_mset(origin, name, mset)

    def kick_queues(self) -> None:
        """Force immediate retries (post-partition catch-up)."""
        for queue in self.queues.values():
            queue.kick()

    # -- ET submission ---------------------------------------------------------------

    def submit(
        self,
        et: EpsilonTransaction,
        site: Optional[str] = None,
        on_done: Optional[DoneCallback] = None,
    ) -> None:
        """Submit an ET at a site (default: the ET's origin or site0)."""
        where = site or et.origin_site or sorted(self.sites)[0]
        if where not in self.sites:
            raise KeyError("unknown site %r" % where)
        self._pending_ets += 1

        def done(result: ETResult) -> None:
            self._pending_ets -= 1
            self.results.append(result)
            if on_done is not None:
                on_done(result)

        if et.is_update:
            self.method.submit_update(et, where, done)
        else:
            self.method.submit_query(et, where, done)

    def submit_at(
        self,
        time: float,
        et: EpsilonTransaction,
        site: Optional[str] = None,
        on_done: Optional[DoneCallback] = None,
    ) -> None:
        """Schedule a submission at a future simulated time."""
        self.sim.schedule_at(time, lambda: self.submit(et, site, on_done))

    # -- execution ---------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> int:
        return self.sim.run(until=until)

    def run_to_quiescence(self, max_time: float = 1_000_000.0) -> float:
        """Drain all activity; returns the quiescence time.

        Quiescence (paper section 2.2): all update MSets queued at
        individual sites have been processed.  Operationally: no
        simulator events pending, queues drained, executors idle, the
        method reports quiescent, and no ET awaits completion.
        """
        guard = 0
        while True:
            self.sim.run()  # drain every scheduled event
            if (
                all(q.drained() for q in self.queues.values())
                and all(e.idle() for e in self.executors.values())
                and self.method.quiescent()
                and self._pending_ets == 0
            ):
                return self.sim.now
            if self.sim.now >= max_time:
                raise RuntimeError("no quiescence before max_time")
            guard += 1
            if guard > 10_000:
                raise RuntimeError("quiescence loop did not settle")
            # Something is stuck waiting on a retry tick; nudge queues.
            self.kick_queues()
            if self.sim.is_quiescent():
                raise RuntimeError(
                    "deadlock: pending work but no scheduled events"
                )

    # -- correctness probes -----------------------------------------------------------------

    def site_values(self) -> Dict[str, Dict[str, Any]]:
        return {name: site.values() for name, site in self.sites.items()}

    def converged(self) -> bool:
        """All replicas hold identical values (paper's convergence)."""
        return replicas_converged(self.site_values())

    def global_history(self) -> History:
        """Per-site histories merged on logical keys."""
        return merge_site_histories(
            {name: site.history for name, site in self.sites.items()}
        )

    def is_one_copy_serializable(self) -> bool:
        return is_one_copy_serializable(
            {name: site.history for name, site in self.sites.items()}
        )
