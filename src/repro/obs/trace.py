"""Structured lifecycle tracing: span events with monotonic timestamps.

One :class:`TraceRecorder` accumulates flat event dicts describing the
life of ETs and MSets as they move through a runtime —
``submit -> apply -> ack -> drain`` for updates, one event per query
outcome, plus state transitions (``degraded`` gauge flips).  Events
are cheap (one dict append into a bounded deque) and schema-free
except for three reserved keys:

* ``ts`` — monotonic timestamp (``time.monotonic`` by default), so
  durations within one recorder are exact even when the wall clock
  steps;
* ``kind`` — the event type (``update-submit``, ``update-apply``,
  ``update-ack``, ``drain``, ``query``, ``degraded``, ...);
* ``site`` — the recording site, stamped automatically when the
  recorder was built with one.

Export is JSONL (one JSON object per line), the format every log
pipeline ingests; :func:`load_trace_jsonl` round-trips it.
"""

from __future__ import annotations

import io
import json
import pathlib
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Union

__all__ = ["TraceRecorder", "load_trace_jsonl"]

#: canonical update lifecycle span kinds, in order.
UPDATE_SPAN_KINDS = (
    "update-submit",
    "update-apply",
    "update-ack",
    "drain",
)


class TraceRecorder:
    """Bounded in-memory recorder of lifecycle span events."""

    def __init__(
        self,
        site: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        maxlen: Optional[int] = 16384,
        enabled: bool = True,
    ) -> None:
        self.site = site
        self.clock = clock
        self.enabled = enabled
        self.events: Deque[Dict[str, Any]] = deque(maxlen=maxlen)
        #: total events ever recorded (survives deque eviction).
        self.recorded = 0
        #: events lost to the maxlen bound.
        self.dropped = 0

    def event(self, kind: str, **fields: Any) -> None:
        """Record one span event; a no-op when disabled."""
        if not self.enabled:
            return
        record: Dict[str, Any] = {"ts": self.clock(), "kind": kind}
        if self.site is not None:
            record["site"] = self.site
        record.update(fields)
        if (
            self.events.maxlen is not None
            and len(self.events) == self.events.maxlen
        ):
            self.dropped += 1
        self.events.append(record)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self.events)

    def snapshot(self) -> List[Dict[str, Any]]:
        """A stable copy of the current event buffer."""
        return list(self.events)

    def clear(self) -> None:
        self.events.clear()

    # -- export --------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize the buffered events as JSONL."""
        buf = io.StringIO()
        for record in self.events:
            buf.write(json.dumps(record, separators=(",", ":"),
                                 sort_keys=True))
            buf.write("\n")
        return buf.getvalue()

    def dump_jsonl(self, path: Union[str, pathlib.Path]) -> int:
        """Write the buffered events to ``path``; returns the count."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return len(self.events)


def merge_traces(
    recorders: Iterable[TraceRecorder],
) -> List[Dict[str, Any]]:
    """All events of several recorders, globally ordered by timestamp.

    Recorders sharing one process share ``time.monotonic``, so the
    merged order is the real interleaving.
    """
    merged: List[Dict[str, Any]] = []
    for recorder in recorders:
        merged.extend(recorder.events)
    merged.sort(key=lambda record: record.get("ts", 0.0))
    return merged


def dump_events_jsonl(
    events: Iterable[Dict[str, Any]], path: Union[str, pathlib.Path]
) -> int:
    """Write pre-merged events to ``path`` as JSONL."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in events:
            handle.write(
                json.dumps(record, separators=(",", ":"), sort_keys=True)
            )
            handle.write("\n")
            count += 1
    return count


def load_trace_jsonl(
    path: Union[str, pathlib.Path]
) -> List[Dict[str, Any]]:
    """Round-trip a JSONL trace file back into event dicts."""
    out: List[Dict[str, Any]] = []
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            out.append(json.loads(line))
    return out
