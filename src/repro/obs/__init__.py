"""Unified observability layer: metrics registry + lifecycle tracing.

Both runtimes report through the same two primitives:

* :mod:`repro.obs.registry` — an in-process metrics registry
  (counters, gauges, fixed-bucket histograms) with Prometheus-text and
  JSON exposition.  Zero third-party dependencies; lock-free for the
  deterministic simulator, one ``threading.Lock`` when the live
  runtime asks for thread safety.
* :mod:`repro.obs.trace` — structured ET/MSet lifecycle tracing
  (``submit -> apply -> ack -> drain`` span events with monotonic
  timestamps) exportable as JSONL.

See ``docs/OBSERVABILITY.md`` for the metric and trace schemas.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    NULL_REGISTRY,
    Registry,
)
from .trace import (
    TraceRecorder,
    dump_events_jsonl,
    load_trace_jsonl,
    merge_traces,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "Registry",
    "TraceRecorder",
    "dump_events_jsonl",
    "load_trace_jsonl",
    "merge_traces",
]
