"""In-process metrics registry: counters, gauges, histograms.

Deliberately tiny and dependency-free.  The deterministic simulator
runs single-threaded, so the default registry takes no lock at all;
the live runtime (one asyncio loop, but scraped while mutating and
occasionally touched from executor threads) passes
``threadsafe=True`` to serialize mutation and exposition behind one
``threading.Lock``.

Model (a strict subset of Prometheus semantics):

* every metric is a *family* with a fixed tuple of label names; the
  child instruments are keyed by label values
  (``family.labels(peer="site1").inc()``);
* **counters** only go up (``inc``); ``set_to`` exists for mirroring
  an external monotonic source (e.g. a durable log's fsync count) and
  refuses to go backwards;
* **gauges** go anywhere (``set`` / ``inc`` / ``set_max``);
* **histograms** have fixed, immutable bucket bounds chosen at
  registration; observation is two float adds and a linear bucket
  scan (bucket lists are short).

Exposition: :meth:`Registry.render_prometheus` emits the Prometheus
text format (HELP/TYPE lines, escaped label values, cumulative
``_bucket`` counts ending in ``+Inf``, ``_sum``/``_count``);
:meth:`Registry.to_dict` emits the same data as JSON-able dicts.

A disabled registry (``Registry(enabled=False)``, or the shared
:data:`NULL_REGISTRY`) hands out no-op instruments so instrumented
code needs no ``if metrics:`` branches and benchmarks can measure the
instrumentation's cost honestly.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
]

#: seconds-scale latency buckets (ack / apply / fsync paths).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
#: batch-size-scale buckets (MSets per frame, records per group).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256,
)
#: small-count buckets (inconsistency counters, wait counts).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 3, 5, 10, 20, 50, 100,
)


class _NullLock:
    """Lock-shaped no-op for the single-threaded (sim) registry."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label value escaping."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_suffix(names: Tuple[str, ...], values: Tuple[str, ...],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(names, values)) + list(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (name, _escape_label_value(str(value)))
        for name, value in pairs
    )


class _Child:
    """Shared child plumbing: one labeled instrument of a family."""

    __slots__ = ("_family",)

    def __init__(self, family: "_Family") -> None:
        self._family = family


class Counter(_Child):
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up (inc by %r)" % amount)
        with self._family._lock:
            self.value += amount

    def set_to(self, value: float) -> None:
        """Mirror an external monotonic source; never goes backwards."""
        with self._family._lock:
            if value > self.value:
                self.value = value


class Gauge(_Child):
    """Point-in-time value."""

    __slots__ = ("value",)

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._family._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Ratchet: keep the largest value ever set (high-water mark)."""
        with self._family._lock:
            if value > self.value:
                self.value = float(value)


class Histogram(_Child):
    """Fixed-bucket histogram; buckets are set by the family."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self.counts = [0] * (len(family.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        family = self._family
        with family._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(family.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def cumulative(self) -> List[int]:
        """Per-bucket cumulative counts, ending with the +Inf total."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric family: fixed label names, children by value."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Tuple[str, ...],
        lock: Any,
        buckets: Tuple[float, ...] = (),
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self.buckets = tuple(float(b) for b in buckets)
        if self.buckets != tuple(sorted(set(self.buckets))):
            raise ValueError(
                "histogram buckets must be sorted and distinct: %r"
                % (buckets,)
            )
        self._lock = lock
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def labels(self, **labels: Any) -> Any:
        if set(labels) != set(self.label_names):
            raise ValueError(
                "metric %s takes labels %r, got %r"
                % (self.name, self.label_names, tuple(sorted(labels)))
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _KINDS[self.kind](self)
                    self._children[key] = child
        return child

    def default(self) -> Any:
        """The single unlabeled child (families with no label names)."""
        if self.label_names:
            raise ValueError(
                "metric %s is labeled (%r); use .labels()"
                % (self.name, self.label_names)
            )
        return self.labels()

    def children(self) -> Iterator[Tuple[Tuple[str, ...], _Child]]:
        return iter(sorted(self._children.items()))


class _NullInstrument:
    """Absorbs every instrument call; returned by a disabled registry."""

    def labels(self, **labels: Any) -> "_NullInstrument":
        return self

    def default(self) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_to(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0.0
    sum = 0.0
    count = 0


_NULL_INSTRUMENT = _NullInstrument()


class Registry:
    """A namespace of metric families with text/JSON exposition."""

    def __init__(
        self,
        namespace: str = "repro",
        threadsafe: bool = False,
        enabled: bool = True,
        const_labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.namespace = namespace
        self.enabled = enabled
        #: labels stamped onto every exposed sample (e.g. site name).
        self.const_labels: Tuple[Tuple[str, str], ...] = tuple(
            (str(k), str(v)) for k, v in sorted((const_labels or {}).items())
        )
        self._lock = threading.Lock() if threadsafe else _NullLock()
        self._families: Dict[str, _Family] = {}

    # -- registration --------------------------------------------------------

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Sequence[str],
        buckets: Tuple[float, ...] = (),
    ) -> Any:
        if not self.enabled:
            return _NULL_INSTRUMENT
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = _Family(
                        name, help_text, kind, tuple(labels),
                        self._lock, buckets,
                    )
                    self._families[name] = family
        if family.kind != kind:
            raise ValueError(
                "metric %s already registered as a %s" % (name, family.kind)
            )
        return family if family.label_names else family.default()

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Any:
        """A counter family (or, unlabeled, the counter itself)."""
        return self._register(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Any:
        return self._register(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Any:
        return self._register(
            name, help_text, "histogram", labels, tuple(buckets)
        )

    # -- exposition ----------------------------------------------------------

    def _full_name(self, family: _Family) -> str:
        if self.namespace:
            return "%s_%s" % (self.namespace, family.name)
        return family.name

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for _name, family in families:
            full = self._full_name(family)
            lines.append("# HELP %s %s" % (full, _escape_help(family.help)))
            lines.append("# TYPE %s %s" % (full, family.kind))
            for values, child in family.children():
                suffix = _labels_suffix(
                    family.label_names, values, self.const_labels
                )
                if family.kind == "histogram":
                    cumulative = child.cumulative()
                    for bound, count in zip(family.buckets, cumulative):
                        le = _labels_suffix(
                            family.label_names,
                            values,
                            self.const_labels
                            + (("le", _format_value(bound)),),
                        )
                        lines.append(
                            "%s_bucket%s %d" % (full, le, count)
                        )
                    inf = _labels_suffix(
                        family.label_names,
                        values,
                        self.const_labels + (("le", "+Inf"),),
                    )
                    lines.append(
                        "%s_bucket%s %d" % (full, inf, cumulative[-1])
                    )
                    lines.append(
                        "%s_sum%s %s"
                        % (full, suffix, _format_value(child.sum))
                    )
                    lines.append(
                        "%s_count%s %d" % (full, suffix, child.count)
                    )
                else:
                    lines.append(
                        "%s%s %s"
                        % (full, suffix, _format_value(child.value))
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form: one entry per family, children by labels."""
        out: Dict[str, Any] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            samples: List[Dict[str, Any]] = []
            for values, child in family.children():
                labels = dict(zip(family.label_names, values))
                labels.update(dict(self.const_labels))
                if family.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": {
                                _format_value(bound): cum
                                for bound, cum in zip(
                                    family.buckets, child.cumulative()
                                )
                            },
                        }
                    )
                else:
                    samples.append(
                        {"labels": labels, "value": child.value}
                    )
            out[self._full_name(family)] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    # -- introspection (tests / in-process assertions) -----------------------

    def get_sample(
        self, name: str, **labels: Any
    ) -> Optional[float]:
        """Current value of one counter/gauge child, or None."""
        family = self._families.get(name)
        if family is None:
            return None
        key = tuple(str(labels.get(n, "")) for n in family.label_names)
        child = family._children.get(key)
        if child is None:
            return None
        return child.value


#: shared disabled registry: every instrument is a no-op.
NULL_REGISTRY = Registry(enabled=False)
