"""Epsilon-transactions (ETs): the paper's high-level interface to ESR.

An ET is a sequence of operations (paper section 2.1).  An ET with only
reads is a *query ET*; an ET with at least one write is an *update ET*.
Update ETs must be serializable against each other; query ETs may
interleave freely but accumulate bounded inconsistency.

The ET objects here are declarative: they describe the operations and
the inconsistency budget (*epsilon specification*).  Execution happens
inside the simulator through a replica control method; the results come
back as an :class:`ETResult` carrying the observed values and the final
inconsistency accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .operations import Operation, is_write

__all__ = [
    "TransactionID",
    "EpsilonSpec",
    "EpsilonTransaction",
    "QueryET",
    "UpdateET",
    "make_et",
    "ETStatus",
    "ETResult",
    "UNLIMITED",
]

TransactionID = int

#: Sentinel epsilon limit meaning "no bound" (run freely, section 3.2:
#: "If there is no hard limit on query ET divergence, then the system
#: can run freely").
UNLIMITED = float("inf")

_tid_counter = itertools.count(1)


def _next_tid() -> TransactionID:
    return next(_tid_counter)


@dataclass(frozen=True)
class EpsilonSpec:
    """Inconsistency budget for one ET.

    Attributes:
        import_limit: maximum number of conflicting concurrent update
            ETs whose effects this query may observe — the paper's
            "inconsistency counter" limit.  ``0`` demands a strictly SR
            execution; :data:`UNLIMITED` lets the query run freely.
        export_limit: maximum number of concurrent query ETs an update
            ET may expose intermediate state to (used by the throttling
            variant of COMMU, section 3.2: "we can limit the update ETs
            in addition to query ETs").
        value_limit: maximum total *value drift* the query may import,
            summed over the worst-case value deltas of the updates it
            observes (section 5.1's "data value changed asynchronously"
            criterion; updates with unknown delta count as unbounded).
    """

    import_limit: float = UNLIMITED
    export_limit: float = UNLIMITED
    value_limit: float = UNLIMITED

    def __post_init__(self) -> None:
        if (
            self.import_limit < 0
            or self.export_limit < 0
            or self.value_limit < 0
        ):
            raise ValueError("epsilon limits must be non-negative")

    @property
    def is_strict(self) -> bool:
        """True when the spec demands serializable behavior (epsilon 0)."""
        return self.import_limit == 0 or self.value_limit == 0


@dataclass(frozen=True)
class EpsilonTransaction:
    """A sequence of operations executed under ESR.

    Instances are immutable descriptions; the same ET can be submitted
    to many sites (replica control turns an update ET into one MSet per
    replica site).
    """

    operations: Tuple[Operation, ...]
    spec: EpsilonSpec = field(default_factory=EpsilonSpec)
    tid: TransactionID = field(default_factory=_next_tid)
    origin_site: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.operations:
            raise ValueError("an ET must contain at least one operation")

    @property
    def is_query(self) -> bool:
        """True when the ET contains only reads (a query ET)."""
        return not any(is_write(op) for op in self.operations)

    @property
    def is_update(self) -> bool:
        """True when the ET contains at least one write (an update ET)."""
        return not self.is_query

    @property
    def read_set(self) -> Tuple[str, ...]:
        """Keys read by this ET, in operation order, deduplicated."""
        seen: Dict[str, None] = {}
        for op in self.operations:
            if op.is_read_op:
                seen.setdefault(op.key, None)
        return tuple(seen)

    @property
    def write_set(self) -> Tuple[str, ...]:
        """Keys written by this ET, in operation order, deduplicated."""
        seen: Dict[str, None] = {}
        for op in self.operations:
            if is_write(op):
                seen.setdefault(op.key, None)
        return tuple(seen)

    @property
    def keys(self) -> Tuple[str, ...]:
        """All keys the ET touches."""
        seen: Dict[str, None] = {}
        for op in self.operations:
            seen.setdefault(op.key, None)
        return tuple(seen)

    def writes(self) -> Iterable[Operation]:
        """Iterate over the write operations of this ET."""
        return (op for op in self.operations if is_write(op))

    def reads(self) -> Iterable[Operation]:
        """Iterate over the read operations of this ET."""
        return (op for op in self.operations if op.is_read_op)


class QueryET(EpsilonTransaction):
    """Marker subclass for read-only ETs; validates purity."""

    def __init__(
        self,
        operations: Sequence[Operation],
        spec: Optional[EpsilonSpec] = None,
        origin_site: Optional[str] = None,
    ) -> None:
        ops = tuple(operations)
        if any(is_write(op) for op in ops):
            raise ValueError("QueryET may not contain write operations")
        super().__init__(ops, spec or EpsilonSpec(), _next_tid(), origin_site)


class UpdateET(EpsilonTransaction):
    """Marker subclass for ETs with at least one write; validates it."""

    def __init__(
        self,
        operations: Sequence[Operation],
        spec: Optional[EpsilonSpec] = None,
        origin_site: Optional[str] = None,
    ) -> None:
        ops = tuple(operations)
        if not any(is_write(op) for op in ops):
            raise ValueError("UpdateET must contain at least one write")
        super().__init__(ops, spec or EpsilonSpec(), _next_tid(), origin_site)


def make_et(
    operations: Sequence[Operation],
    spec: Optional[EpsilonSpec] = None,
    origin_site: Optional[str] = None,
) -> EpsilonTransaction:
    """Build a :class:`QueryET` or :class:`UpdateET` from the operations.

    This is the convenience constructor applications normally use: the
    query/update classification follows the paper's definition
    automatically.
    """
    ops = tuple(operations)
    if any(is_write(op) for op in ops):
        return UpdateET(ops, spec, origin_site)
    return QueryET(ops, spec, origin_site)


class ETStatus:
    """Terminal states of an executed ET."""

    COMMITTED = "committed"
    ABORTED = "aborted"
    COMPENSATED = "compensated"


@dataclass
class ETResult:
    """Outcome of executing one ET through a replica control method.

    Attributes:
        et: the transaction that ran.
        status: one of :class:`ETStatus`.
        values: key -> value observed by the ET's reads.
        inconsistency: final value of the ET's inconsistency counter
            (number of conflicting concurrent update ETs observed).
        overlap: tids of the update ETs in this ET's overlap set.
        start_time / finish_time: simulated timestamps.
        site: the site that served the ET (queries run at one replica).
        waits: number of times the ET blocked on divergence control.
    """

    et: EpsilonTransaction
    status: str = ETStatus.COMMITTED
    values: Dict[str, Any] = field(default_factory=dict)
    inconsistency: int = 0
    overlap: Tuple[TransactionID, ...] = ()
    start_time: float = 0.0
    finish_time: float = 0.0
    site: Optional[str] = None
    waits: int = 0

    @property
    def latency(self) -> float:
        """Simulated wall-clock latency of the ET."""
        return self.finish_time - self.start_time

    @property
    def within_bound(self) -> bool:
        """True when observed inconsistency respects the epsilon spec."""
        return self.inconsistency <= self.et.spec.import_limit


def reset_tid_counter() -> None:
    """Restart transaction id generation (test isolation helper)."""
    global _tid_counter
    _tid_counter = itertools.count(1)
