"""Core ESR theory: operations, ETs, histories, checkers, divergence.

This subpackage is self-contained (no simulator dependencies) so the
correctness machinery can be tested and reused independently of the
distributed-system substrate.
"""

from .operations import (
    AppendOp,
    DecrementOp,
    DivideOp,
    IncrementOp,
    MultiplyOp,
    Operation,
    OperationError,
    ReadOp,
    TimestampedWriteOp,
    WriteOp,
    commutes,
    conflicts,
    is_read,
    is_write,
)
from .transactions import (
    ETResult,
    ETStatus,
    EpsilonSpec,
    EpsilonTransaction,
    QueryET,
    TransactionID,
    UNLIMITED,
    UpdateET,
    make_et,
)
from .history import Event, History, SerializationGraph
from .serializability import (
    is_epsilon_serial,
    is_esr,
    is_one_copy_serializable,
    is_serial,
    is_serializable,
    is_serializable_bruteforce,
    merge_site_histories,
    replicas_converged,
    serial_witness,
)
from .overlap import OverlapRecord, OverlapTracker, query_overlaps
from .inconsistency import (
    EpsilonExceeded,
    InconsistencyCounter,
    LockCounterTable,
)
from .locks import (
    CLASSIC_2PL,
    COMMU_TABLE,
    Compatibility,
    CompatibilityTable,
    DeadlockError,
    LockGrant,
    LockManager,
    LockMode,
    ORDUP_TABLE,
)
from .divergence import (
    Admission,
    BasicTimestampDC,
    Decision,
    DivergenceControl,
    OptimisticDC,
    TwoPhaseLockingDC,
    VTNCDC,
)
from .scheduler import LocalScheduler, ScheduledET

__all__ = [
    # operations
    "AppendOp", "DecrementOp", "DivideOp", "IncrementOp", "MultiplyOp",
    "Operation", "OperationError", "ReadOp", "TimestampedWriteOp",
    "WriteOp", "commutes", "conflicts", "is_read", "is_write",
    # transactions
    "ETResult", "ETStatus", "EpsilonSpec", "EpsilonTransaction",
    "QueryET", "TransactionID", "UNLIMITED", "UpdateET", "make_et",
    # histories and checkers
    "Event", "History", "SerializationGraph", "is_epsilon_serial",
    "is_esr", "is_one_copy_serializable", "is_serial", "is_serializable",
    "is_serializable_bruteforce", "merge_site_histories",
    "replicas_converged", "serial_witness",
    # overlap and inconsistency
    "OverlapRecord", "OverlapTracker", "query_overlaps",
    "EpsilonExceeded", "InconsistencyCounter", "LockCounterTable",
    # locks
    "CLASSIC_2PL", "COMMU_TABLE", "Compatibility", "CompatibilityTable",
    "DeadlockError", "LockGrant", "LockManager", "LockMode", "ORDUP_TABLE",
    # divergence control
    "Admission", "BasicTimestampDC", "Decision", "DivergenceControl",
    "OptimisticDC", "TwoPhaseLockingDC", "VTNCDC",
    # local scheduling
    "LocalScheduler", "ScheduledET",
]
