"""Correctness checkers: SR, epsilon-serial, ESR, and replicated 1SR.

These checkers are the ground truth for the whole reproduction: every
simulation records a global history, and the test suite asserts the
paper's guarantees against these functions.

Definitions implemented (paper section 2.1):

* **SRlog** — a history whose serialization graph is acyclic
  (conflict-serializability, sufficient for view equivalence to a
  serial log under the R/W model, and the criterion the paper's own
  divergence-control methods enforce).
* **epsilon-serial log** — a history of query and update ETs such that
  deleting the query ETs leaves an SRlog.
* **ESRlog** — a history equivalent to an epsilon-serial log.  For the
  conflict-based model used throughout the paper's methods this
  coincides with the epsilon-serial test on the recorded history, so
  :func:`is_esr` = :func:`is_epsilon_serial`, with the additional
  per-query error accounting exposed by :func:`query_overlaps`.
* **1SR over replicas** — the per-site histories, mapped to logical
  keys, merge into one SR history, and all replicas of each logical
  object hold the same value at quiescence.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .history import Event, History, SerializationGraph
from .operations import Operation, conflicts
from .transactions import TransactionID

__all__ = [
    "is_serializable",
    "is_serial",
    "is_epsilon_serial",
    "is_esr",
    "serial_witness",
    "is_serializable_bruteforce",
    "merge_site_histories",
    "is_one_copy_serializable",
    "replicas_converged",
]


def is_serial(history: History) -> bool:
    """True when the history is a serial log (no interleaving)."""
    return history.is_serial()


def is_serializable(history: History) -> bool:
    """Conflict-serializability via serialization-graph acyclicity."""
    return history.serialization_graph().is_acyclic()


def serial_witness(history: History) -> Optional[List[TransactionID]]:
    """A serial transaction order equivalent to the history, or None."""
    return history.serialization_graph().topological_order()


def is_epsilon_serial(history: History) -> bool:
    """The paper's epsilon-serial test: update projection must be SR.

    'A log containing only query ETs and update ETs is called an
    epsilon-serial log if, after deleting query ETs from the log, the
    remaining update ETs form an SRlog.'
    """
    return is_serializable(history.without_queries())


def is_esr(history: History) -> bool:
    """ESR correctness of a recorded history.

    A history is ESR when it is (equivalent to) an epsilon-serial log.
    Under conflict semantics the recorded history is ESR iff its
    update-ET projection is conflict-SR, which is the epsilon-serial
    test; query-ET error is bounded separately via overlaps.
    """
    return is_epsilon_serial(history)


def is_serializable_bruteforce(history: History) -> bool:
    """Exhaustive serializability test for small logs (test oracle).

    Tries every permutation of the transactions and checks conflict
    equivalence: the history is SR iff some serial order preserves the
    relative order of every conflicting pair.  Exponential — intended
    only as a property-test oracle for histories of <= 7 transactions.
    """
    tids = history.tids
    if len(tids) > 8:
        raise ValueError("brute-force checker limited to 8 transactions")
    pairs = history.conflict_pairs()
    for perm in itertools.permutations(tids):
        position = {tid: i for i, tid in enumerate(perm)}
        if all(position[a.tid] < position[b.tid] for a, b in pairs):
            return True
    return not tids


def query_overlaps(history: History) -> Dict[TransactionID, List[TransactionID]]:
    """Conflicting-overlap sets of the query transactions in a history.

    For each query ET, the update ETs that (a) overlap it in time —
    had not finished at the query's first operation or started during
    it — and (b) actually conflict with it on some key (paper section
    2.1's parenthetical: 'update ETs that actually affect objects that
    the query ET seeks to access').  The size of this set upper-bounds
    the query's inconsistency.
    """
    first: Dict[TransactionID, int] = {}
    last: Dict[TransactionID, int] = {}
    for idx, ev in enumerate(history):
        first.setdefault(ev.tid, idx)
        last[ev.tid] = idx

    update_tids = set(history.update_tids())
    result: Dict[TransactionID, List[TransactionID]] = {}
    for qtid in history.query_tids():
        q_ops = history.operations_of(qtid)
        overlap: List[TransactionID] = []
        for utid in update_tids:
            time_overlap = not (
                last[utid] < first[qtid] or first[utid] > last[qtid]
            )
            if not time_overlap:
                continue
            u_ops = history.operations_of(utid)
            if any(conflicts(q, u) for q in q_ops for u in u_ops):
                overlap.append(utid)
        result[qtid] = sorted(overlap)
    return result


def merge_site_histories(
    site_histories: Mapping[str, History],
    key_map: Optional[Mapping[str, str]] = None,
) -> History:
    """Merge per-site histories into one logical history.

    Events are interleaved by ``(time, site, position)``; physical copy
    names are rewritten to logical keys through ``key_map`` when given
    (identity otherwise).  The merged history is what the 1SR test runs
    on: one-copy serializability asks whether the multi-site execution
    is equivalent to a serial execution on a single logical copy.
    """
    tagged: List[Tuple[float, str, int, Event]] = []
    for site, hist in sorted(site_histories.items()):
        for pos, ev in enumerate(hist):
            tagged.append((ev.time, site, pos, ev))
    tagged.sort(key=lambda item: (item[0], item[1], item[2]))

    merged = History()
    for _, site, _, ev in tagged:
        op = ev.op
        if key_map and op.key in key_map:
            # dataclasses are frozen; rebuild with the logical key.
            op = _with_key(op, key_map[op.key])
        merged.append(Event(ev.tid, op, site, ev.time))
    for site_hist in site_histories.values():
        for tid, et in site_hist._transactions.items():  # noqa: SLF001
            if et is not None:
                merged._transactions[tid] = et  # noqa: SLF001
    return merged


def _with_key(op: Operation, key: str) -> Operation:
    """Rebuild a frozen operation dataclass with a different key."""
    fields = dict(op.__dict__)
    for derived in ("is_read_op", "is_write_op", "read_independent"):
        fields.pop(derived, None)
    fields["key"] = key
    return type(op)(**fields)


def is_one_copy_serializable(
    site_histories: Mapping[str, History],
    key_map: Optional[Mapping[str, str]] = None,
) -> bool:
    """1SR test on per-site histories (update transactions only).

    The paper's convergence guarantee is that once all MSets are
    processed, the committed update ETs are equivalent to a serial
    execution on a one-copy database.  Every update ET executes at
    every replica, so the test is that the *union* of the per-site
    serialization graphs (update projection, physical keys mapped to
    logical ones) is acyclic: a cycle would exhibit two sites applying
    conflicting updates in opposite orders, which can never be
    rearranged into one serial one-copy execution.

    Merging the raw logs by wall-clock time and testing that single
    log would be wrong — replicas legitimately apply the same serial
    order at different times, which looks like an interleaving cycle
    in the merged log even though the execution is perfectly 1SR.
    """
    union = SerializationGraph()
    for site in sorted(site_histories):
        hist = site_histories[site]
        if key_map:
            mapped = History()
            for ev in hist:
                op = ev.op
                if op.key in key_map:
                    op = _with_key(op, key_map[op.key])
                mapped.append(Event(ev.tid, op, ev.site, ev.time))
            for tid, et in hist._transactions.items():  # noqa: SLF001
                if et is not None:
                    mapped._transactions[tid] = et  # noqa: SLF001
            hist = mapped
        graph = hist.without_queries().serialization_graph()
        for node in graph.nodes:
            union.add_node(node)
            for succ in graph.successors(node):
                union.add_edge(node, succ)
    return union.is_acyclic()


def replicas_converged(site_values: Mapping[str, Mapping[str, Any]]) -> bool:
    """True when every site holds identical values for shared keys.

    ``site_values`` maps site name -> {logical key -> value}.  The test
    requires agreement on the intersection of key sets and identical
    key sets across sites (a missing replica is non-convergence).
    """
    sites = sorted(site_values)
    if len(sites) <= 1:
        return True
    reference = site_values[sites[0]]
    for site in sites[1:]:
        values = site_values[site]
        if set(values) != set(reference):
            return False
        for key, val in reference.items():
            other = values[key]
            if _normalize(other) != _normalize(val):
                return False
    return True


def _normalize(value: Any) -> Any:
    """Canonical form for convergence comparison.

    Append-only sequences converge as multisets (COMMU treats appends
    as commutative); everything else compares by equality.
    """
    if isinstance(value, tuple):
        try:
            return tuple(sorted(value, key=repr))
        except TypeError:
            return value
    return value
