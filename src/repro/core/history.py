"""Histories (logs) of ET operations and their dependency structure.

Paper section 2.1: a history or *log* is a sequence of operations; a
log is serializable (an SRlog) when its operations can be rearranged
into a serial log without moving one operation past another it has a
read-write or write-write dependency on.

A :class:`History` records ``(transaction, operation)`` events in
execution order and derives:

* the conflict pairs (dependencies) between transactions,
* the serialization graph whose acyclicity decides conflict-SR,
* the query-deleted projection used by the epsilon-serial test.

Dependencies are semantic: commuting writes (COMMU/RITU operations) do
not create edges, matching the paper's divergence-control relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .operations import Operation, conflicts, is_write
from .transactions import EpsilonTransaction, TransactionID

__all__ = ["Event", "History", "SerializationGraph"]


@dataclass(frozen=True)
class Event:
    """One operation execution in a history.

    Attributes:
        tid: transaction the operation belongs to.
        op: the operation.
        site: site at which it executed (``None`` for single-site logs).
        time: simulated time of execution (ties broken by log position).
    """

    tid: TransactionID
    op: Operation
    site: Optional[str] = None
    time: float = 0.0


class SerializationGraph:
    """Directed conflict graph over transactions.

    An edge ``a -> b`` means some operation of ``a`` conflicts with and
    precedes some operation of ``b``; the history is conflict-SR iff the
    graph is acyclic (the classical serializability theorem, which the
    paper inherits for its update-ET projection).
    """

    def __init__(self) -> None:
        self._edges: Dict[TransactionID, Set[TransactionID]] = {}
        self._nodes: Set[TransactionID] = set()

    def add_node(self, tid: TransactionID) -> None:
        self._nodes.add(tid)
        self._edges.setdefault(tid, set())

    def add_edge(self, a: TransactionID, b: TransactionID) -> None:
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self._edges[a].add(b)

    @property
    def nodes(self) -> Set[TransactionID]:
        return set(self._nodes)

    def successors(self, tid: TransactionID) -> Set[TransactionID]:
        return set(self._edges.get(tid, ()))

    def has_edge(self, a: TransactionID, b: TransactionID) -> bool:
        return b in self._edges.get(a, ())

    def is_acyclic(self) -> bool:
        """Cycle test via iterative three-color DFS."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self._nodes}
        for start in self._nodes:
            if color[start] != WHITE:
                continue
            stack: List[Tuple[TransactionID, Iterator[TransactionID]]] = [
                (start, iter(self._edges.get(start, ())))
            ]
            color[start] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if color[succ] == GRAY:
                        return False
                    if color[succ] == WHITE:
                        color[succ] = GRAY
                        stack.append((succ, iter(self._edges.get(succ, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return True

    def topological_order(self) -> Optional[List[TransactionID]]:
        """A serial order witnessing SR, or ``None`` if cyclic.

        Kahn's algorithm with deterministic (sorted) tie-breaking so
        tests and experiments are reproducible.
        """
        indegree: Dict[TransactionID, int] = {n: 0 for n in self._nodes}
        for a, outs in self._edges.items():
            for b in outs:
                indegree[b] += 1
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: List[TransactionID] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            inserted = []
            for succ in self._edges.get(node, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    inserted.append(succ)
            if inserted:
                ready.extend(inserted)
                ready.sort()
        if len(order) != len(self._nodes):
            return None
        return order


class History:
    """An append-only log of :class:`Event` items with derived structure."""

    def __init__(self, events: Optional[Iterable[Event]] = None) -> None:
        self._events: List[Event] = []
        self._transactions: Dict[TransactionID, Optional[EpsilonTransaction]] = {}
        if events:
            for ev in events:
                self.append(ev)

    def append(self, event: Event) -> None:
        """Record one executed operation."""
        self._events.append(event)
        self._transactions.setdefault(event.tid, None)

    def record(
        self,
        tid: TransactionID,
        op: Operation,
        site: Optional[str] = None,
        time: float = 0.0,
        et: Optional[EpsilonTransaction] = None,
    ) -> None:
        """Convenience: append an event and remember its ET, if given."""
        self.append(Event(tid, op, site, time))
        if et is not None:
            self._transactions[tid] = et

    def register(self, et: EpsilonTransaction) -> None:
        """Associate an ET object with its tid (for query/update class)."""
        self._transactions[et.tid] = et

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> Tuple[Event, ...]:
        return tuple(self._events)

    @property
    def tids(self) -> List[TransactionID]:
        """Transaction ids in first-appearance order."""
        seen: Dict[TransactionID, None] = {}
        for ev in self._events:
            seen.setdefault(ev.tid, None)
        return list(seen)

    def operations_of(self, tid: TransactionID) -> List[Operation]:
        return [ev.op for ev in self._events if ev.tid == tid]

    def is_update_tid(self, tid: TransactionID) -> bool:
        """Classify a transaction as update by its ET or logged writes."""
        et = self._transactions.get(tid)
        if et is not None:
            return et.is_update
        return any(is_write(ev.op) for ev in self._events if ev.tid == tid)

    def update_tids(self) -> List[TransactionID]:
        return [t for t in self.tids if self.is_update_tid(t)]

    def query_tids(self) -> List[TransactionID]:
        return [t for t in self.tids if not self.is_update_tid(t)]

    def project(self, tids: Iterable[TransactionID]) -> "History":
        """Sub-history containing only the given transactions.

        The epsilon-serial test (paper section 2.1) projects away query
        ETs and checks the update remainder for SR.
        """
        keep = set(tids)
        sub = History(ev for ev in self._events if ev.tid in keep)
        for tid in keep:
            et = self._transactions.get(tid)
            if et is not None:
                sub._transactions[tid] = et
        return sub

    def without_queries(self) -> "History":
        """The update-ET projection used by the epsilon-serial test."""
        return self.project(self.update_tids())

    def conflict_pairs(self) -> List[Tuple[Event, Event]]:
        """Ordered pairs of conflicting events (earlier, later).

        Conflicts follow operation semantics (:func:`conflicts`), so
        commutative updates do not generate pairs.
        """
        pairs: List[Tuple[Event, Event]] = []
        # Group by key to avoid the quadratic scan across unrelated keys.
        by_key: Dict[str, List[Event]] = {}
        for ev in self._events:
            by_key.setdefault(ev.op.key, []).append(ev)
        for events in by_key.values():
            for i, first in enumerate(events):
                for second in events[i + 1 :]:
                    if first.tid == second.tid:
                        continue
                    if conflicts(first.op, second.op):
                        pairs.append((first, second))
        return pairs

    def serialization_graph(self) -> SerializationGraph:
        """Conflict graph over the transactions of this history."""
        graph = SerializationGraph()
        for tid in self.tids:
            graph.add_node(tid)
        for first, second in self.conflict_pairs():
            graph.add_edge(first.tid, second.tid)
        return graph

    def render(self) -> str:
        """The paper's log notation: ``R1(a) W1(b) W2(b) ...``.

        Reads render as ``R``, every write-class operation as ``W``
        (the subscript is the transaction id).  Handy in test failure
        messages and when eyeballing miniature histories.
        """
        parts = []
        for ev in self._events:
            letter = "R" if ev.op.is_read_op else "W"
            parts.append("%s%d(%s)" % (letter, ev.tid, ev.op.key))
        return " ".join(parts)

    def is_serial(self) -> bool:
        """True when transactions run one at a time (no interleaving)."""
        last_tid: Optional[TransactionID] = None
        finished: Set[TransactionID] = set()
        for ev in self._events:
            if ev.tid != last_tid:
                if ev.tid in finished:
                    return False
                if last_tid is not None:
                    finished.add(last_tid)
                last_tid = ev.tid
        return True
