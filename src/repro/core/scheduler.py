"""Local ET scheduler: concurrent ETs under a divergence control engine.

Replica control (the :mod:`repro.replica` layer) keeps replicas of one
logical object consistent *across* sites.  Divergence control — the
paper's analogue of concurrency control (section 2.1) — orders the
operations of concurrent ETs *within* one site.  This module supplies
the missing executor: it runs many ETs concurrently over simulated
time at a single site, asking a :class:`~repro.core.divergence`
engine to admit each operation.

It exists for two reasons:

* it turns Tables 2 and 3 from static matrices into *measurable
  behavior* — the ablation benchmark sweeps the lock table and reports
  throughput/blocking (classic 2PL vs ORDUP vs COMMU);
* it gives applications a tested local transaction layer should they
  embed ETs without replication.

Scheduling model: each ET is a coroutine of operations; an operation
occupies ``op_time`` simulated time once admitted.  WAIT decisions are
retried (with a small backoff) until the blocker commits; REJECT
decisions abort the ET, which restarts with a fresh timestamp up to
``max_restarts`` times (timestamp-ordering engines need restarts to
guarantee progress).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.registry import NULL_REGISTRY, Registry
from ..sim.events import Simulator
from ..storage.kv import KeyValueStore
from .divergence import Admission, BasicTimestampDC, DivergenceControl
from .operations import Operation, is_write
from .transactions import (
    EpsilonTransaction,
    ETResult,
    ETStatus,
    TransactionID,
)

__all__ = ["LocalScheduler", "ScheduledET"]


@dataclass
class ScheduledET:
    """Book-keeping for one ET executing in the scheduler."""

    et: EpsilonTransaction
    on_done: Callable[[ETResult], None]
    result: ETResult = None  # type: ignore[assignment]
    index: int = 0
    restarts: int = 0
    #: consecutive WAIT decisions on the current operation; reset on
    #: progress.  Exceeding the scheduler's wait limit aborts the ET —
    #: timeout-based deadlock resolution, needed because polling
    #: retries never enter the lock manager's waits-for graph (e.g.
    #: two read-modify-write ETs deadlocking on a lock upgrade).
    consecutive_waits: int = 0
    #: pending writes staged until commit (strict 2PL discipline).
    staged: List[Operation] = field(default_factory=list)


class LocalScheduler:
    """Run ETs concurrently at one site under a divergence engine."""

    RETRY_DELAY = 0.25

    def __init__(
        self,
        sim: Simulator,
        dc: DivergenceControl,
        store: Optional[KeyValueStore] = None,
        op_time: float = 0.5,
        max_restarts: int = 20,
        wait_limit: int = 40,
        registry: Optional[Registry] = None,
    ) -> None:
        """``wait_limit`` bounds consecutive WAIT retries on a single
        operation before the ET aborts and restarts — the timeout that
        resolves deadlocks the polling model cannot observe.

        ``registry`` (a :class:`repro.obs.Registry`) mirrors the
        scheduler's wait/abort/commit tallies as metric samples; the
        default no-op registry keeps standalone use dependency-free.
        """
        self.sim = sim
        self.dc = dc
        self.store = store or KeyValueStore()
        self.op_time = op_time
        self.max_restarts = max_restarts
        self.wait_limit = wait_limit
        self._active: Dict[TransactionID, ScheduledET] = {}
        self.completed: List[ETResult] = []
        #: total WAIT decisions observed (the blocking metric the
        #: lock-table ablation reports).
        self.wait_count = 0
        self.abort_count = 0
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._m_waits = self.registry.counter(
            "scheduler_waits_total",
            "WAIT admissions handed to local ET operations",
        )
        self._m_aborts = self.registry.counter(
            "scheduler_aborts_total",
            "local ET aborts (restarts included)",
        )
        self._m_ets = self.registry.counter(
            "scheduler_ets_total",
            "locally scheduled ETs by final status",
            labels=("status",),
        )

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        et: EpsilonTransaction,
        on_done: Optional[Callable[[ETResult], None]] = None,
    ) -> None:
        """Start executing ``et`` now."""
        state = ScheduledET(et, on_done or (lambda result: None))
        state.result = ETResult(et, start_time=self.sim.now)
        self._active[et.tid] = state
        self._begin(state)
        self._step(state)

    def _begin(self, state: ScheduledET) -> None:
        if isinstance(self.dc, BasicTimestampDC):
            # Fresh timestamp per (re)start: restart = later position
            # in the timestamp order.
            self.dc.begin(state.et, timestamp=self.sim.now + state.restarts)
        else:
            self.dc.begin(state.et)

    # -- execution loop --------------------------------------------------------

    def _step(self, state: ScheduledET) -> None:
        if state.index >= len(state.et.operations):
            self._commit(state)
            return
        op = state.et.operations[state.index]
        decision = self.dc.request(state.et, op)
        if decision.admission is Admission.WAIT:
            self.wait_count += 1
            self._m_waits.inc()
            state.result.waits += 1
            state.consecutive_waits += 1
            if state.consecutive_waits > self.wait_limit:
                # Timed out: assume deadlock, release and restart.
                self._abort_and_maybe_restart(state)
                return
            self.sim.schedule(self.RETRY_DELAY, lambda: self._step(state))
            return
        if decision.admission is Admission.REJECT:
            self._abort_and_maybe_restart(state)
            return
        state.consecutive_waits = 0
        # Admitted (possibly with charge, already accounted by the DC).
        def complete() -> None:
            self._apply(state, op)
            state.index += 1
            self._step(state)

        self.sim.schedule(self.op_time, complete)

    def _apply(self, state: ScheduledET, op: Operation) -> None:
        if is_write(op):
            # Effects become visible at commit; stage them (strict
            # execution — aborts never expose dirty data).
            state.staged.append(op)
            return
        state.result.values[op.key] = self.store.get(op.key, 0)

    def _commit(self, state: ScheduledET) -> None:
        if not self.dc.validate(state.et):
            # Optimistic engines may refuse at commit time.
            self._abort_and_maybe_restart(state)
            return
        for op in state.staged:
            self.store.apply(op, default=0)
        self.dc.commit(state.et)
        self._active.pop(state.et.tid, None)
        state.result.status = ETStatus.COMMITTED
        state.result.finish_time = self.sim.now
        state.result.inconsistency = self.dc.inconsistency_of(state.et.tid)
        self.completed.append(state.result)
        self._m_ets.labels(status="committed").inc()
        state.on_done(state.result)

    def _abort_and_maybe_restart(self, state: ScheduledET) -> None:
        self.abort_count += 1
        self._m_aborts.inc()
        self.dc.abort(state.et)
        state.staged.clear()
        state.result.values.clear()
        state.index = 0
        state.consecutive_waits = 0
        state.restarts += 1
        if state.restarts > self.max_restarts:
            self._active.pop(state.et.tid, None)
            state.result.status = ETStatus.ABORTED
            state.result.finish_time = self.sim.now
            self.completed.append(state.result)
            self._m_ets.labels(status="aborted").inc()
            state.on_done(state.result)
            return
        delay = self.RETRY_DELAY * (1 + state.restarts)

        def restart() -> None:
            self._begin(state)
            self._step(state)

        self.sim.schedule(delay, restart)

    # -- inspection ----------------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    def drained(self) -> bool:
        return not self._active
