"""Inconsistency accounting: counters and lock-counters.

The paper bounds query-ET error with two bookkeeping devices:

* An **inconsistency counter** per query ET (sections 3.1 and 3.3):
  incremented each time the query observes the effect of a conflicting
  concurrent update; when it reaches the epsilon limit the query must
  fall back to serializable behavior (wait for global order / refuse
  versions newer than the VTNC).

* A **lock-counter** per object (section 3.2, COMMU): incremented while
  an update ET holds the object, decremented when the update ET ends.
  A non-zero lock-counter tells a reading query that it is importing
  that much potential inconsistency.  Sagas (section 4.2) keep the
  counter raised for the whole saga so queries see a conservative
  estimate of potential compensation.

Both devices live here so every replica control method shares one
implementation and the tests can verify the arithmetic in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .transactions import EpsilonSpec, TransactionID, UNLIMITED

__all__ = [
    "InconsistencyCounter",
    "EpsilonExceeded",
    "LockCounterTable",
]


class EpsilonExceeded(Exception):
    """Raised when admitting an access would break the epsilon spec.

    Divergence control catches this and forces the serializable path
    (block until in global order, or read only VTNC-visible versions)
    rather than failing the transaction.
    """

    def __init__(self, tid: TransactionID, counter: int, limit: float) -> None:
        super().__init__(
            "query %s inconsistency counter %d would exceed limit %s"
            % (tid, counter, limit)
        )
        self.tid = tid
        self.counter = counter
        self.limit = limit


@dataclass
class InconsistencyCounter:
    """Per-query-ET error budget tracking.

    ``charge()`` is called by divergence control each time the query is
    about to observe one unit of inconsistency (one conflicting
    concurrent update, one out-of-order read, one version newer than
    the VTNC).  It either admits the charge or raises
    :class:`EpsilonExceeded`, in which case the caller must take the
    consistent path instead.
    """

    tid: TransactionID
    spec: EpsilonSpec
    value: int = 0
    #: accumulated worst-case value drift (value-based epsilon).
    value_drift: float = 0.0
    #: tids of the updates whose effects were actually imported.
    imported: Set[TransactionID] = field(default_factory=set)

    @property
    def limit(self) -> float:
        return self.spec.import_limit

    @property
    def exhausted(self) -> bool:
        """True when no further inconsistency may be admitted."""
        return (
            self.value >= self.limit
            or self.value_drift >= self.spec.value_limit
        )

    def can_charge(self, units: int = 1, drift: float = 0.0) -> bool:
        """Would charging ``units`` (and ``drift`` value units) fit?

        ``drift=None`` (unknown delta) only fits an unlimited value
        budget.
        """
        if self.value + units > self.limit:
            return False
        if drift is None:  # unknown delta needs an unlimited budget
            return self.spec.value_limit == UNLIMITED
        return self.value_drift + drift <= self.spec.value_limit

    def charge(
        self,
        units: int = 1,
        source: Optional[TransactionID] = None,
        drift: float = 0.0,
    ) -> int:
        """Admit ``units`` of inconsistency or raise.

        Returns the new counter value.  ``source`` (when known) records
        which update ET the inconsistency came from, enabling the
        error-vs-overlap assertion in tests.  ``drift`` adds to the
        value-based budget.
        """
        if not self.can_charge(units, drift):
            raise EpsilonExceeded(self.tid, self.value + units, self.limit)
        self.value += units
        if drift is not None:
            self.value_drift += drift
        if source is not None:
            self.imported.add(source)
        return self.value


class LockCounterTable:
    """Per-object lock-counters (COMMU divergence bounding).

    'When updating an object, the update ET increments the object
    lock-counter by one. ... At the end of update-ET execution all the
    lock-counters are decremented.'  The table also supports the saga
    variant where decrements are deferred to saga end.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        #: holder tid -> keys it has raised (for symmetric release).
        self._held: Dict[TransactionID, List[str]] = {}
        #: saga id -> participating update tids whose release is deferred.
        self._sagas: Dict[str, List[TransactionID]] = {}
        self._saga_of: Dict[TransactionID, str] = {}

    def count(self, key: str) -> int:
        """Current lock-counter of ``key`` (0 when untouched)."""
        return self._counts.get(key, 0)

    def raise_for(self, tid: TransactionID, key: str) -> int:
        """Update ET ``tid`` starts touching ``key``; returns new count."""
        self._counts[key] = self._counts.get(key, 0) + 1
        self._held.setdefault(tid, []).append(key)
        return self._counts[key]

    def release(self, tid: TransactionID) -> None:
        """Update ET ``tid`` finished: decrement all its counters.

        If the tid is enrolled in a saga, the release is deferred until
        :meth:`end_saga` (section 4.2's conservative estimate).
        """
        if tid in self._saga_of:
            return
        self._release_now(tid)

    def _release_now(self, tid: TransactionID) -> None:
        for key in self._held.pop(tid, ()):  # each raise gets one decrement
            new = self._counts.get(key, 0) - 1
            if new <= 0:
                self._counts.pop(key, None)
            else:
                self._counts[key] = new

    # -- saga support ------------------------------------------------------

    def enroll_in_saga(self, saga_id: str, tid: TransactionID) -> None:
        """Defer this update ET's counter release to the saga's end."""
        self._sagas.setdefault(saga_id, []).append(tid)
        self._saga_of[tid] = saga_id

    def end_saga(self, saga_id: str) -> None:
        """Release the counters of every step of the finished saga."""
        for tid in self._sagas.pop(saga_id, ()):  # steps release together
            self._saga_of.pop(tid, None)
            self._release_now(tid)

    # -- query-side accounting --------------------------------------------

    def inconsistency_of(self, keys: Tuple[str, ...]) -> int:
        """Total potential inconsistency a query importing ``keys`` sees.

        'Each lock-counter different from zero means a certain degree of
        inconsistency added to the query ET.'
        """
        return sum(self._counts.get(key, 0) for key in keys)

    def exceeds(self, key: str, limit: float) -> bool:
        """True when raising ``key`` again would pass ``limit``.

        Used by the update-throttling variant: 'if the lock-counter of
        an object exceeds a specified limit, then the update ET trying
        to write must either wait or abort.'
        """
        if limit == UNLIMITED:
            return False
        return self._counts.get(key, 0) + 1 > limit
