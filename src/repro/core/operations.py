"""Operation algebra for epsilon-transactions.

The paper's replica control methods are driven by *operation semantics*:

* COMMU (section 3.2) requires update operations to commute.
* RITU (section 3.3) requires updates to be read-independent
  ("blind writes" / timestamped overwrites).
* COMPE (section 4) requires every update operation to publish a
  compensation (inverse) operation.

This module provides the operation classes and the three relations the
methods consume: *conflict*, *commutativity*, and *inverse*.  Conflict
and commutativity are decided structurally, so the serializability
checkers, the lock manager, and the replica control methods all share a
single source of truth about what reorderings are legal.

Operations are immutable values.  Applying an operation to a store is
done through :meth:`Operation.apply`, which takes and returns plain
Python values; the storage substrate decides versioning and visibility.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = [
    "Operation",
    "ReadOp",
    "WriteOp",
    "IncrementOp",
    "DecrementOp",
    "MultiplyOp",
    "DivideOp",
    "AppendOp",
    "TimestampedWriteOp",
    "conflicts",
    "commutes",
    "is_read",
    "is_write",
    "OperationError",
]


class OperationError(Exception):
    """Raised when an operation cannot be applied or inverted."""


@dataclass(frozen=True)
class Operation:
    """Base class for all operations in the algebra.

    Attributes:
        key: the logical object the operation touches.  Replica control
            is per logical object; the replicated system maps a key to
            one physical copy per site.
    """

    key: str

    #: Class-level flags consumed by checkers and replica control.
    is_read_op: bool = field(default=False, init=False, repr=False)
    is_write_op: bool = field(default=False, init=False, repr=False)
    #: True when the new value does not depend on the old value
    #: (RITU-eligible "blind write").
    read_independent: bool = field(default=False, init=False, repr=False)

    def apply(self, value: Any) -> Any:
        """Return the new object value after this operation runs.

        Read operations return ``value`` unchanged.
        """
        raise NotImplementedError

    def initial_value(self, default: Any) -> Any:
        """Value materialized for a missing key before applying.

        Most operations act on the store's configured default;
        sequence-valued operations (append) need their own identity.
        """
        return default

    def value_delta(self) -> Optional[float]:
        """Worst-case |change| this operation makes to the value.

        Supports value-based epsilon specs (paper section 5.1, the
        'data value changed asynchronously' spatial-consistency
        criterion of interdependent data management / controlled
        inconsistency).  ``None`` means unknown/unbounded — a query
        with a finite value budget must treat such an update as
        exceeding it.
        """
        return None

    def inverse(self, prior_value: Any) -> Optional["Operation"]:
        """Return the compensation operation for this one, or ``None``.

        ``prior_value`` is the object value *before* this operation ran;
        overwrite-style operations need it to build their compensation
        (paper section 4.2: "to rollback RITU with overwrite we must also
        record the value being overwritten on the log").
        """
        raise NotImplementedError

    def commutes_with(self, other: "Operation") -> bool:
        """Structural commutativity on the same key.

        Operations on different keys always commute; callers should use
        the module-level :func:`commutes`, which handles that case.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class ReadOp(Operation):
    """Read the current value of ``key``."""

    is_read_op: bool = field(default=True, init=False, repr=False)

    def apply(self, value: Any) -> Any:
        return value

    def inverse(self, prior_value: Any) -> Optional[Operation]:
        return None

    def commutes_with(self, other: Operation) -> bool:
        return other.is_read_op


@dataclass(frozen=True)
class WriteOp(Operation):
    """Overwrite ``key`` with ``value`` (classical R/W model write)."""

    value: Any = None
    is_write_op: bool = field(default=True, init=False, repr=False)
    read_independent: bool = field(default=True, init=False, repr=False)

    def apply(self, value: Any) -> Any:
        return self.value

    def inverse(self, prior_value: Any) -> Optional[Operation]:
        return WriteOp(self.key, prior_value)

    def commutes_with(self, other: Operation) -> bool:
        # A write never commutes with a read of the same key; two writes
        # commute only when they install the same value.
        if other.is_read_op:
            return False
        if isinstance(other, WriteOp):
            return bool(self.value == other.value)
        return False


@dataclass(frozen=True)
class _ArithmeticOp(Operation):
    """Shared machinery for numeric read-modify-write operations."""

    amount: float = 0
    is_write_op: bool = field(default=True, init=False, repr=False)

    def _check_numeric(self, value: Any) -> float:
        if not isinstance(value, numbers.Number):
            raise OperationError(
                "%s requires a numeric value for %r, got %r"
                % (type(self).__name__, self.key, value)
            )
        return value


@dataclass(frozen=True)
class IncrementOp(_ArithmeticOp):
    """``key += amount``.  Commutes with other increments/decrements."""

    def apply(self, value: Any) -> Any:
        return self._check_numeric(value) + self.amount

    def inverse(self, prior_value: Any) -> Optional[Operation]:
        return DecrementOp(self.key, self.amount)

    def commutes_with(self, other: Operation) -> bool:
        return isinstance(other, (IncrementOp, DecrementOp))

    def value_delta(self) -> Optional[float]:
        return abs(self.amount)


@dataclass(frozen=True)
class DecrementOp(_ArithmeticOp):
    """``key -= amount``.  Commutes with other increments/decrements."""

    def apply(self, value: Any) -> Any:
        return self._check_numeric(value) - self.amount

    def inverse(self, prior_value: Any) -> Optional[Operation]:
        return IncrementOp(self.key, self.amount)

    def commutes_with(self, other: Operation) -> bool:
        return isinstance(other, (IncrementOp, DecrementOp))

    def value_delta(self) -> Optional[float]:
        return abs(self.amount)


@dataclass(frozen=True)
class MultiplyOp(_ArithmeticOp):
    """``key *= amount``.  Commutes with other multiplies/divides only.

    The paper's section 4.1 worked example uses exactly this pair:
    ``Inc(x, 10) . Mul(x, 2) . Dec(x, 10) != Mul(x, 2)``, which is why
    compensation of a non-commutative log requires rollback-and-replay.
    """

    def apply(self, value: Any) -> Any:
        return self._check_numeric(value) * self.amount

    def inverse(self, prior_value: Any) -> Optional[Operation]:
        if self.amount == 0:
            # Multiplication by zero destroys information; compensation
            # must restore the recorded prior value.
            return WriteOp(self.key, prior_value)
        return DivideOp(self.key, self.amount)

    def commutes_with(self, other: Operation) -> bool:
        return isinstance(other, (MultiplyOp, DivideOp))


@dataclass(frozen=True)
class DivideOp(_ArithmeticOp):
    """``key /= amount``.  Commutes with other multiplies/divides only."""

    def apply(self, value: Any) -> Any:
        if self.amount == 0:
            raise OperationError("division by zero on %r" % self.key)
        return self._check_numeric(value) / self.amount

    def inverse(self, prior_value: Any) -> Optional[Operation]:
        return MultiplyOp(self.key, self.amount)

    def commutes_with(self, other: Operation) -> bool:
        return isinstance(other, (MultiplyOp, DivideOp))


@dataclass(frozen=True)
class AppendOp(Operation):
    """Append ``item`` to a sequence-valued object.

    Appends commute *as sets*: the final contents are order-independent
    even though the sequence order is not.  The paper's COMMU analysis
    only needs state convergence up to the application's equality, so we
    model append-commutativity at the multiset level and normalize in
    :meth:`apply` consumers that need canonical ordering.
    """

    item: Any = None
    is_write_op: bool = field(default=True, init=False, repr=False)

    def initial_value(self, default: Any) -> Any:
        return ()

    def apply(self, value: Any) -> Any:
        if value is None:
            value = ()
        if not isinstance(value, tuple):
            raise OperationError(
                "AppendOp requires a tuple value for %r, got %r" % (self.key, value)
            )
        return value + (self.item,)

    def inverse(self, prior_value: Any) -> Optional[Operation]:
        return _RemoveLastOp(self.key, self.item)

    def value_delta(self) -> Optional[float]:
        return 1.0  # one element of drift

    def commutes_with(self, other: Operation) -> bool:
        # Multiset-commutative with other appends.
        return isinstance(other, AppendOp)


@dataclass(frozen=True)
class _RemoveLastOp(Operation):
    """Compensation for :class:`AppendOp`: remove one occurrence of item."""

    item: Any = None
    is_write_op: bool = field(default=True, init=False, repr=False)

    def apply(self, value: Any) -> Any:
        if not isinstance(value, tuple):
            raise OperationError(
                "_RemoveLastOp requires a tuple value for %r" % self.key
            )
        out = list(value)
        for i in range(len(out) - 1, -1, -1):
            if out[i] == self.item:
                del out[i]
                return tuple(out)
        raise OperationError(
            "cannot compensate append: %r not present in %r" % (self.item, self.key)
        )

    def inverse(self, prior_value: Any) -> Optional[Operation]:
        return AppendOp(self.key, self.item)

    def commutes_with(self, other: Operation) -> bool:
        return False


@dataclass(frozen=True)
class TimestampedWriteOp(Operation):
    """RITU-style timestamped blind write.

    The operation carries its own timestamp; the store applies it with
    the Thomas write rule (an older write never overwrites a newer
    version) or, in multiversion mode, installs an immutable version at
    ``timestamp``.  Because the outcome depends only on (timestamp,
    value) pairs and not on arrival order, any two timestamped writes
    commute — this is the paper's "read-independent timestamped update".
    """

    value: Any = None
    timestamp: Tuple[int, int] = (0, 0)
    is_write_op: bool = field(default=True, init=False, repr=False)
    read_independent: bool = field(default=True, init=False, repr=False)

    def apply(self, value: Any) -> Any:
        # Plain apply ignores the stored timestamp; the RITU store uses
        # apply_timestamped() on the (timestamp, value) history instead.
        return self.value

    def apply_timestamped(
        self, current: Optional[Tuple[Tuple[int, int], Any]]
    ) -> Tuple[Tuple[int, int], Any]:
        """Thomas-write-rule application on a (timestamp, value) cell."""
        if current is None or current[0] < self.timestamp:
            return (self.timestamp, self.value)
        return current

    def inverse(self, prior_value: Any) -> Optional[Operation]:
        # Multiversion compensation: re-install the prior value at the
        # same timestamp (paper section 4.2).
        return TimestampedWriteOp(self.key, prior_value, self.timestamp)

    def commutes_with(self, other: Operation) -> bool:
        return isinstance(other, TimestampedWriteOp)


def is_read(op: Operation) -> bool:
    """True when ``op`` is a pure read."""
    return op.is_read_op


def is_write(op: Operation) -> bool:
    """True when ``op`` modifies object state."""
    return op.is_write_op


def commutes(a: Operation, b: Operation) -> bool:
    """Full commutativity relation used by checkers and lock tables.

    Operations on distinct keys always commute.  On the same key the
    structural relation of the operation classes decides; the relation is
    symmetric by construction (we test both directions and require
    agreement, falling back to the OR of the two directions so that a
    class only needs to know about peers it commutes with).
    """
    if a.key != b.key:
        return True
    return a.commutes_with(b) or b.commutes_with(a)


def conflicts(a: Operation, b: Operation) -> bool:
    """Conflict relation: same key, at least one write, not commuting.

    This is the dependency relation used to build serialization graphs
    (paper section 2.1: R/W and W/W dependencies), refined by operation
    semantics — commuting writes do not conflict, which is precisely the
    extra freedom COMMU and RITU exploit.
    """
    if a.key != b.key:
        return False
    if a.is_read_op and b.is_read_op:
        return False
    return not commutes(a, b)
