"""Lock manager with the paper's ET lock classes and compatibility tables.

Section 3 refines two-phase locking for epsilon-transactions by
splitting the classical R/W lock modes into three classes:

* ``R_U`` — read lock taken by an *update* ET,
* ``W_U`` — write lock taken by an *update* ET,
* ``R_Q`` — read lock taken by a *query* ET.

Three compatibility tables are provided:

* :data:`CLASSIC_2PL` — the standard table (R/R compatible, all other
  combinations conflict), the baseline the paper compares against.
* :data:`ORDUP_TABLE` — the paper's Table 2: query read locks are
  compatible with everything, update locks keep classical conflicts.
* :data:`COMMU_TABLE` — the paper's Table 3: additionally, update/update
  conflicts relax to "Comm" — compatible when the two operations
  commute.

The :class:`LockManager` implements queued acquisition with FIFO
fairness, waits-for deadlock detection, and youngest-victim abort, and
reports *compatibility-with-charge*: a query read that is admitted over
a concurrent update write is granted but flagged, so divergence control
can charge the query's inconsistency counter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .operations import Operation, commutes
from .transactions import TransactionID

__all__ = [
    "LockMode",
    "Compatibility",
    "CompatibilityTable",
    "CLASSIC_2PL",
    "ORDUP_TABLE",
    "COMMU_TABLE",
    "LockManager",
    "LockGrant",
    "DeadlockError",
]


class LockMode(enum.Enum):
    """ET lock classes (paper section 3.1)."""

    R_U = "RU"  #: read lock held by an update ET
    W_U = "WU"  #: write lock held by an update ET
    R_Q = "RQ"  #: read lock held by a query ET

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Compatibility(enum.Enum):
    """Outcome of comparing a requested lock with a held lock."""

    OK = "OK"  #: always compatible
    CONFLICT = "conflict"  #: never compatible
    COMM = "Comm"  #: compatible iff the two operations commute
    #: compatible, but the requester imports one unit of inconsistency
    #: (query read over an uncommitted update write).
    OK_WITH_CHARGE = "OK+charge"


class CompatibilityTable:
    """A named mapping (held mode, requested mode) -> compatibility."""

    def __init__(
        self,
        name: str,
        entries: Dict[Tuple[LockMode, LockMode], Compatibility],
    ) -> None:
        self.name = name
        self._entries = dict(entries)

    def lookup(self, held: LockMode, requested: LockMode) -> Compatibility:
        """Raw table entry for (held, requested)."""
        return self._entries[(held, requested)]

    def compatible(
        self,
        held: LockMode,
        held_op: Operation,
        requested: LockMode,
        requested_op: Operation,
    ) -> Tuple[bool, bool]:
        """Resolve compatibility for concrete operations.

        Returns ``(granted, charges_inconsistency)``.  ``COMM`` entries
        are resolved through the operation algebra; ``OK_WITH_CHARGE``
        grants but tells divergence control to charge a counter.
        """
        entry = self.lookup(held, requested)
        if entry is Compatibility.OK:
            return True, False
        if entry is Compatibility.OK_WITH_CHARGE:
            return True, True
        if entry is Compatibility.COMM:
            return commutes(held_op, requested_op), False
        return False, False

    def rows(self) -> List[Tuple[str, List[str]]]:
        """Render the table in the paper's row/column layout.

        Used by the Table 2 / Table 3 reproduction benchmarks: the rows
        are derived from the live table object, not hand-copied.
        """
        order = [LockMode.R_U, LockMode.W_U, LockMode.R_Q]
        out = []
        for held in order:
            cells = []
            for requested in order:
                entry = self.lookup(held, requested)
                if entry in (Compatibility.OK, Compatibility.OK_WITH_CHARGE):
                    cells.append("OK")
                elif entry is Compatibility.COMM:
                    cells.append("Comm")
                else:
                    cells.append("")
                # empty string == conflict, matching the paper's blanks
            out.append((held.value, cells))
        return out


def _table(
    name: str, spec: Dict[Tuple[LockMode, LockMode], Compatibility]
) -> CompatibilityTable:
    for held in LockMode:
        for req in LockMode:
            if (held, req) not in spec:
                raise ValueError(
                    "table %s missing entry (%s, %s)" % (name, held, req)
                )
    return CompatibilityTable(name, spec)


_RU, _WU, _RQ = LockMode.R_U, LockMode.W_U, LockMode.R_Q
_OK, _NO = Compatibility.OK, Compatibility.CONFLICT
_COMM, _CHARGE = Compatibility.COMM, Compatibility.OK_WITH_CHARGE

#: Standard 2PL mapped onto ET modes: reads compatible with reads,
#: every combination involving a write conflicts.  Queries get no
#: special treatment — this is the synchronous baseline.
CLASSIC_2PL = _table(
    "classic-2pl",
    {
        (_RU, _RU): _OK, (_RU, _WU): _NO, (_RU, _RQ): _OK,
        (_WU, _RU): _NO, (_WU, _WU): _NO, (_WU, _RQ): _NO,
        (_RQ, _RU): _OK, (_RQ, _WU): _NO, (_RQ, _RQ): _OK,
    },
)

#: Paper Table 2 (ORDUP): R_Q is compatible with everything; a query
#: read admitted over a held W_U imports inconsistency, hence the
#: OK_WITH_CHARGE refinement on (W_U, R_Q).
ORDUP_TABLE = _table(
    "ordup",
    {
        (_RU, _RU): _OK, (_RU, _WU): _NO, (_RU, _RQ): _OK,
        (_WU, _RU): _NO, (_WU, _WU): _NO, (_WU, _RQ): _CHARGE,
        (_RQ, _RU): _OK, (_RQ, _WU): _OK, (_RQ, _RQ): _OK,
    },
)

#: Paper Table 3 (COMMU): update/update entries relax to "Comm".
COMMU_TABLE = _table(
    "commu",
    {
        (_RU, _RU): _OK, (_RU, _WU): _COMM, (_RU, _RQ): _OK,
        (_WU, _RU): _COMM, (_WU, _WU): _COMM, (_WU, _RQ): _CHARGE,
        (_RQ, _RU): _OK, (_RQ, _WU): _OK, (_RQ, _RQ): _OK,
    },
)


class DeadlockError(Exception):
    """Raised against the victim transaction of a detected deadlock."""

    def __init__(self, tid: TransactionID) -> None:
        super().__init__("transaction %s aborted to break a deadlock" % tid)
        self.tid = tid


@dataclass
class LockGrant:
    """A granted lock instance."""

    tid: TransactionID
    key: str
    mode: LockMode
    op: Operation
    #: True when the grant imported inconsistency (OK_WITH_CHARGE) —
    #: the set of update holders it was charged against.
    charged_against: Set[TransactionID] = field(default_factory=set)


@dataclass
class _Waiter:
    tid: TransactionID
    key: str
    mode: LockMode
    op: Operation
    wake: Callable[[Optional[LockGrant]], None]


class LockManager:
    """Queued lock manager parameterized by a compatibility table.

    Grant policy: a request is granted when it is compatible with every
    current holder of the key *and* no earlier waiter is still queued
    for that key (FIFO fairness prevents starvation of W_U requests
    behind streams of R_U).  Query (R_Q) requests skip the fairness
    check — the whole point of Tables 2/3 is that queries never queue.

    Deadlocks among update ETs are detected on the waits-for graph at
    each enqueue; the youngest transaction in the cycle is aborted via
    :class:`DeadlockError` delivered through its wake callback.
    """

    def __init__(self, table: CompatibilityTable) -> None:
        self.table = table
        self._holders: Dict[str, List[LockGrant]] = {}
        self._waiters: Dict[str, List[_Waiter]] = {}
        self._locks_of: Dict[TransactionID, List[LockGrant]] = {}

    # -- acquisition -------------------------------------------------------

    def try_acquire(
        self,
        tid: TransactionID,
        key: str,
        mode: LockMode,
        op: Operation,
    ) -> Optional[LockGrant]:
        """Grant immediately or return ``None`` (caller may queue).

        Re-entrant: a transaction already holding the key in the same
        or a stronger mode gets its existing grant back.
        """
        existing = self._find_grant(tid, key, mode)
        if existing is not None:
            return existing
        if not self._grantable(tid, key, mode, op):
            return None
        return self._grant(tid, key, mode, op)

    def acquire(
        self,
        tid: TransactionID,
        key: str,
        mode: LockMode,
        op: Operation,
        wake: Callable[[Optional[LockGrant]], None],
    ) -> Optional[LockGrant]:
        """Grant now, or enqueue and deliver the grant through ``wake``.

        Returns the grant when immediate, ``None`` when queued.  On
        deadlock the victim's ``wake`` receives ``None`` after a
        :class:`DeadlockError` is raised at the requester if the
        requester itself is the victim.
        """
        grant = self.try_acquire(tid, key, mode, op)
        if grant is not None:
            return grant
        waiter = _Waiter(tid, key, mode, op, wake)
        self._waiters.setdefault(key, []).append(waiter)
        victim = self._detect_deadlock()
        if victim is not None:
            self._abort_waiter(victim)
            if victim == tid:
                raise DeadlockError(tid)
        return None

    def _find_grant(
        self, tid: TransactionID, key: str, mode: LockMode
    ) -> Optional[LockGrant]:
        for grant in self._holders.get(key, ()):  # re-entrancy check
            if grant.tid != tid:
                continue
            if grant.mode == mode:
                return grant
            if grant.mode is LockMode.W_U and mode is LockMode.R_U:
                return grant  # write lock subsumes the read lock
        return None

    def _grantable(
        self, tid: TransactionID, key: str, mode: LockMode, op: Operation
    ) -> bool:
        for grant in self._holders.get(key, ()):  # pairwise compatibility
            if grant.tid == tid:
                continue
            ok, _ = self.table.compatible(grant.mode, grant.op, mode, op)
            if not ok:
                return False
        if mode is not LockMode.R_Q:
            for waiter in self._waiters.get(key, ()):  # FIFO fairness
                if waiter.tid != tid:
                    return False
        return True

    def _grant(
        self, tid: TransactionID, key: str, mode: LockMode, op: Operation
    ) -> LockGrant:
        charged: Set[TransactionID] = set()
        for grant in self._holders.get(key, ()):  # collect charge sources
            if grant.tid == tid:
                continue
            ok, charge = self.table.compatible(grant.mode, grant.op, mode, op)
            if ok and charge:
                charged.add(grant.tid)
        new = LockGrant(tid, key, mode, op, charged)
        self._holders.setdefault(key, []).append(new)
        self._locks_of.setdefault(tid, []).append(new)
        return new

    # -- release -----------------------------------------------------------

    def release_all(self, tid: TransactionID) -> None:
        """Drop every lock of ``tid`` and wake newly grantable waiters."""
        for grant in self._locks_of.pop(tid, ()):  # drop each held lock
            holders = self._holders.get(grant.key, [])
            if grant in holders:
                holders.remove(grant)
            if not holders:
                self._holders.pop(grant.key, None)
        self._cancel_waits(tid)
        self._wake_waiters()

    def _cancel_waits(self, tid: TransactionID) -> None:
        for key in list(self._waiters):
            queue = [w for w in self._waiters[key] if w.tid != tid]
            if queue:
                self._waiters[key] = queue
            else:
                self._waiters.pop(key)

    def _wake_waiters(self) -> None:
        woke = True
        while woke:
            woke = False
            for key in list(self._waiters):
                queue = self._waiters.get(key, [])
                for waiter in list(queue):
                    if not self._grantable_as_waiter(waiter):
                        continue
                    queue.remove(waiter)
                    if not queue:
                        self._waiters.pop(key, None)
                    grant = self._grant(
                        waiter.tid, waiter.key, waiter.mode, waiter.op
                    )
                    waiter.wake(grant)
                    woke = True

    def _grantable_as_waiter(self, waiter: _Waiter) -> bool:
        """Waiter grant check: only holders matter, plus queue position."""
        for grant in self._holders.get(waiter.key, ()):  # holder check
            if grant.tid == waiter.tid:
                continue
            ok, _ = self.table.compatible(
                grant.mode, grant.op, waiter.mode, waiter.op
            )
            if not ok:
                return False
        queue = self._waiters.get(waiter.key, [])
        for other in queue:
            if other is waiter:
                return True
            incompatible, _ = self.table.compatible(
                other.mode, other.op, waiter.mode, waiter.op
            )
            if not incompatible:
                return False  # an earlier conflicting waiter goes first
        return True

    def _abort_waiter(self, tid: TransactionID) -> None:
        victims: List[_Waiter] = []
        for key in list(self._waiters):
            remaining = []
            for waiter in self._waiters[key]:
                if waiter.tid == tid:
                    victims.append(waiter)
                else:
                    remaining.append(waiter)
            if remaining:
                self._waiters[key] = remaining
            else:
                self._waiters.pop(key)
        self.release_all(tid)
        for waiter in victims:
            waiter.wake(None)

    # -- deadlock detection --------------------------------------------------

    def _waits_for_edges(self) -> Dict[TransactionID, Set[TransactionID]]:
        edges: Dict[TransactionID, Set[TransactionID]] = {}
        for key, queue in self._waiters.items():
            for waiter in queue:
                blockers: Set[TransactionID] = set()
                for grant in self._holders.get(key, ()):  # blocked by holders
                    if grant.tid == waiter.tid:
                        continue
                    ok, _ = self.table.compatible(
                        grant.mode, grant.op, waiter.mode, waiter.op
                    )
                    if not ok:
                        blockers.add(grant.tid)
                if blockers:
                    edges.setdefault(waiter.tid, set()).update(blockers)
        return edges

    def _detect_deadlock(self) -> Optional[TransactionID]:
        """Find a waits-for cycle; return the youngest member or None."""
        edges = self._waits_for_edges()
        visited: Set[TransactionID] = set()
        for start in edges:
            if start in visited:
                continue
            path: List[TransactionID] = []
            on_path: Set[TransactionID] = set()

            def dfs(node: TransactionID) -> Optional[List[TransactionID]]:
                visited.add(node)
                path.append(node)
                on_path.add(node)
                for succ in edges.get(node, ()):  # follow waits-for
                    if succ in on_path:
                        return path[path.index(succ):]
                    if succ not in visited:
                        cycle = dfs(succ)
                        if cycle is not None:
                            return cycle
                path.pop()
                on_path.discard(node)
                return None

            cycle = dfs(start)
            if cycle:
                return max(cycle)  # youngest = largest tid
        return None

    # -- inspection ----------------------------------------------------------

    def holders_of(self, key: str) -> List[LockGrant]:
        return list(self._holders.get(key, ()))

    def locks_of(self, tid: TransactionID) -> List[LockGrant]:
        return list(self._locks_of.get(tid, ()))

    def waiting_count(self, key: Optional[str] = None) -> int:
        if key is not None:
            return len(self._waiters.get(key, ()))
        return sum(len(q) for q in self._waiters.values())
