"""Overlap tracking: the paper's bound on query-ET inconsistency.

Paper section 2.1: "We define the overlap of a query ET as the set of
all update ETs that had not finished at the first operation of the
query ET, plus all the update ETs that started during the query ET
[restricted to] update ETs that actually affect objects that the query
ET seeks to access.  The overlap is an upper bound of error on the
amount of inconsistency that a query ET may accumulate.  If a query
ET's overlap is empty, then it is SR."

Two tools live here:

* :class:`OverlapTracker` — an *online* tracker sites use while ETs
  run, so divergence control can consult the current overlap before
  admitting each read.
* :func:`query_overlaps` — a *post-hoc* analysis over a recorded
  history (re-exported from the checker module), used by tests to
  verify that measured error never exceeds the overlap bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .serializability import query_overlaps  # noqa: F401  (public re-export)
from .transactions import EpsilonTransaction, TransactionID

__all__ = ["OverlapTracker", "query_overlaps", "OverlapRecord"]


@dataclass
class OverlapRecord:
    """Overlap bookkeeping for one in-flight query ET."""

    et: EpsilonTransaction
    #: Update tids concurrent with the query that touch its key set.
    members: Set[TransactionID] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.members)


class OverlapTracker:
    """Online overlap accounting for one site (or one logical system).

    The site notifies the tracker when update ETs begin and finish and
    when query ETs begin and finish; the tracker maintains, per active
    query, the set of conflicting concurrent updates.  This is exactly
    the quantity the paper's inconsistency counters are compared
    against, so divergence control methods read it to decide whether a
    query may proceed out of order.
    """

    def __init__(self) -> None:
        #: tid -> key set of currently active update ETs.
        self._active_updates: Dict[TransactionID, Tuple[str, ...]] = {}
        #: tid -> record of currently active query ETs.
        self._active_queries: Dict[TransactionID, OverlapRecord] = {}
        #: finished queries kept for post-run assertions.
        self._finished: Dict[TransactionID, OverlapRecord] = {}

    # -- update ET lifecycle -------------------------------------------

    def update_started(self, et: EpsilonTransaction) -> None:
        """Register an update ET as in-flight.

        Every active query whose key set intersects the update's keys
        gains the update in its overlap (case two of the definition:
        updates that started during the query).
        """
        keys = et.keys
        self._active_updates[et.tid] = keys
        key_set = set(keys)
        for record in self._active_queries.values():
            if key_set.intersection(record.et.keys):
                record.members.add(et.tid)

    def update_finished(self, tid: TransactionID) -> None:
        """Mark an update ET as complete (its MSet fully applied here)."""
        self._active_updates.pop(tid, None)

    # -- query ET lifecycle --------------------------------------------

    def query_started(self, et: EpsilonTransaction) -> OverlapRecord:
        """Register a query ET; seeds its overlap with active updates.

        Case one of the definition: all update ETs that had not
        finished at the query's first operation.
        """
        record = OverlapRecord(et)
        q_keys = set(et.keys)
        for utid, ukeys in self._active_updates.items():
            if q_keys.intersection(ukeys):
                record.members.add(utid)
        self._active_queries[et.tid] = record
        return record

    def query_finished(self, tid: TransactionID) -> Optional[OverlapRecord]:
        """Close out a query's overlap record and archive it."""
        record = self._active_queries.pop(tid, None)
        if record is not None:
            self._finished[tid] = record
        return record

    # -- inspection ------------------------------------------------------

    def current_overlap(self, tid: TransactionID) -> int:
        """Current overlap size of an active query (0 if unknown)."""
        record = self._active_queries.get(tid)
        return record.size if record else 0

    def overlap_members(self, tid: TransactionID) -> Set[TransactionID]:
        """Members of an active or finished query's overlap set."""
        record = self._active_queries.get(tid) or self._finished.get(tid)
        return set(record.members) if record else set()

    @property
    def active_update_count(self) -> int:
        return len(self._active_updates)

    @property
    def active_query_count(self) -> int:
        return len(self._active_queries)

    def queries_touching(self, keys: Tuple[str, ...]) -> Set[TransactionID]:
        """Active query tids whose key sets intersect ``keys``.

        Used by export-limit enforcement (section 3.2's update-side
        bounding): an update ET may be deferred while too many live
        queries would import its intermediate state.
        """
        key_set = set(keys)
        return {
            tid
            for tid, record in self._active_queries.items()
            if key_set.intersection(record.et.keys)
        }

    def finished_records(self) -> List[OverlapRecord]:
        """Archived overlap records, in query-finish order."""
        return list(self._finished.values())
