"""Divergence control engines.

Divergence control is to ESR what concurrency control is to SR (paper
section 2.1): it restricts the interleaving of ET operations so that
update ETs stay serializable while query ETs are admitted with bounded
inconsistency.  Three engines are provided, matching the mechanisms the
paper outlines:

* :class:`TwoPhaseLockingDC` — 2PL over the ET lock classes, driven by
  any of the compatibility tables (classic, Table 2/ORDUP, Table 3/
  COMMU).  Query reads granted over uncommitted update writes charge
  the query's inconsistency counter; an exhausted counter converts the
  grant into a wait, which is the paper's "allowed to proceed only when
  it is running in the global order".

* :class:`BasicTimestampDC` — basic timestamp ordering for update ETs
  (section 3.1: "each object maintains the timestamp of the latest
  access"); out-of-order update accesses are rejected, out-of-order
  query reads charge the counter and degrade to waits when exhausted.

* :class:`VTNCDC` — the multiversion visibility engine for RITU
  (section 3.3): reads at or below the visible-transaction-number
  counter are free; reads of newer versions charge the counter.

Each engine exposes the same small interface (``begin`` / ``request`` /
``commit`` / ``abort``) so sites and tests can swap them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from .inconsistency import EpsilonExceeded, InconsistencyCounter
from .locks import (
    CompatibilityTable,
    LockManager,
    LockMode,
    LockGrant,
)
from .operations import Operation, is_write
from .transactions import EpsilonTransaction, TransactionID

__all__ = [
    "Admission",
    "Decision",
    "DivergenceControl",
    "TwoPhaseLockingDC",
    "BasicTimestampDC",
    "OptimisticDC",
    "VTNCDC",
]


class Admission(enum.Enum):
    """Outcome of asking divergence control to admit one operation."""

    GRANT = "grant"  #: proceed, no inconsistency imported
    GRANT_CHARGE = "grant+charge"  #: proceed, counter(s) charged
    WAIT = "wait"  #: block until the blocker finishes
    REJECT = "reject"  #: abort the transaction (timestamp order violated)


@dataclass
class Decision:
    """Admission decision plus its accounting details."""

    admission: Admission
    #: update tids whose in-flight effects the requester imported.
    charged: Set[TransactionID] = field(default_factory=set)
    #: a transaction the requester is blocked behind, when WAIT.
    blocker: Optional[TransactionID] = None

    @property
    def granted(self) -> bool:
        return self.admission in (Admission.GRANT, Admission.GRANT_CHARGE)


class DivergenceControl:
    """Common bookkeeping: one inconsistency counter per query ET."""

    def __init__(self) -> None:
        self._counters: Dict[TransactionID, InconsistencyCounter] = {}

    def begin(self, et: EpsilonTransaction) -> None:
        """Start tracking an ET (queries get an inconsistency counter)."""
        if et.is_query:
            self._counters[et.tid] = InconsistencyCounter(et.tid, et.spec)

    def counter_of(self, tid: TransactionID) -> Optional[InconsistencyCounter]:
        return self._counters.get(tid)

    def inconsistency_of(self, tid: TransactionID) -> int:
        """Final/current inconsistency counter value of a query."""
        counter = self._counters.get(tid)
        return counter.value if counter else 0

    def request(self, et: EpsilonTransaction, op: Operation) -> Decision:
        raise NotImplementedError

    def commit(self, et: EpsilonTransaction) -> None:
        raise NotImplementedError

    def abort(self, et: EpsilonTransaction) -> None:
        raise NotImplementedError

    def validate(self, et: EpsilonTransaction) -> bool:
        """Commit-time validation hook (optimistic engines).

        Pessimistic engines admit operations up front and always
        validate; optimistic engines may refuse here, forcing the
        executor to abort-and-restart the ET.
        """
        return True

    def _charge_query(
        self,
        et: EpsilonTransaction,
        sources: Set[TransactionID],
    ) -> Optional[Decision]:
        """Charge a query's counter for each source, or signal WAIT.

        Returns the final decision, or ``None`` when no charge applies.
        Each distinct conflicting update charges one unit (the paper's
        'each time a query ET is found to overlap an update ET the
        inconsistency counter is incremented by 1'); an already-imported
        source is not double-charged.
        """
        counter = self._counters.get(et.tid)
        if counter is None or not sources:
            return None
        new_sources = sources - counter.imported
        if not new_sources:
            return Decision(Admission.GRANT_CHARGE, set(sources))
        try:
            for source in sorted(new_sources):
                counter.charge(1, source)
        except EpsilonExceeded:
            return Decision(
                Admission.WAIT, blocker=min(sources)
            )
        return Decision(Admission.GRANT_CHARGE, set(sources))


class TwoPhaseLockingDC(DivergenceControl):
    """2PL divergence control over a pluggable compatibility table."""

    def __init__(self, table: CompatibilityTable) -> None:
        super().__init__()
        self.locks = LockManager(table)
        self._is_query: Dict[TransactionID, bool] = {}

    def begin(self, et: EpsilonTransaction) -> None:
        super().begin(et)
        self._is_query[et.tid] = et.is_query

    def request(self, et: EpsilonTransaction, op: Operation) -> Decision:
        """Admit one operation of ``et`` under the lock table."""
        mode = self._mode_for(et, op)
        grant = self.locks.try_acquire(et.tid, op.key, mode, op)
        if grant is None:
            blocker = self._first_blocker(et.tid, op.key)
            return Decision(Admission.WAIT, blocker=blocker)
        if grant.charged_against:
            charged = self._charge_query(et, grant.charged_against)
            if charged is not None:
                if charged.admission is Admission.WAIT:
                    # Counter exhausted: the grant must be rescinded and
                    # the query forced to wait for the global order.
                    self._rescind(et.tid, grant)
                return charged
        return Decision(Admission.GRANT)

    def _rescind(self, tid: TransactionID, grant: LockGrant) -> None:
        holders = self.locks._holders.get(grant.key, [])  # noqa: SLF001
        if grant in holders:
            holders.remove(grant)
        owned = self.locks._locks_of.get(tid, [])  # noqa: SLF001
        if grant in owned:
            owned.remove(grant)

    def _mode_for(
        self, et: EpsilonTransaction, op: Operation
    ) -> LockMode:
        if is_write(op):
            return LockMode.W_U
        if self._is_query.get(et.tid, et.is_query):
            return LockMode.R_Q
        return LockMode.R_U

    def _first_blocker(
        self, tid: TransactionID, key: str
    ) -> Optional[TransactionID]:
        for grant in self.locks.holders_of(key):
            if grant.tid != tid:
                return grant.tid
        return None

    def commit(self, et: EpsilonTransaction) -> None:
        self.locks.release_all(et.tid)
        self._is_query.pop(et.tid, None)

    def abort(self, et: EpsilonTransaction) -> None:
        self.locks.release_all(et.tid)
        self._is_query.pop(et.tid, None)


@dataclass
class _ObjectTimestamps:
    read_ts: float = -1.0
    write_ts: float = -1.0
    #: tid that produced the current write timestamp (charge source).
    writer: Optional[TransactionID] = None


class BasicTimestampDC(DivergenceControl):
    """Basic timestamp ordering with ESR query relaxation.

    Update ETs carry a global order timestamp (their MSet sequence
    number under ORDUP); accesses violating timestamp order are
    rejected, producing the SRlog the paper requires of update ETs.
    Query reads that arrive "late" (the object already carries a newer
    write) are the out-of-order reads of section 3.1: they succeed but
    charge the query's inconsistency counter, until the counter is
    exhausted and the query must wait for its turn in the global order.
    """

    def __init__(self) -> None:
        super().__init__()
        self._objects: Dict[str, _ObjectTimestamps] = {}
        self._ts_of: Dict[TransactionID, float] = {}

    def begin(
        self, et: EpsilonTransaction, timestamp: Optional[float] = None
    ) -> None:
        super().begin(et)
        self._ts_of[et.tid] = float(
            timestamp if timestamp is not None else et.tid
        )

    def timestamp_of(self, tid: TransactionID) -> float:
        return self._ts_of.get(tid, float(tid))

    def request(self, et: EpsilonTransaction, op: Operation) -> Decision:
        ts = self.timestamp_of(et.tid)
        cell = self._objects.setdefault(op.key, _ObjectTimestamps())
        if is_write(op):
            if ts < cell.read_ts or ts < cell.write_ts:
                return Decision(Admission.REJECT)
            cell.write_ts = ts
            cell.writer = et.tid
            return Decision(Admission.GRANT)
        # Read path.
        if et.is_update:
            if ts < cell.write_ts:
                return Decision(Admission.REJECT)
            cell.read_ts = max(cell.read_ts, ts)
            return Decision(Admission.GRANT)
        # Query read: out-of-order observation charges the counter.
        if ts < cell.write_ts and cell.writer is not None:
            charged = self._charge_query(et, {cell.writer})
            if charged is not None:
                return charged
        cell.read_ts = max(cell.read_ts, ts)
        return Decision(Admission.GRANT)

    def commit(self, et: EpsilonTransaction) -> None:
        self._ts_of.pop(et.tid, None)

    def abort(self, et: EpsilonTransaction) -> None:
        self._ts_of.pop(et.tid, None)


class OptimisticDC(DivergenceControl):
    """Validation-based (OCC) divergence control with ESR relaxation.

    Operations are always admitted; conflicts are detected at commit
    by backward validation against the transactions that committed
    during this ET's lifetime:

    * an **update ET** whose read set intersects a concurrently
      committed update's write set fails validation and must restart —
      updates stay strictly SR, as ESR requires;
    * a **query ET** in the same situation *charges its inconsistency
      counter* instead, one unit per conflicting committed update, and
      only fails validation once its epsilon budget is exhausted —
      the optimistic realization of bounded query inconsistency.

    This completes the classical triad next to :class:`TwoPhaseLockingDC`
    (blocking) and :class:`BasicTimestampDC` (ordering).
    """

    def __init__(self) -> None:
        super().__init__()
        self._serial = 0
        #: tid -> (start serial, read keys, write keys)
        self._active: Dict[TransactionID, Tuple[int, set, set]] = {}
        #: committed update write-sets, tagged with commit serial.
        self._committed: List[Tuple[int, TransactionID, set]] = []

    def begin(self, et: EpsilonTransaction) -> None:
        super().begin(et)
        self._active[et.tid] = (self._serial, set(), set())

    def request(self, et: EpsilonTransaction, op: Operation) -> Decision:
        entry = self._active.get(et.tid)
        if entry is None:
            self.begin(et)
            entry = self._active[et.tid]
        _, reads, writes = entry
        if is_write(op):
            writes.add(op.key)
        else:
            reads.add(op.key)
        return Decision(Admission.GRANT)

    def validate(self, et: EpsilonTransaction) -> bool:
        entry = self._active.get(et.tid)
        if entry is None:
            return True
        start_serial, reads, _ = entry
        conflicting = [
            (tid, wset)
            for serial, tid, wset in self._committed
            if serial > start_serial and reads & wset
        ]
        if not conflicting:
            return True
        if et.is_update:
            return False  # updates must be SR: restart
        # Query: absorb the conflicts into the epsilon budget.
        counter = self._counters.get(et.tid)
        if counter is None:
            return False
        sources = {tid for tid, _ in conflicting}
        new_sources = sorted(sources - counter.imported)
        if not counter.can_charge(len(new_sources)):
            return False
        for source in new_sources:
            counter.charge(1, source)
        return True

    def commit(self, et: EpsilonTransaction) -> None:
        entry = self._active.pop(et.tid, None)
        if entry is not None and et.is_update:
            self._serial += 1
            self._committed.append((self._serial, et.tid, entry[2]))

    def abort(self, et: EpsilonTransaction) -> None:
        self._active.pop(et.tid, None)

    def gc(self) -> int:
        """Drop committed write-sets no active ET can still conflict
        with; returns the number retained."""
        if self._active:
            low_water = min(s for s, _, _ in self._active.values())
        else:
            low_water = self._serial
        self._committed = [
            entry for entry in self._committed if entry[0] > low_water
        ]
        return len(self._committed)


class VTNCDC(DivergenceControl):
    """Visible-transaction-number-counter engine for RITU multiversion.

    The VTNC marks the highest transaction number whose versions are
    stably visible: 'no smaller version can be created by any active or
    future transaction'.  Reads at or below the VTNC are SR and free;
    a read of a newer version charges the query's counter, and when the
    counter is exhausted newer versions are refused (the store then
    serves the newest VTNC-visible version instead).
    """

    def __init__(self) -> None:
        super().__init__()
        self._vtnc = 0

    @property
    def vtnc(self) -> int:
        return self._vtnc

    def advance(self, txn_number: int) -> None:
        """Raise the VTNC (monotone, by the modular-synchronization rule)."""
        if txn_number > self._vtnc:
            self._vtnc = txn_number

    def request(self, et: EpsilonTransaction, op: Operation) -> Decision:
        raise NotImplementedError(
            "VTNCDC admits by version; use admit_version()"
        )

    def admit_version(
        self,
        et: EpsilonTransaction,
        version_txn: int,
        writer: Optional[TransactionID] = None,
    ) -> Decision:
        """Decide whether ``et`` may read a version made by txn number.

        Returns GRANT for VTNC-visible versions, GRANT_CHARGE when the
        version is newer and the counter absorbs it, and WAIT when the
        counter is exhausted (the caller must fall back to the newest
        visible version).
        """
        if version_txn <= self._vtnc:
            return Decision(Admission.GRANT)
        source = writer if writer is not None else version_txn
        charged = self._charge_query(et, {source})
        if charged is not None:
            return charged
        # Update ETs never read unstable versions under RITU (their
        # updates are read-independent), so reaching here means a
        # query with no counter — treat as strict.
        return Decision(Admission.WAIT)

    def commit(self, et: EpsilonTransaction) -> None:
        return None

    def abort(self, et: EpsilonTransaction) -> None:
        return None
