"""Workload generation: streams of ETs for the benchmark harness.

A :class:`WorkloadSpec` describes the shape (mix, skew, arrival rate,
operation style); :class:`WorkloadGenerator` turns it into a
deterministic schedule of (time, site, ET) submissions for a
:class:`~repro.replica.base.ReplicatedSystem`.

Operation styles map to the methods' restrictions:

* ``"commutative"`` — increments/decrements (COMMU/COMPE-eligible),
* ``"blind"`` — value overwrites (RITU-eligible),
* ``"mixed"`` — commutative plus occasional multiplies (forces COMPE's
  rollback-and-replay path and exercises ORDUP's generality).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.operations import (
    DecrementOp,
    IncrementOp,
    MultiplyOp,
    Operation,
    ReadOp,
    WriteOp,
)
from ..core.transactions import (
    EpsilonSpec,
    EpsilonTransaction,
    QueryET,
    UNLIMITED,
    UpdateET,
)

__all__ = ["WorkloadSpec", "WorkloadGenerator", "Submission"]


@dataclass(frozen=True)
class Submission:
    """One scheduled ET submission."""

    time: float
    site: str
    et: EpsilonTransaction
    #: COMPE only: whether the global update is doomed to abort.
    will_abort: bool = False


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload."""

    n_keys: int = 20
    key_prefix: str = "x"
    #: fraction of submissions that are queries.
    query_fraction: float = 0.5
    #: operations per update ET.
    update_ops: int = 2
    #: reads per query ET.
    query_ops: int = 3
    #: zipf skew over keys (0 = uniform).
    skew: float = 0.0
    #: mean inter-arrival time of submissions.
    mean_interarrival: float = 1.0
    #: total submissions to generate.
    count: int = 100
    #: operation style: "commutative" | "blind" | "mixed".
    style: str = "commutative"
    #: probability an update is non-commutative in "mixed" style.
    mixed_multiply_fraction: float = 0.2
    #: epsilon import limit applied to query ETs.
    epsilon: float = UNLIMITED
    #: COMPE abort probability.
    abort_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.query_fraction <= 1.0:
            raise ValueError("query_fraction must be within [0, 1]")
        if self.style not in ("commutative", "blind", "mixed"):
            raise ValueError("unknown style %r" % self.style)
        if not 0.0 <= self.abort_rate <= 1.0:
            raise ValueError("abort_rate must be within [0, 1]")

    def keys(self) -> List[str]:
        return ["%s%d" % (self.key_prefix, i) for i in range(self.n_keys)]


class WorkloadGenerator:
    """Deterministic ET stream for one experiment run."""

    def __init__(
        self,
        spec: WorkloadSpec,
        sites: Sequence[str],
        seed: int = 0,
    ) -> None:
        from .zipf import ZipfSampler

        self.spec = spec
        self.sites = list(sites)
        if not self.sites:
            raise ValueError("at least one site is required")
        self.rng = random.Random(seed)
        self._sampler = (
            ZipfSampler(spec.n_keys, spec.skew) if spec.skew > 0 else None
        )
        self._keys = spec.keys()

    # -- key and op selection -------------------------------------------------

    def _pick_key(self) -> str:
        if self._sampler is not None:
            return self._keys[self._sampler.sample(self.rng)]
        return self.rng.choice(self._keys)

    def _pick_keys(self, count: int) -> List[str]:
        """Distinct keys when possible (an ET touches a key once)."""
        picked: List[str] = []
        attempts = 0
        while len(picked) < count and attempts < count * 10:
            key = self._pick_key()
            attempts += 1
            if key not in picked:
                picked.append(key)
        while len(picked) < count:
            picked.append(self._pick_key())
        return picked

    def _update_ops(self) -> List[Operation]:
        keys = self._pick_keys(self.spec.update_ops)
        ops: List[Operation] = []
        for key in keys:
            ops.append(self._one_write(key))
        return ops

    def _one_write(self, key: str) -> Operation:
        style = self.spec.style
        if style == "blind":
            return WriteOp(key, self.rng.randint(0, 1000))
        if style == "mixed":
            if self.rng.random() < self.spec.mixed_multiply_fraction:
                return MultiplyOp(key, 2)
            style = "commutative"
        if self.rng.random() < 0.5:
            return IncrementOp(key, self.rng.randint(1, 10))
        return DecrementOp(key, self.rng.randint(1, 10))

    def _query_ops(self) -> List[Operation]:
        return [ReadOp(key) for key in self._pick_keys(self.spec.query_ops)]

    # -- stream ------------------------------------------------------------------

    def generate(self) -> List[Submission]:
        """The full deterministic submission schedule."""
        submissions: List[Submission] = []
        time = 0.0
        for _ in range(self.spec.count):
            time += self.rng.expovariate(1.0 / self.spec.mean_interarrival)
            site = self.rng.choice(self.sites)
            if self.rng.random() < self.spec.query_fraction:
                et: EpsilonTransaction = QueryET(
                    self._query_ops(),
                    EpsilonSpec(import_limit=self.spec.epsilon),
                    origin_site=site,
                )
                submissions.append(Submission(time, site, et))
            else:
                et = UpdateET(self._update_ops(), origin_site=site)
                will_abort = self.rng.random() < self.spec.abort_rate
                submissions.append(Submission(time, site, et, will_abort))
        return submissions

    def __iter__(self) -> Iterator[Submission]:
        return iter(self.generate())


def drive(system, submissions, compe_aborts: bool = False) -> None:
    """Schedule every submission into a replicated system.

    ``compe_aborts=True`` routes update submissions through COMPE's
    ``will_abort`` parameter.  Import kept local to avoid a cycle.
    """
    for sub in submissions:
        if compe_aborts and sub.et.is_update:
            system.sim.schedule_at(
                sub.time,
                lambda s=sub: _submit_compe(system, s),
            )
        else:
            system.submit_at(sub.time, sub.et, sub.site)


def _submit_compe(system, sub: Submission) -> None:
    system._pending_ets += 1  # noqa: SLF001 - mirrors ReplicatedSystem.submit

    def done(result) -> None:
        system._pending_ets -= 1  # noqa: SLF001
        system.results.append(result)

    system.method.submit_update(
        sub.et, sub.site, done, will_abort=sub.will_abort
    )
