"""Open-loop load driver simulating a large zipfian user population.

``python -m repro loadgen --users 100000`` models 10^5 (up to 10^6)
concurrent users of a live replica group, each thinking for
``think_time`` seconds between requests — the open-loop invariant
``rate = users / think_time`` (Schroeder et al.'s distinction: arrivals
are *scheduled*, they do not slow down when the system does).  Request
latency is therefore measured from the request's **scheduled arrival**,
so server-side queueing delay is charged honestly instead of silently
throttling the offered load.

The population's reads follow the typed consistency surface in the mix
the paper motivates (Table 1's query/update asymmetry — most reads
tolerate bounded staleness):

* ``cached`` — served from the client's epsilon-budget read cache when
  the accumulated inconsistency-import estimate allows;
* ``bounded`` — ESR reads with a finite epsilon, fanned out across
  replicas weighted by applied-frontier lag;
* ``session`` — read-your-writes / monotonic reads via sticky session
  tokens drawn from a bounded session pool;
* ``strict`` — epsilon = 0, pinned to the primary.

Keys are zipfian (hot-spot skew); a ``write_fraction`` of requests are
increments.  The report carries p50/p95/p99 latency overall and per
class, achieved throughput, and cache/fan-out counters.

The driver either connects to an external deployment (``--addr``) or
boots an in-process :class:`~repro.live.cluster.LiveCluster` for the
run.  Everything is seeded and the whole request plan is precomputed,
so two runs with one seed issue the identical request sequence.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..consistency import Consistency, ReadOptions, SessionToken
from ..errors import ETError
from .zipf import ZipfSampler

__all__ = ["LoadgenConfig", "LoadgenReport", "run_loadgen"]

#: request-class mix: cached / bounded / session / strict.
DEFAULT_MIX = (0.50, 0.30, 0.15, 0.05)

CLASSES = ("cached", "bounded", "session", "strict", "write")


@dataclass
class LoadgenConfig:
    """Knobs of one load run (all seeded, all precomputable)."""

    #: simulated concurrent user population (sets the offered rate).
    users: int = 100_000
    #: mean seconds a user thinks between requests.
    think_time: float = 50.0
    #: seconds of offered load (the schedule's span).
    duration: float = 4.0
    #: explicit offered rate in req/s (None = users / think_time).
    rate: Optional[float] = None
    #: key-space size and zipf skew of the access pattern.
    keys: int = 512
    zipf_s: float = 1.1
    #: fraction of requests that are increments.
    write_fraction: float = 0.10
    #: read-class mix over (cached, bounded, session, strict).
    mix: Tuple[float, float, float, float] = DEFAULT_MIX
    #: epsilon budget of bounded (and cached-fallback) reads.
    epsilon: float = 8.0
    #: pipelined client connections sharing the offered load.
    connections: int = 8
    #: sticky-session pool bound (users above this share sessions).
    session_pool: int = 10_000
    seed: int = 7
    #: per-request deadline; a miss counts as failed, not retried.
    request_timeout: float = 10.0
    #: in-process cluster shape (ignored when ``addrs`` is set).
    sites: int = 3
    method: str = "commu"
    #: connect to an existing deployment instead: [(host, port), ...].
    addrs: Optional[List[Tuple[str, int]]] = None

    def offered_rate(self) -> float:
        if self.rate is not None:
            return float(self.rate)
        return self.users / self.think_time


@dataclass
class LoadgenReport:
    """Outcome of one run, JSON-serializable via ``as_dict()``."""

    config: Dict[str, Any]
    issued: int
    completed: int
    failed: int
    elapsed: float
    throughput: float
    latency: Dict[str, Dict[str, float]]
    by_class: Dict[str, int]
    cache: Dict[str, int]
    reads_from_cache: int
    session_stale_retries: int

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    def render(self) -> str:
        lines = [
            "loadgen: %(users)d users (think %(think)ss) -> %(rate).0f req/s "
            "offered for %(duration)ss"
            % {
                "users": self.config["users"],
                "think": self.config["think_time"],
                "rate": self.config["offered_rate"],
                "duration": self.config["duration"],
            },
            "  issued %d, completed %d, failed %d in %.2fs -> %.0f req/s served"
            % (
                self.issued, self.completed, self.failed,
                self.elapsed, self.throughput,
            ),
        ]
        for cls in CLASSES:
            stats = self.latency.get(cls)
            if not stats:
                continue
            lines.append(
                "  %-8s n=%-7d p50=%6.1fms  p95=%6.1fms  p99=%6.1fms  max=%6.1fms"
                % (
                    cls, self.by_class.get(cls, 0),
                    stats["p50"] * 1e3, stats["p95"] * 1e3,
                    stats["p99"] * 1e3, stats["max"] * 1e3,
                )
            )
        overall = self.latency.get("overall")
        if overall:
            lines.append(
                "  %-8s n=%-7d p50=%6.1fms  p95=%6.1fms  p99=%6.1fms  max=%6.1fms"
                % (
                    "overall", self.completed,
                    overall["p50"] * 1e3, overall["p95"] * 1e3,
                    overall["p99"] * 1e3, overall["max"] * 1e3,
                )
            )
        lines.append(
            "  cache: %(hits)d hits / %(misses)d misses, "
            "%(from_cache)d reads served client-side; "
            "%(stale)d session-stale retries"
            % {
                "hits": self.cache.get("hits", 0),
                "misses": self.cache.get("misses", 0),
                "from_cache": self.reads_from_cache,
                "stale": self.session_stale_retries,
            }
        )
        return "\n".join(lines)


def _percentiles(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {}
    ordered = sorted(samples)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    return {
        "p50": at(0.50),
        "p95": at(0.95),
        "p99": at(0.99),
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
    }


def _plan(config: LoadgenConfig) -> List[Tuple[float, str, int, int]]:
    """Precompute the whole open-loop schedule: (arrival, class, key,
    session index) per request, deterministic under the seed."""
    rng = random.Random(config.seed)
    sampler = ZipfSampler(config.keys, config.zipf_s)
    rate = config.offered_rate()
    total = max(1, int(rate * config.duration))
    n_sessions = max(1, min(config.users, config.session_pool))
    c_cached, c_bounded, c_session, c_strict = config.mix
    read_classes = ("cached", "bounded", "session", "strict")
    read_weights = (c_cached, c_bounded, c_session, c_strict)
    plan: List[Tuple[float, str, int, int]] = []
    for i in range(total):
        arrival = i / rate
        if rng.random() < config.write_fraction:
            cls = "write"
        else:
            cls = rng.choices(read_classes, weights=read_weights, k=1)[0]
        key = sampler.sample(rng)
        session = rng.randrange(n_sessions)
        plan.append((arrival, cls, key, session))
    return plan


async def _execute(
    config: LoadgenConfig, addrs: Sequence[Tuple[str, int]]
) -> LoadgenReport:
    from ..live.client import LiveClient
    from ..live.read_cache import EpsilonReadCache

    plan = _plan(config)
    n_sessions = max(1, min(config.users, config.session_pool))
    tokens = [SessionToken() for _ in range(n_sessions)]
    clients: List[LiveClient] = []
    for c in range(config.connections):
        client = LiveClient(
            list(addrs),
            request_timeout=config.request_timeout,
            cache=EpsilonReadCache(max_entries=config.keys * 2, ttl=5.0),
            fan_out=True,
            rng=random.Random(config.seed * 1000 + c),
        )
        await client._ensure_connected()
        clients.append(client)

    latencies: Dict[str, List[float]] = {cls: [] for cls in CLASSES}
    counts: Dict[str, int] = {cls: 0 for cls in CLASSES}
    from_cache = 0
    failed = 0
    bounded = Consistency.BOUNDED(config.epsilon)
    loop = asyncio.get_event_loop()

    async def one(index: int, cls: str, key: int, session: int,
                  scheduled: float) -> None:
        nonlocal from_cache, failed
        client = clients[index % len(clients)]
        name = "key%03d" % key
        try:
            if cls == "write":
                frame = await client.increment(name)
                tokens[session].observe_write(frame.get("tid", ""))
            else:
                if cls == "cached":
                    opts = ReadOptions(consistency=Consistency.CACHED)
                elif cls == "bounded":
                    opts = ReadOptions(consistency=bounded)
                elif cls == "session":
                    opts = ReadOptions(
                        consistency=Consistency.SESSION,
                        session=tokens[session],
                    )
                else:
                    opts = ReadOptions(consistency=Consistency.STRICT)
                result = await client.query([name], opts)
                if result.from_cache:
                    from_cache += 1
            latencies[cls].append(loop.time() - scheduled)
            counts[cls] += 1
        except (ETError, ConnectionError, OSError, asyncio.TimeoutError):
            failed += 1

    start = loop.time()
    tasks: List[asyncio.Task] = []
    for index, (arrival, cls, key, session) in enumerate(plan):
        delay = (start + arrival) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(
                one(index, cls, key, session, start + arrival)
            )
        )
    if tasks:
        await asyncio.gather(*tasks)
    elapsed = loop.time() - start

    cache_stats: Dict[str, int] = {}
    stale = 0
    for client in clients:
        stale += client.session_stale_retries
        if client.cache is not None:
            for stat, value in client.cache.stats().items():
                cache_stats[stat] = cache_stats.get(stat, 0) + value
        await client.close()

    completed = sum(counts.values())
    latency = {
        cls: _percentiles(values)
        for cls, values in latencies.items()
        if values
    }
    latency["overall"] = _percentiles(
        [sample for values in latencies.values() for sample in values]
    )
    return LoadgenReport(
        config={
            "users": config.users,
            "think_time": config.think_time,
            "offered_rate": config.offered_rate(),
            "duration": config.duration,
            "keys": config.keys,
            "zipf_s": config.zipf_s,
            "write_fraction": config.write_fraction,
            "mix": list(config.mix),
            "epsilon": config.epsilon,
            "connections": config.connections,
            "session_pool": n_sessions,
            "seed": config.seed,
            "sites": config.sites,
            "method": config.method,
        },
        issued=len(plan),
        completed=completed,
        failed=failed,
        elapsed=elapsed,
        throughput=completed / elapsed if elapsed > 0 else 0.0,
        latency=latency,
        by_class=counts,
        cache=cache_stats,
        reads_from_cache=from_cache,
        session_stale_retries=stale,
    )


async def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Run one load generation pass; boots an in-process cluster when
    no external addresses are configured."""
    if config.addrs:
        return await _execute(config, config.addrs)
    from ..live.cluster import LiveCluster

    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
        cluster = LiveCluster(
            n_sites=config.sites, method=config.method, data_dir=tmp
        )
        await cluster.start()
        try:
            addrs = list(cluster.addrs.values())
            return await _execute(config, addrs)
        finally:
            await cluster.stop()


def run_loadgen_sync(config: LoadgenConfig) -> LoadgenReport:
    return asyncio.run(run_loadgen(config))
