"""Synthetic workload generation."""

from .generator import Submission, WorkloadGenerator, WorkloadSpec, drive
from .loadgen import LoadgenConfig, LoadgenReport, run_loadgen, run_loadgen_sync
from .zipf import ZipfSampler

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "Submission",
    "WorkloadGenerator",
    "WorkloadSpec",
    "ZipfSampler",
    "drive",
    "run_loadgen",
    "run_loadgen_sync",
]
