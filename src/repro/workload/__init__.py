"""Synthetic workload generation."""

from .generator import Submission, WorkloadGenerator, WorkloadSpec, drive
from .zipf import ZipfSampler

__all__ = [
    "Submission",
    "WorkloadGenerator",
    "WorkloadSpec",
    "ZipfSampler",
    "drive",
]
