"""Seeded Zipf sampler for skewed key-access distributions.

Database replication workloads are typically skewed: a few hot objects
receive most updates.  The sampler uses the inverse-CDF method over a
finite domain, so it needs no scipy and is exactly reproducible from
the simulation RNG.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Draw indices in ``[0, n)`` with P(i) proportional to 1/(i+1)^s."""

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n <= 0:
            raise ValueError("domain size must be positive")
        if s < 0:
            raise ValueError("skew must be non-negative")
        self.n = n
        self.s = s
        weights = [1.0 / (i + 1) ** s for i in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift
        self._cdf = cumulative

    def sample(self, rng: random.Random) -> int:
        """One draw using the given RNG."""
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        return [self.sample(rng) for _ in range(count)]

    def probability(self, index: int) -> float:
        """Exact probability mass of ``index``."""
        if not 0 <= index < self.n:
            raise IndexError(index)
        lower = self._cdf[index - 1] if index else 0.0
        return self._cdf[index] - lower
