"""Synchronous client facade over a replicated system.

The paper's pitch for ETs is that applications "need not explicitly
deal with the theoretical conditions satisfying ESR" — they just issue
transactions with an inconsistency budget.  :class:`Client` delivers
that ergonomics on top of the simulator: each call submits an ET at
the client's home site and advances simulated time until the ET
completes, returning plain values.

    client = Client(system, "site1")
    client.increment("balance", 100)                   # async update
    value = client.read("balance", Consistency.BOUNDED(2))
    strict = client.read("balance", Consistency.STRICT)

(the old ``epsilon=`` kwargs still work but emit DeprecationWarning)

Because the client *runs the simulator* while waiting, it is intended
for single-driver scripts (examples, notebooks, tests).  Concurrent
multi-client scenarios should schedule submissions on the simulator
directly, as the workload generator does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from .consistency import (
    Consistency,
    ReadOptions,
    SessionToken,
    resolve_read_options,
)
from .core.operations import (
    AppendOp,
    DecrementOp,
    IncrementOp,
    Operation,
    ReadOp,
    WriteOp,
)
from .core.transactions import (
    EpsilonSpec,
    ETResult,
    ETStatus,
    QueryET,
    UpdateET,
)
from .errors import ABORTED, COMPENSATED, EPSILON_EXCEEDED, ETError
from .replica.base import ReplicatedSystem

__all__ = ["Client", "ClientSession", "ETFailed"]


class ETFailed(ETError):
    """Raised when a client-issued ET does not commit.

    Shares :class:`repro.errors.ETError` with the live runtime's
    ``LiveETFailed``, so portable code catches one type and branches on
    the stable ``code``; the full :class:`ETResult` stays available as
    ``exc.result`` for simulator-specific inspection.
    """

    def __init__(self, result: ETResult) -> None:
        if result.status is ETStatus.COMPENSATED:
            # COMPE backward recovery: the update's effects were
            # visible and then undone — distinct from a plain abort,
            # and matched by the live runtime's COMPENSATED code.
            code = COMPENSATED
        elif result.status is ETStatus.ABORTED:
            code = ABORTED
        elif not result.within_epsilon:
            code = EPSILON_EXCEEDED
        else:
            code = ""
        super().__init__(
            "ET %s finished with status %r"
            % (result.et.tid, result.status),
            code,
        )
        self.result = result


class Client:
    """A blocking, site-homed handle onto a replicated system."""

    def __init__(self, system: ReplicatedSystem, site: str) -> None:
        if site not in system.sites:
            raise KeyError("unknown site %r" % site)
        self.system = system
        self.site = site

    # -- generic execution ---------------------------------------------------

    def execute(
        self,
        operations: Sequence[Operation],
        spec: Optional[EpsilonSpec] = None,
    ) -> ETResult:
        """Submit an ET and run the simulation until it completes."""
        from .core.transactions import make_et

        et = make_et(operations, spec, origin_site=self.site)
        done: List[ETResult] = []
        self.system.submit(et, self.site, done.append)
        guard = 0
        while not done:
            if not self.system.sim.step():
                # Nothing scheduled but the ET is still pending: nudge
                # the queues (a retry timer may be the only thing left).
                self.system.kick_queues()
                if not self.system.sim.step():
                    raise RuntimeError(
                        "simulation stalled while waiting for ET %s" % et.tid
                    )
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError("ET %s never completed" % et.tid)
        result = done[0]
        if result.status != ETStatus.COMMITTED:
            raise ETFailed(result)
        return result

    # -- updates ---------------------------------------------------------------

    def write(self, key: str, value: Any) -> ETResult:
        """Blind write (RITU-compatible)."""
        return self.execute([WriteOp(key, value)])

    def increment(self, key: str, amount: float = 1) -> ETResult:
        return self.execute([IncrementOp(key, amount)])

    def decrement(self, key: str, amount: float = 1) -> ETResult:
        return self.execute([DecrementOp(key, amount)])

    def append(self, key: str, item: Any) -> ETResult:
        return self.execute([AppendOp(key, item)])

    def update(self, operations: Sequence[Operation]) -> ETResult:
        """Multi-operation update ET."""
        return self.execute(list(operations))

    # -- queries -----------------------------------------------------------------

    def read(
        self,
        key: str,
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
    ) -> Any:
        """Read one key at the given consistency.

        ``options`` is a :class:`~repro.consistency.ReadOptions` or
        :class:`~repro.consistency.Consistency`; the bare ``epsilon``/
        ``value_epsilon`` kwargs are the deprecated spelling.
        """
        opts = resolve_read_options(
            options, epsilon=epsilon, value_epsilon=value_epsilon,
            caller="read",
        )
        result = self.execute([ReadOp(key)], opts.spec())
        return result.values[key]

    def read_many(
        self,
        keys: Sequence[str],
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One query ET over several keys (a consistent unit of error)."""
        opts = resolve_read_options(
            options, epsilon=epsilon, value_epsilon=value_epsilon,
            caller="read_many",
        )
        result = self.execute([ReadOp(key) for key in keys], opts.spec())
        return dict(result.values)

    def query(
        self,
        keys: Sequence[str],
        spec: Union[EpsilonSpec, ReadOptions, Consistency, None] = None,
    ) -> ETResult:
        """Full-fidelity query: returns the ETResult with its error
        accounting (inconsistency counter, overlap, waits).  ``spec``
        accepts a raw :class:`EpsilonSpec` or the typed surface."""
        if isinstance(spec, (ReadOptions, Consistency)):
            spec = resolve_read_options(spec, caller="query").spec()
        return self.execute([ReadOp(key) for key in keys], spec)

    def session(self, token: Optional[SessionToken] = None) -> "ClientSession":
        """Open a session (``with client.session() as s:``).

        The simulator client is site-homed and blocking — every call
        runs the simulation to completion at one site — so
        read-your-writes and monotonic reads hold trivially.  The
        session still maintains a real :class:`SessionToken` (advanced
        past every committed tid) so programs exercising cross-process
        token handoff run unchanged against the simulator.
        """
        return ClientSession(self, token)

    # -- convenience ------------------------------------------------------------------

    def settle(self) -> float:
        """Drain all background propagation (returns quiescence time)."""
        return self.system.run_to_quiescence()


class ClientSession:
    """Session sugar over the blocking simulator client.

    Mirrors the live :class:`~repro.live.client.LiveSession` surface
    (reads, writes, ``token``) as a *synchronous* context manager, so
    API-parity programs can drive sessions on either backend.
    """

    def __init__(
        self, client: Client, token: Optional[SessionToken] = None
    ) -> None:
        self._client = client
        self.token = token if token is not None else SessionToken()

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def _observe(self, result: ETResult) -> ETResult:
        tid = getattr(result.et, "tid", None)
        if isinstance(tid, str):
            self.token.observe_write(tid)
        return result

    def read(
        self,
        key: str,
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
    ) -> Any:
        return self._client.read(
            key, options, epsilon=epsilon, value_epsilon=value_epsilon
        )

    def read_many(
        self,
        keys: Sequence[str],
        options: Union[ReadOptions, Consistency, float, None] = None,
        *,
        epsilon: Optional[float] = None,
        value_epsilon: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self._client.read_many(
            keys, options, epsilon=epsilon, value_epsilon=value_epsilon
        )

    def query(
        self,
        keys: Sequence[str],
        spec: Union[EpsilonSpec, ReadOptions, Consistency, None] = None,
    ) -> ETResult:
        return self._client.query(keys, spec)

    def update(self, operations: Sequence[Operation]) -> ETResult:
        return self._observe(self._client.update(operations))

    def write(self, key: str, value: Any) -> ETResult:
        return self._observe(self._client.write(key, value))

    def increment(self, key: str, amount: float = 1) -> ETResult:
        return self._observe(self._client.increment(key, amount))

    def decrement(self, key: str, amount: float = 1) -> ETResult:
        return self._observe(self._client.decrement(key, amount))

    def append(self, key: str, item: Any) -> ETResult:
        return self._observe(self._client.append(key, item))
