"""Shared failure taxonomy for every client surface.

The simulator's :class:`~repro.client.ETFailed` and the live runtime's
:class:`~repro.live.client.LiveETFailed` used to be unrelated
exception types, so portable application code had to catch both.  They
now share one base, :class:`ETError`, carrying a *stable* ``code``
string drawn from the small vocabulary below — application code
branches on ``exc.code`` (or the convenience predicates) and works
against either backend.

Codes:

* :data:`UNAVAILABLE` — the replica honestly refused a request that
  needs full replica agreement (``epsilon = 0`` during a partition).
  Retry elsewhere or relax the budget.
* :data:`EPSILON_EXCEEDED` — the ET finished outside its declared
  inconsistency budget (only reachable when a backend chooses to
  report rather than block; the paper's methods normally block).
* :data:`ABORTED` — the ET was aborted by the replica control method
  (e.g. compensation, validation failure).
* :data:`OVERLOADED` — the replica is alive but shedding write load:
  a peer channel's durable backlog is past its high-water mark.
  Retry later, or at a less loaded replica.
* :data:`WRONG_SHARD` — the addressed replica group does not (or no
  longer does) own the requested keys' shard.  The error response
  carries the newest shard map the replica knows (``map``); refresh
  the routing table and retry at the owner.  The sharded router does
  this automatically.
* :data:`SESSION_STALE` — the addressed replica's applied frontiers
  lag the session token attached to a ``SESSION``-level read, so
  serving it would violate read-your-writes / monotonic reads.  The
  error response carries the replica's current frontier vector
  (``frontiers``); retry at a fresher replica (the live client does
  this automatically) or wait for propagation to catch up.
* :data:`COMPENSATED` — the update was optimistically applied and then
  undone by COMPE's backward recovery (the paper's compensation
  method; at live scale, a saga step whose saga aborted).  The error
  response carries the tids that were undone (``compensated``).  This
  is *not* a silent failure: the update's effects were durably removed
  by compensating operations, and the caller must treat it like an
  abort that briefly became visible.

Catch-all::

    from repro import ETError

    try:
        client.read("balance", epsilon=0)
    except ETError as exc:
        if exc.unavailable:
            ...  # degrade: retry with a relaxed epsilon
"""

from __future__ import annotations

__all__ = [
    "ABORTED",
    "COMPENSATED",
    "EPSILON_EXCEEDED",
    "ETError",
    "OVERLOADED",
    "SESSION_STALE",
    "UNAVAILABLE",
    "WRONG_SHARD",
]

#: a request needing full replica agreement was honestly refused.
UNAVAILABLE = "UNAVAILABLE"
#: the ET's observed inconsistency exceeded its declared budget.
EPSILON_EXCEEDED = "EPSILON_EXCEEDED"
#: the replica control method aborted the ET.
ABORTED = "ABORTED"
#: the replica refused an update to bound its durable backlog.
OVERLOADED = "OVERLOADED"
#: the addressed replica group does not own the requested shard.
WRONG_SHARD = "WRONG_SHARD"
#: the replica's applied frontiers lag the read's session token.
SESSION_STALE = "SESSION_STALE"
#: the update was applied optimistically and then undone by COMPE's
#: backward recovery (saga abort / validation failure).
COMPENSATED = "COMPENSATED"


class ETError(RuntimeError):
    """Base class of every ET failure, simulated or live.

    ``code`` is a stable machine-readable string (one of the module
    constants, or a backend-specific extension); the exception message
    stays human-readable prose.
    """

    code: str = ""

    def __init__(self, message: str, code: str = "") -> None:
        super().__init__(message)
        if code:
            self.code = code

    @property
    def unavailable(self) -> bool:
        """True when the replica refused service during degradation."""
        return self.code == UNAVAILABLE

    @property
    def aborted(self) -> bool:
        return self.code == ABORTED

    @property
    def overloaded(self) -> bool:
        """True when the replica shed the request to bound backlog."""
        return self.code == OVERLOADED

    @property
    def wrong_shard(self) -> bool:
        """True when the request was routed to a non-owner group."""
        return self.code == WRONG_SHARD

    @property
    def session_stale(self) -> bool:
        """True when the replica lagged the read's session token."""
        return self.code == SESSION_STALE

    @property
    def compensated(self) -> bool:
        """True when the update was undone by backward recovery."""
        return self.code == COMPENSATED
