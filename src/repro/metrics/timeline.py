"""ASCII timelines: per-site lanes of a simulation's history.

A compact visual of who executed what when — useful in failure
post-mortems and documentation.  Each site gets a lane; time is
bucketed into fixed-width columns; each cell shows the most
interesting event in that bucket (write beats read beats nothing).

    site0 |W1····W3··|
    site1 |··W1·r2·W3|
    site2 |····W1··W3|

``W<tid>`` marks an update-ET operation, ``r<tid>`` a query read; a
``·`` is an idle bucket.  Long tids are truncated to keep lanes
aligned; the renderer is for eyeballing, not parsing.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..core.history import History

__all__ = ["render_timeline"]


def render_timeline(
    site_histories: Mapping[str, History],
    width: int = 60,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> str:
    """Render per-site histories as aligned ASCII lanes.

    Args:
        site_histories: site name -> its recorded history.
        width: number of time buckets (columns).
        start/end: time window; defaults to the span of all events.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    all_events = [
        (site, ev)
        for site in sorted(site_histories)
        for ev in site_histories[site]
    ]
    if not all_events:
        return "(empty timeline)"
    times = [ev.time for _, ev in all_events]
    lo = start if start is not None else min(times)
    hi = end if end is not None else max(times)
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo

    def bucket_of(t: float) -> int:
        index = int((t - lo) / span * width)
        return min(max(index, 0), width - 1)

    CELL = 4  # "W12 " — fixed cell width keeps lanes aligned
    lanes: List[str] = []
    label_width = max(len(s) for s in site_histories)
    for site in sorted(site_histories):
        cells: List[str] = ["·" * CELL] * width
        priority: List[int] = [0] * width  # write > read > idle
        for ev in site_histories[site]:
            if not (lo <= ev.time <= hi):
                continue
            b = bucket_of(ev.time)
            is_write = ev.op.is_write_op
            rank = 2 if is_write else 1
            if rank <= priority[b]:
                continue
            priority[b] = rank
            letter = "W" if is_write else "r"
            text = "%s%d" % (letter, ev.tid)
            cells[b] = text[:CELL].ljust(CELL, "·")
        lanes.append(
            "%s |%s|" % (site.ljust(label_width), "".join(cells))
        )
    header = "%s  t=%.1f%s t=%.1f" % (
        " " * label_width,
        lo,
        " " * max(width * CELL - 18, 1),
        hi,
    )
    return "\n".join([header] + lanes)
