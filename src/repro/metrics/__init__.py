"""Run metrics and summary statistics."""

from .collector import RunMetrics, divergence_of, percentile, summarize
from .timeline import render_timeline

__all__ = [
    "RunMetrics",
    "divergence_of",
    "percentile",
    "render_timeline",
    "summarize",
]
