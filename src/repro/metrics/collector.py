"""Metrics extraction from simulation results.

The benchmarks report a small set of derived quantities per run:
throughput, latency percentiles, query inconsistency distribution,
wait counts, convergence/divergence over time, and staleness error in
value space.  All of it is computed from the list of
:class:`~repro.core.transactions.ETResult` a system accumulates plus
system-level probes, so methods need no metric hooks of their own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.transactions import ETResult, ETStatus

if TYPE_CHECKING:  # annotation only; obs stays an optional collaborator
    from ..obs.registry import Registry

__all__ = [
    "RunMetrics",
    "summarize",
    "publish_run_metrics",
    "percentile",
    "divergence_of",
]


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile; 0 for empty input."""
    if not values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1 - frac) + ordered[high] * frac)


@dataclass
class RunMetrics:
    """Summary of one simulation run."""

    total_ets: int = 0
    committed: int = 0
    aborted: int = 0
    compensated: int = 0
    duration: float = 0.0
    throughput: float = 0.0
    #: update-only latency stats.
    update_latency_mean: float = 0.0
    update_latency_p95: float = 0.0
    #: query-only latency stats.
    query_latency_mean: float = 0.0
    query_latency_p95: float = 0.0
    #: query inconsistency counters.
    inconsistency_mean: float = 0.0
    inconsistency_max: int = 0
    #: fraction of queries whose counter respected their epsilon spec;
    #: ``None`` when the run served no queries — a run that answered
    #: nothing has no bound-compliance to report, and claiming a
    #: perfect 1.0 would hide broken (query-free) runs in a sweep.
    within_bound_fraction: Optional[float] = None
    #: total divergence-control stalls across queries.
    waits: int = 0

    def as_row(self) -> Dict[str, Any]:
        """Flat dict for table rendering."""
        return {
            "ets": self.total_ets,
            "committed": self.committed,
            "thruput": round(self.throughput, 3),
            "upd_lat": round(self.update_latency_mean, 3),
            "upd_p95": round(self.update_latency_p95, 3),
            "qry_lat": round(self.query_latency_mean, 3),
            "qry_p95": round(self.query_latency_p95, 3),
            "incons_mean": round(self.inconsistency_mean, 3),
            "incons_max": self.inconsistency_max,
            "in_bound": (
                None
                if self.within_bound_fraction is None
                else round(self.within_bound_fraction, 3)
            ),
            "waits": self.waits,
        }


def summarize(
    results: Iterable[ETResult],
    duration: float,
    registry: Optional["Registry"] = None,
) -> RunMetrics:
    """Aggregate a run's ET results into :class:`RunMetrics`.

    With ``registry`` (a :class:`repro.obs.Registry`), the same
    aggregates are also published as metric samples, so simulator runs
    and the live runtime report through one source of truth (and one
    exposition format).
    """
    metrics = RunMetrics(duration=duration)
    update_latencies: List[float] = []
    query_latencies: List[float] = []
    inconsistencies: List[int] = []
    bounded = 0
    queries = 0
    for result in results:
        metrics.total_ets += 1
        if result.status == ETStatus.COMMITTED:
            metrics.committed += 1
        elif result.status == ETStatus.ABORTED:
            metrics.aborted += 1
        elif result.status == ETStatus.COMPENSATED:
            metrics.compensated += 1
        metrics.waits += result.waits
        if result.et.is_update:
            update_latencies.append(result.latency)
        else:
            queries += 1
            query_latencies.append(result.latency)
            inconsistencies.append(result.inconsistency)
            if result.within_bound:
                bounded += 1
    if duration > 0:
        metrics.throughput = metrics.committed / duration
    if update_latencies:
        metrics.update_latency_mean = sum(update_latencies) / len(
            update_latencies
        )
        metrics.update_latency_p95 = percentile(update_latencies, 95)
    if query_latencies:
        metrics.query_latency_mean = sum(query_latencies) / len(
            query_latencies
        )
        metrics.query_latency_p95 = percentile(query_latencies, 95)
    if inconsistencies:
        metrics.inconsistency_mean = sum(inconsistencies) / len(
            inconsistencies
        )
        metrics.inconsistency_max = max(inconsistencies)
    if queries:
        metrics.within_bound_fraction = bounded / queries
    if registry is not None:
        publish_run_metrics(metrics, registry)
    return metrics


def publish_run_metrics(metrics: RunMetrics, registry: "Registry") -> None:
    """Mirror a :class:`RunMetrics` summary into an obs registry.

    Counters use ``set_to`` (the summary is itself cumulative for the
    run), so repeated summarize calls over a growing result list stay
    monotonic.
    """
    ets = registry.counter(
        "sim_ets_total", "ETs completed in the run", labels=("status",)
    )
    ets.labels(status="committed").set_to(metrics.committed)
    ets.labels(status="aborted").set_to(metrics.aborted)
    ets.labels(status="compensated").set_to(metrics.compensated)
    registry.gauge(
        "sim_throughput", "committed ETs per simulated second"
    ).set(metrics.throughput)
    registry.gauge(
        "sim_update_latency_mean", "mean update ET latency"
    ).set(metrics.update_latency_mean)
    registry.gauge(
        "sim_query_latency_mean", "mean query ET latency"
    ).set(metrics.query_latency_mean)
    registry.gauge(
        "epsilon_mean", "mean per-query inconsistency for the run"
    ).set(metrics.inconsistency_mean)
    registry.gauge(
        "epsilon_run_max", "largest per-query inconsistency in the run"
    ).set_max(metrics.inconsistency_max)
    registry.counter(
        "sim_waits_total", "divergence-control stalls across queries"
    ).set_to(metrics.waits)
    if metrics.within_bound_fraction is not None:
        registry.gauge(
            "sim_within_bound_fraction",
            "fraction of queries that respected their epsilon spec",
        ).set(metrics.within_bound_fraction)


def divergence_of(site_values: Mapping[str, Mapping[str, Any]]) -> float:
    """Total pairwise value divergence across replicas.

    For numeric values: sum over keys of (max - min) across sites; a
    direct measure of how far apart the replicas are at an instant.
    Non-numeric values contribute 1 per key on which any pair differs.
    """
    sites = sorted(site_values)
    if len(sites) < 2:
        return 0.0
    keys = set()
    for values in site_values.values():
        keys.update(values)
    total = 0.0
    for key in keys:
        observed = [site_values[s].get(key) for s in sites]
        numeric = [v for v in observed if isinstance(v, (int, float))]
        if len(numeric) == len(observed):
            total += max(numeric) - min(numeric)
        else:
            first = observed[0]
            if any(v != first for v in observed[1:]):
                total += 1.0
    return total
